set datafile separator ','
set key top left
set title 'Fig. 4: average latency to the selected server'
set xlabel 'client (sorted per curve)'
set ylabel 'average latency (ms)'
set terminal pngcairo size 900,540
set output 'fig4_closest_latency.png'
plot 'fig4_closest_latency.csv' using 1:2 with lines lw 2 title 'Meridian', \
     'fig4_closest_latency.csv' using 1:3 with lines lw 2 title 'CRP Top-1', \
     'fig4_closest_latency.csv' using 1:4 with lines lw 2 title 'CRP Top-5', \
     'fig4_closest_latency.csv' using 1:5 with lines lw 2 title 'optimal'
