set datafile separator ','
set key top left
set title 'Fig. 9: average rank vs probe window size'
set xlabel 'client (sorted per curve)'
set ylabel 'average rank'
set terminal pngcairo size 900,540
set output 'fig9_window_size.png'
plot 'fig9_window_size.csv' using 1:2 with lines lw 2 title 'all probes', \
     'fig9_window_size.csv' using 1:3 with lines lw 2 title '30 probes', \
     'fig9_window_size.csv' using 1:4 with lines lw 2 title '10 probes', \
     'fig9_window_size.csv' using 1:5 with lines lw 2 title '5 probes'
