set datafile separator ','
set key top left
set title 'Fig. 8: average rank vs probe interval'
set xlabel 'client (sorted per curve)'
set ylabel 'average rank'
set terminal pngcairo size 900,540
set output 'fig8_probe_interval.png'
plot 'fig8_probe_interval.csv' using 1:2 with lines lw 2 title '20 min', \
     'fig8_probe_interval.csv' using 1:3 with lines lw 2 title '100 min', \
     'fig8_probe_interval.csv' using 1:4 with lines lw 2 title '500 min', \
     'fig8_probe_interval.csv' using 1:5 with lines lw 2 title '2000 min'
