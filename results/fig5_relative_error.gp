set datafile separator ','
set key top left
set title 'Fig. 5: relative error of the recommendations'
set xlabel 'client (sorted per curve)'
set ylabel 'relative error (ms)'
set terminal pngcairo size 900,540
set output 'fig5_relative_error.png'
plot 'fig5_relative_error.csv' using 1:2 with lines lw 2 title 'Meridian', \
     'fig5_relative_error.csv' using 1:3 with lines lw 2 title 'CRP Top-1', \
     'fig5_relative_error.csv' using 1:4 with lines lw 2 title 'CRP Top-5'
