//! End-to-end exemplar linkage: a seeded campaign run under the full
//! live-observability stack must leave top-latency-bucket exemplars in
//! the time-series store whose trace ids resolve to sampled span trees
//! that reach all the way from the CDN redirection event into the
//! ranking kernel. This is the feature's reason to exist — "why was
//! this ingest slow, and what did it influence" answered from two JSON
//! artifacts — so it gets its own process (the collectors are global).

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};
use crp_telemetry::{timeseries, trace};

#[test]
fn top_bucket_exemplars_resolve_to_traces_reaching_the_ranking_kernel() {
    timeseries::start(timeseries::TimeSeriesConfig::default());
    // Keep every trace so exemplar resolution is guaranteed, not
    // merely likely.
    trace::start(trace::TraceConfig {
        sample_one_in: 1,
        ..trace::TraceConfig::default()
    });

    let scenario = Scenario::build(ScenarioConfig {
        seed: 11,
        candidate_servers: 8,
        clients: 4,
        cdn_scale: 0.25,
        ..ScenarioConfig::default()
    });
    let now = SimTime::from_hours(2);
    // WindowPolicy::All keeps every observation in scope, so each
    // query's ratio-map build resumes every stamped ingest trace.
    let service = scenario.observe_all(
        SimTime::ZERO,
        now,
        SimDuration::from_mins(10),
        WindowPolicy::All,
        SimilarityMetric::Cosine,
    );
    for &client in scenario.clients() {
        service
            .closest(&client, scenario.candidates().iter().copied(), now)
            .expect("client observed all campaign long");
    }

    let store = timeseries::finish().expect("time-series store started");
    let traces = trace::finish().expect("trace collector started");
    assert_eq!(traces.minted, traces.sampled, "1-in-1 sampling keeps all");

    let export = store.export();
    let series = export
        .series("cdn.best_candidate_ms")
        .expect("ingest latency series recorded");
    let exemplars = &series.total.exemplars;
    assert!(!exemplars.is_empty(), "no exemplars captured");

    // The top-latency exemplar is the one an operator would click:
    // highest occupied bucket of the whole-run window.
    let top = exemplars
        .iter()
        .max_by_key(|e| e.bucket)
        .expect("non-empty exemplar set");
    let tree = traces
        .trace(&top.trace)
        .expect("exemplar trace id resolves to a sampled trace");
    assert!(tree.reaches("cdn.redirect"), "missing root span: {tree:?}");
    assert!(
        tree.reaches("core.tracker.record"),
        "ingest span missing: {tree:?}"
    );
    assert!(
        tree.reaches("core.ranking"),
        "exemplar trace never reached the ranking kernel: {tree:?}"
    );

    // Every exemplar in every bucket resolves — the store may only
    // hand out trace ids that the trace log can expand.
    for ex in exemplars {
        assert!(
            traces.trace(&ex.trace).is_some(),
            "dangling exemplar {ex:?}"
        );
    }
}
