//! Telemetry, profiling, and decision provenance must be pure
//! observers: enabling any of them cannot change experiment output, and
//! identical runs must produce identical telemetry and provenance. One
//! test function drives all phases because the collector and the
//! explain log are process-global — parallel test threads must not
//! share them.

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Runs a small fixed-seed campaign and renders everything downstream
/// code consumes — per-host ratio maps and the per-client Top-3
/// rankings — into one comparable string.
fn campaign_fingerprint() -> String {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 7,
        candidate_servers: 8,
        clients: 4,
        cdn_scale: 0.25,
        ..ScenarioConfig::default()
    });
    let now = SimTime::from_hours(2);
    let service = scenario.observe_all(
        SimTime::ZERO,
        now,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(10),
        SimilarityMetric::Cosine,
    );
    let mut out = String::new();
    for &host in scenario.candidates().iter().chain(scenario.clients()) {
        if let Ok(map) = service.ratio_map(&host, now) {
            let _ = writeln!(out, "map {host}: {map:?}");
        }
    }
    for &client in scenario.clients() {
        if let Ok(ranking) = service.closest(&client, scenario.candidates().iter().copied(), now) {
            let _ = writeln!(out, "rank {client}: {:?}", ranking.top_k(3));
        }
    }
    out
}

#[test]
fn telemetry_never_perturbs_results_and_is_itself_deterministic() {
    // Phase 1: baseline with telemetry disabled.
    assert!(!crp_telemetry::enabled());
    let baseline = campaign_fingerprint();
    assert!(!baseline.is_empty());

    // Phase 2: full telemetry (memory sink). Outputs must be identical.
    let (sink, records) = crp_telemetry::MemorySink::shared();
    crp_telemetry::install(Box::new(sink));
    let observed = campaign_fingerprint();
    let summary_a = crp_telemetry::shutdown("determinism").expect("collector installed");
    assert_eq!(baseline, observed, "telemetry changed experiment output");
    assert!(
        summary_a.counter("core.tracker.observations").unwrap_or(0) > 0,
        "instrumentation did not fire: {summary_a:?}"
    );
    assert!(!records.lock().expect("sink store").is_empty());

    // Phase 3: a second instrumented run collects the identical summary.
    crp_telemetry::install_metrics_only();
    let again = campaign_fingerprint();
    let summary_b = crp_telemetry::shutdown("determinism").expect("collector installed");
    assert_eq!(baseline, again);
    assert_eq!(
        summary_a.counters, summary_b.counters,
        "same seed must aggregate identical counters"
    );
    assert_eq!(summary_a.histograms, summary_b.histograms);

    // Phase 4: disabled again — still the same output.
    assert!(!crp_telemetry::enabled());
    assert_eq!(campaign_fingerprint(), baseline);

    // Phase 5: wall-clock profiling enabled (telemetry off). The
    // profiler must observe the run (non-empty scope tree) without
    // perturbing a single byte of output. The tree itself is wall-clock
    // data and is excluded from the determinism comparison by design.
    crp_telemetry::profile::start();
    let profiled = campaign_fingerprint();
    let tree = crp_telemetry::profile::finish().expect("profiler installed");
    assert_eq!(baseline, profiled, "profiling changed experiment output");
    assert!(
        tree.child("scenario.observe").is_some(),
        "profile scopes did not fire: {tree:?}"
    );
    assert!(tree.node_count() > 2, "expected nested scopes: {tree:?}");

    // Phase 6: telemetry AND profiling together — both observers on,
    // output still byte-identical, metrics still deterministic.
    crp_telemetry::install_metrics_only();
    crp_telemetry::profile::start();
    let both = campaign_fingerprint();
    let summary_c = crp_telemetry::shutdown("determinism").expect("collector installed");
    let _ = crp_telemetry::profile::finish();
    assert_eq!(baseline, both);
    assert_eq!(summary_a.counters, summary_c.counters);

    // Phase 7: decision provenance (the --audit recorder) enabled. The
    // explain hooks sit inside similarity/ranking/clustering hot paths,
    // so this is the strongest perturbation candidate — output must
    // stay byte-identical while the drained log proves the hooks fired.
    crp_core::explain::start();
    let audited = campaign_fingerprint();
    let log = crp_core::explain::finish().expect("explain recorder started");
    assert_eq!(baseline, audited, "provenance changed experiment output");
    assert!(
        !log.similarities.is_empty() && !log.rankings.is_empty(),
        "explain hooks did not fire: {} records",
        log.len()
    );

    // Phase 8: provenance off again — and a second audited run records
    // the identical log (provenance itself is deterministic).
    assert!(!crp_core::explain::enabled());
    assert_eq!(campaign_fingerprint(), baseline);
    crp_core::explain::start();
    let _ = campaign_fingerprint();
    let log_b = crp_core::explain::finish().expect("explain recorder started");
    assert_eq!(log, log_b, "same seed must record identical provenance");

    // Phase 9: the full live-observability stack — SimTime time-series
    // store, causal tracing, and the alert replay over the finished
    // store. All of it rides the same hot paths as provenance, so the
    // same bar applies: byte-identical experiment output, and every
    // collector demonstrably fed.
    crp_telemetry::timeseries::start(crp_telemetry::timeseries::TimeSeriesConfig::default());
    crp_telemetry::trace::start(crp_telemetry::trace::TraceConfig::default());
    let live = campaign_fingerprint();
    let store = crp_telemetry::timeseries::finish().expect("time-series store started");
    let traces = crp_telemetry::trace::finish().expect("trace collector started");
    assert_eq!(
        baseline, live,
        "live observability changed experiment output"
    );
    let export = store.export();
    assert!(
        export.series("cdn.best_candidate_ms").is_some(),
        "ingest latency series missing: {:?}",
        export.series.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert!(traces.minted > 0, "no traces minted: {traces:?}");
    let alerts = crp_telemetry::alert::AlertEngine::new(crp_telemetry::alert::default_rules())
        .evaluate(&store);
    assert!(
        alerts.rule("ingest-latency-p99").is_some(),
        "default rules not evaluated"
    );

    // Phase 10: a second live run serializes byte-identical time
    // series, alert log, and trace trees — the artifacts CI diffs.
    crp_telemetry::timeseries::start(crp_telemetry::timeseries::TimeSeriesConfig::default());
    crp_telemetry::trace::start(crp_telemetry::trace::TraceConfig::default());
    assert_eq!(campaign_fingerprint(), baseline);
    let store_b = crp_telemetry::timeseries::finish().expect("time-series store started");
    let traces_b = crp_telemetry::trace::finish().expect("trace collector started");
    let alerts_b = crp_telemetry::alert::AlertEngine::new(crp_telemetry::alert::default_rules())
        .evaluate(&store_b);
    assert_eq!(
        serde_json::to_string(&export).expect("serializable"),
        serde_json::to_string(&store_b.export()).expect("serializable"),
        "same seed must export identical time series"
    );
    assert_eq!(
        serde_json::to_string(&traces).expect("serializable"),
        serde_json::to_string(&traces_b).expect("serializable"),
        "same seed must record identical traces"
    );
    assert_eq!(
        serde_json::to_string(&alerts).expect("serializable"),
        serde_json::to_string(&alerts_b).expect("serializable"),
        "same seed must replay identical alerts"
    );

    // Phase 11: everything off again — the baseline still reproduces.
    assert!(!crp_telemetry::trace::enabled());
    assert_eq!(campaign_fingerprint(), baseline);

    // Phase 12: allocation attribution (the --mem layer) armed. It taps
    // the global allocator on the wall-clock side — the one observer
    // that sees *every* allocation the experiment makes — so the purity
    // bar matters most here: arming it must not change a byte of
    // output. (This test binary installs no counting allocator, so the
    // counters stay zero; what is under test is the armed code path
    // riding along with every campaign allocation.)
    crp_telemetry::mem::start();
    let attributed = campaign_fingerprint();
    let mem_a = crp_telemetry::mem::finish().expect("attribution armed");
    assert_eq!(
        baseline, attributed,
        "memory attribution changed experiment output"
    );
    assert!(
        mem_a.domain("scenario.observe").is_some() && mem_a.domain("core.tracker").is_some(),
        "campaign domains not registered: {mem_a:?}"
    );

    // Phase 13: a second armed run serializes the identical snapshot —
    // domain registration and ordering are deterministic, so the
    // `<experiment>_mem.json` artifact is CI-diffable like the rest.
    crp_telemetry::mem::start();
    assert_eq!(campaign_fingerprint(), baseline);
    let mem_b = crp_telemetry::mem::finish().expect("attribution armed");
    assert_eq!(
        serde_json::to_string(&mem_a).expect("serializable"),
        serde_json::to_string(&mem_b).expect("serializable"),
        "same seed must snapshot identical attribution"
    );
    assert!(!crp_telemetry::mem::enabled());
    assert_eq!(campaign_fingerprint(), baseline);

    // Phase 14: the online change detector. It reads the recorded
    // service history after the fact, so the purity bar is the same as
    // for every observer above: a campaign whose history is scanned
    // must produce byte-identical experiment output to one that is not.
    let detector_off = event_campaign_fingerprint(false);
    let detector_on = event_campaign_fingerprint(true);
    assert_eq!(
        detector_off.0, detector_on.0,
        "change detection changed experiment output"
    );
    let report = detector_on.1.expect("detector ran");
    assert!(!report.windows.is_empty(), "scan saw no windows");

    // Phase 15: a second detector-on replay serializes the identical
    // detection report — the artifact the change-detect CI smoke diffs.
    let report_b = event_campaign_fingerprint(true).1.expect("detector ran");
    assert_eq!(
        serde_json::to_string(&report).expect("serializable"),
        serde_json::to_string(&report_b).expect("serializable"),
        "same seed must scan to an identical detection report"
    );
}

/// Runs a small fixed-seed campaign over a scripted-event world and
/// returns its fingerprint, plus the change-detection report when
/// `scan` is set. The fingerprint must not depend on whether the
/// detector ran.
fn event_campaign_fingerprint(scan: bool) -> (String, Option<crp_audit::detect::DetectionReport>) {
    use crp_cdn::{EventKind, EventScript};
    use crp_netsim::Region;
    let horizon = SimTime::from_hours(4);
    let script = EventScript::new().with_reserve(Region::Europe, 4).at(
        SimTime::from_hours(2),
        EventKind::RegionalPoolFlip {
            region: Region::Europe,
            fraction: 0.5,
        },
    );
    let scenario = Scenario::build(ScenarioConfig {
        seed: 7,
        candidate_servers: 0,
        clients: 6,
        cdn_scale: 0.25,
        broad_clients: true,
        events: Some(script),
        ..ScenarioConfig::default()
    });
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        horizon,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(10),
        SimilarityMetric::Cosine,
    );
    let mut out = String::new();
    for &host in scenario.clients() {
        if let Ok(map) = service.ratio_map(&host, horizon) {
            let _ = writeln!(out, "map {host}: {map:?}");
        }
    }
    let report = scan.then(|| {
        let hosts: Vec<_> = scenario
            .clients()
            .iter()
            .map(|&h| (h, scenario.network().host(h).region().slug().to_owned()))
            .collect();
        let cfg = crp_audit::detect::DetectConfig::new(
            SimTime::from_hours(1),
            horizon,
            SimDuration::from_mins(30),
        );
        crp_audit::detect::scan(&service, &hosts, &cfg)
    });
    (out, report)
}
