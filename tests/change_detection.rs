//! Integration tests for scripted infrastructure events: the CDN's own
//! remap ground truth must line up exactly with the event script when
//! every stochastic knob is turned off.

use crp::{CdnProbe, Scenario, ScenarioConfig};
use crp_cdn::{EventKind, EventScript, MappingConfig};
use crp_core::ObservationSource;
use crp_netsim::{LatencyConfig, SimDuration, SimTime};

/// A mapping config with every noise source disabled: deterministic
/// measurements, a pool of one, one answer per response, and a coverage
/// radius wide enough that no resolver falls into the scatter/fallback
/// path. Under this config the best replica for a resolver changes only
/// when the infrastructure itself changes.
fn noiseless_mapping() -> MappingConfig {
    MappingConfig {
        measurement_noise_sigma: 0.0,
        load_balance_pool: 1,
        answers_per_response: 1,
        fallback_probability: 0.0,
        coverage_radius_ms: 1_000_000.0,
        scatter_noise: 0.0,
        ..MappingConfig::default()
    }
}

fn noiseless_config(seed: u64, events: Option<EventScript>) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        candidate_servers: 0,
        clients: 1,
        cdn_scale: 0.25,
        customer_names: vec!["cdn.example.com".to_owned()],
        mapping: noiseless_mapping(),
        broad_clients: true,
        events,
        // A static metric space: without this, natural route epochs
        // legitimately remap the client and the exact count is lost.
        latency: Some(LatencyConfig::static_network()),
        ..ScenarioConfig::default()
    }
}

/// Zero noise, one client, one customer, one scripted event: the CDN's
/// `remap_events` counter — its ground-truth observer of mapping churn —
/// must equal the scripted event count exactly. No event is missed and
/// nothing else in the noiseless world produces a remap.
#[test]
fn zero_noise_single_event_remap_ground_truth_is_exact() {
    let seed = 17;
    let flip_at = SimTime::from_hours(2);
    let horizon = SimTime::from_hours(4);
    let interval = SimDuration::from_mins(10);

    // Discovery pass: same seed, no events — find which region serves
    // the client so the scripted flip is guaranteed to displace its
    // best replica. Determinism makes the second build identical.
    let probe_region = {
        let quiet = Scenario::build(noiseless_config(seed, None));
        let client = quiet.clients()[0];
        let mut probe = CdnProbe::new(quiet.cdn(), client, quiet.names().to_vec());
        let answer = probe
            .observe(SimTime::ZERO)
            .expect("noiseless probe answers at t=0");
        quiet.cdn().replica_region(answer[0])
    };

    let script = EventScript::new().with_reserve(probe_region, 12).at(
        flip_at,
        EventKind::RegionalPoolFlip {
            region: probe_region,
            fraction: 1.0,
        },
    );
    let scenario = Scenario::build(noiseless_config(seed, Some(script)));
    assert_eq!(scenario.event_log().len(), 1, "one ground-truth record");
    assert_eq!(
        scenario.cdn().stats().remap_events,
        0,
        "quiet before probes"
    );

    // Probe across the flip. With zero noise the best replica is a pure
    // function of the active set, so exactly the scripted flip — and
    // nothing else — moves the client.
    let client = scenario.clients()[0];
    let mut probe = CdnProbe::new(scenario.cdn(), client, scenario.names().to_vec());
    for t in SimTime::ZERO.iter_until(horizon, interval) {
        let _ = probe.observe(t);
    }

    let stats = scenario.cdn().stats();
    assert_eq!(
        stats.remap_events,
        scenario.event_log().len() as u64,
        "remap ground truth must exactly match the scripted event count"
    );
    assert_eq!(stats.remap_observer_dropped, 0, "observer table never full");
}

/// The same noiseless world without any script records zero remaps:
/// the exactness above is not an accident of the counter firing often.
#[test]
fn zero_noise_quiet_world_records_no_remaps() {
    let scenario = Scenario::build(noiseless_config(17, None));
    let client = scenario.clients()[0];
    let mut probe = CdnProbe::new(scenario.cdn(), client, scenario.names().to_vec());
    for t in SimTime::ZERO.iter_until(SimTime::from_hours(4), SimDuration::from_mins(10)) {
        let _ = probe.observe(t);
    }
    assert_eq!(scenario.cdn().stats().remap_events, 0);
}
