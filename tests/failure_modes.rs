//! Failure-mode and edge-case integration tests: the system must degrade
//! gracefully, never panic, when parts of the world misbehave.

use crp::{CdnProbe, Scenario, ScenarioConfig};
use crp_cdn::{Cdn, DeploymentSpec, MappingConfig};
use crp_core::{ObservationSource, SimilarityMetric, SmfConfig, WindowPolicy};
use crp_dns::DomainName;
use crp_netsim::{HostProfile, NetworkBuilder, PopulationSpec, Region, SimDuration, SimTime};

#[test]
fn client_with_no_observations_is_reported_not_paniced() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 1,
        candidate_servers: 4,
        clients: 2,
        cdn_scale: 0.2,
        ..ScenarioConfig::default()
    });
    // Nobody observed anything: the service is empty.
    let service: crp_core::CrpService<crp_netsim::HostId, crp_cdn::ReplicaId> =
        crp_core::CrpService::new(WindowPolicy::All, SimilarityMetric::Cosine);
    let client = scenario.clients()[0];
    assert!(service
        .closest(&client, scenario.candidates().to_vec(), SimTime::ZERO)
        .is_err());
    let clustering = service.cluster(&SmfConfig::paper(0.1), SimTime::ZERO);
    assert_eq!(clustering.total_nodes(), 0);
}

#[test]
fn probe_against_unknown_names_yields_no_observations() {
    let mut net = NetworkBuilder::new(2)
        .tier1_count(3)
        .transit_per_region(1)
        .stubs_per_region(3)
        .build();
    let host = net.add_population(&PopulationSpec::dns_servers(1))[0];
    let cdn = Cdn::deploy(
        net,
        &DeploymentSpec::akamai_like(0.2),
        MappingConfig::default(),
    );
    // Valid name, but the CDN does not serve it.
    let name: DomainName = "www.not-a-customer.example".parse().unwrap();
    let mut probe = CdnProbe::new(&cdn, host, vec![name]);
    for i in 0..5 {
        assert_eq!(probe.observe(SimTime::from_mins(i * 10)), None);
    }
    assert_eq!(probe.queries_issued(), 5);
}

#[test]
fn region_without_any_replica_still_gets_answers() {
    // The CDN has zero presence in Africa; African clients must still be
    // answered (with scattered/fallback servers), not dropped.
    let mut net = NetworkBuilder::new(3)
        .tier1_count(3)
        .transit_per_region(2)
        .stubs_per_region(6)
        .build();
    let clients = net.add_population(&PopulationSpec::single_region(
        HostProfile::DnsServer,
        4,
        Region::Africa,
    ));
    let spec = DeploymentSpec::custom(vec![(Region::NorthAmerica, 30)], 6);
    let mut cdn = Cdn::deploy(net, &spec, MappingConfig::default());
    let name = cdn.add_customer("us.i1.yimg.com").unwrap();
    for &client in &clients {
        let mut probe = CdnProbe::new(&cdn, client, vec![name.clone()]);
        let mut answered = 0;
        for i in 0..12u64 {
            if probe.observe(SimTime::from_mins(i * 10)).is_some() {
                answered += 1;
            }
        }
        assert_eq!(answered, 12, "client {client} lost answers");
    }
    let stats = cdn.stats();
    assert!(
        stats.fallback_answers + stats.scattered_answers > 0,
        "coverage machinery never engaged: {stats:?}"
    );
}

#[test]
fn filtered_probe_can_go_completely_dark() {
    // With the §VI filter on and only CDN-owned fallbacks reachable, a
    // probe may legitimately produce nothing; downstream must cope.
    let mut net = NetworkBuilder::new(4)
        .tier1_count(3)
        .transit_per_region(1)
        .stubs_per_region(3)
        .build();
    let client = net.add_population(&PopulationSpec::single_region(
        HostProfile::DnsServer,
        1,
        Region::Africa,
    ))[0];
    // One distant edge replica and many fallbacks.
    let spec = DeploymentSpec::custom(vec![(Region::NorthAmerica, 1)], 8);
    let mut cdn = Cdn::deploy(
        net,
        &spec,
        MappingConfig {
            fallback_probability: 1.0,
            coverage_radius_ms: 1.0, // everyone is poorly covered
            ..MappingConfig::default()
        },
    );
    // Full share: the single edge replica must be eligible.
    let name = cdn.add_customer_with_share("us.i1.yimg.com", 1.0).unwrap();
    let mut probe = CdnProbe::new(&cdn, client, vec![name]).filter_cdn_owned(true);
    let mut saw_any = false;
    for i in 0..10u64 {
        if probe.observe(SimTime::from_mins(i * 10)).is_some() {
            saw_any = true;
        }
    }
    assert!(!saw_any, "filter should drop all fallback-only answers");
}

#[test]
fn single_candidate_selection_is_trivially_stable() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 5,
        candidate_servers: 1,
        clients: 3,
        cdn_scale: 0.2,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(3);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::All,
        SimilarityMetric::Cosine,
    );
    for &client in scenario.clients() {
        if let Ok(ranking) = service.closest(&client, scenario.candidates().to_vec(), end) {
            assert_eq!(ranking.len(), 1);
            assert_eq!(ranking.top(), Some(&scenario.candidates()[0]));
        }
    }
}

#[test]
fn window_larger_than_history_and_empty_window_behave() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 6,
        candidate_servers: 0,
        clients: 2,
        cdn_scale: 0.2,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(1);
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(10_000), // way more than the 6 probes taken
        SimilarityMetric::Cosine,
    );
    let client = scenario.clients()[0];
    assert!(service.ratio_map(&client, end).is_ok());

    // A max-age window entirely in the past selects nothing.
    let stale = service
        .clone()
        .with_window(WindowPolicy::MaxAge(SimDuration::from_secs(1)));
    assert!(stale.ratio_map(&client, SimTime::from_hours(50)).is_err());
}
