//! Integration comparisons between CRP and the baseline systems.

use crp::{Scenario, ScenarioConfig};
use crp_baselines::{asn_clustering, Vivaldi, VivaldiConfig};
use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{SimDuration, SimTime};

fn scenario(seed: u64, candidates: usize, clients: usize) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        candidate_servers: candidates,
        clients,
        cdn_scale: 0.5,
        ..ScenarioConfig::default()
    })
}

#[test]
fn crp_and_meridian_are_comparable_without_faults() {
    let s = scenario(1, 40, 30);
    let end = SimTime::from_hours(8);
    let service = s.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let overlay = MeridianOverlay::build(
        s.network(),
        s.candidates(),
        MeridianConfig::default(),
        FaultPlan::none(),
    );
    let mut crp_total = 0.0;
    let mut meridian_total = 0.0;
    let mut n = 0;
    for (i, &client) in s.clients().iter().enumerate() {
        let Ok(ranking) = service.closest(&client, s.candidates().to_vec(), end) else {
            continue;
        };
        let Some(&crp_pick) = ranking.top() else {
            continue;
        };
        let entry = s.candidates()[i % s.candidates().len()];
        let m = overlay.closest_node_query(s.network(), entry, client, end);
        crp_total += s.network().rtt(client, crp_pick, end).millis();
        meridian_total += s.network().rtt(client, m.selected, end).millis();
        n += 1;
    }
    assert!(n >= 20, "positionable clients: {n}");
    // Comparable: within 2x of each other in aggregate.
    assert!(crp_total < meridian_total * 2.0);
    assert!(meridian_total < crp_total * 2.0);
}

#[test]
fn meridian_faults_degrade_its_answers() {
    let s = scenario(2, 30, 20);
    let t = SimTime::from_hours(1);
    let healthy = MeridianOverlay::build(
        s.network(),
        s.candidates(),
        MeridianConfig::default(),
        FaultPlan::none(),
    );
    // Every entry node is in its bootstrap phase: answers are the entry
    // itself, regardless of the target.
    let mut plan = FaultPlan::none();
    for &c in s.candidates() {
        plan = plan.with_bootstrap_self_recommend(c, SimTime::from_hours(10));
    }
    let faulty =
        MeridianOverlay::build(s.network(), s.candidates(), MeridianConfig::default(), plan);
    let mut healthy_total = 0.0;
    let mut faulty_total = 0.0;
    for (i, &client) in s.clients().iter().enumerate() {
        let entry = s.candidates()[i % s.candidates().len()];
        let h = healthy.closest_node_query(s.network(), entry, client, t);
        let f = faulty.closest_node_query(s.network(), entry, client, t);
        healthy_total += s.network().rtt(client, h.selected, t).millis();
        faulty_total += s.network().rtt(client, f.selected, t).millis();
        assert_eq!(f.selected, entry, "bootstrap nodes answer with themselves");
    }
    assert!(
        faulty_total > healthy_total,
        "faults should hurt: healthy {healthy_total:.0} vs faulty {faulty_total:.0}"
    );
}

#[test]
fn crp_clusters_across_as_boundaries() {
    let s = scenario(3, 0, 60);
    let end = SimTime::from_hours(8);
    let service = s.observe_hosts(
        s.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let crp = service.cluster(&SmfConfig::paper(0.1), end);
    let asn = asn_clustering(s.network(), s.clients());
    assert!(
        crp.summary().nodes_clustered > asn.summary().nodes_clustered,
        "CRP {} vs ASN {}",
        crp.summary().nodes_clustered,
        asn.summary().nodes_clustered
    );
    // And at least one CRP cluster truly spans two ASes.
    let net = s.network();
    let spans = crp.multi_clusters().any(|c| {
        let first = net.host(*c.center()).asn();
        c.members().iter().any(|m| net.host(*m).asn() != first)
    });
    assert!(spans, "no CRP cluster spans an AS boundary");
}

#[test]
fn vivaldi_estimates_correlate_with_truth() {
    let s = scenario(4, 30, 0);
    let mut vivaldi = Vivaldi::new(s.candidates(), VivaldiConfig::default());
    vivaldi.run_rounds(s.network(), 30, SimTime::ZERO);
    let err = vivaldi.median_relative_error(s.network(), SimTime::ZERO);
    assert!(err < 0.6, "vivaldi median relative error {err:.2}");
    assert!(vivaldi.samples_taken() > 0);
}
