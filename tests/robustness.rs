//! Robustness integration tests: CRP under CDN outages and node churn.

use crp::{CdnProbe, Scenario, ScenarioConfig};
use crp_cdn::{Cdn, DeploymentSpec, MappingConfig, ReplicaId};
use crp_core::{CrpService, ObservationSource, SimilarityMetric, WindowPolicy};
use crp_netsim::{HostId, NetworkBuilder, PopulationSpec, SimDuration, SimTime};

/// A world where we control the CDN directly (for outage scheduling).
fn outage_world() -> (Cdn, Vec<HostId>, crp_dns::DomainName) {
    let mut net = NetworkBuilder::new(71)
        .tier1_count(3)
        .transit_per_region(2)
        .stubs_per_region(8)
        .build();
    let clients = net.add_population(&PopulationSpec::dns_servers(6));
    let mut cdn = Cdn::deploy(
        net,
        &DeploymentSpec::akamai_like(0.4),
        MappingConfig::default(),
    );
    let name = cdn.add_customer("us.i1.yimg.com").unwrap();
    (cdn, clients, name)
}

#[test]
fn maps_adapt_across_a_replica_outage() {
    let (mut cdn, clients, name) = outage_world();
    let client = clients[0];

    // Discover the client's dominant replica in a dry run.
    let mut probe = CdnProbe::new(&cdn, client, vec![name.clone()]);
    let mut tracker: CrpService<HostId, ReplicaId> =
        CrpService::new(WindowPolicy::LastProbes(12), SimilarityMetric::Cosine);
    for t in SimTime::ZERO.iter_until(SimTime::from_hours(4), SimDuration::from_mins(10)) {
        if let Some(servers) = probe.observe(t) {
            tracker.record(client, t, servers);
        }
    }
    let before = tracker.ratio_map(&client, SimTime::from_hours(4)).unwrap();
    let (dominant, share) = before.strongest();
    let dominant = *dominant;
    assert!(share > 0.2, "no dominant replica to fail");

    // Kill the dominant replica for day two and keep observing.
    cdn.schedule_outage(dominant, SimTime::from_hours(4), SimTime::from_hours(400));
    let mut probe = CdnProbe::new(&cdn, client, vec![name.clone()]);
    let mut after_service: CrpService<HostId, ReplicaId> =
        CrpService::new(WindowPolicy::LastProbes(12), SimilarityMetric::Cosine);
    for t in SimTime::from_hours(4).iter_until(SimTime::from_hours(8), SimDuration::from_mins(10)) {
        if let Some(servers) = probe.observe(t) {
            after_service.record(client, t, servers);
        }
    }
    let after = after_service
        .ratio_map(&client, SimTime::from_hours(8))
        .unwrap();
    // The failed replica has vanished from the window; the client still
    // has a usable, non-empty map.
    assert_eq!(after.get(&dominant), 0.0, "outaged replica still in map");
    assert!(!after.is_empty());
}

#[test]
fn positioning_survives_partial_outage() {
    // Knock out 20% of a scenario's replicas; selection quality for the
    // remaining infrastructure must stay far better than random.
    let scenario = Scenario::build(ScenarioConfig {
        seed: 72,
        candidate_servers: 24,
        clients: 12,
        cdn_scale: 0.4,
        ..ScenarioConfig::default()
    });
    // (Outages must be scheduled at deploy time in this API; emulate a
    // degraded CDN by just running against a much sparser deployment.)
    let sparse = Scenario::build(ScenarioConfig {
        seed: 72,
        candidate_servers: 24,
        clients: 12,
        cdn_scale: 0.15,
        ..ScenarioConfig::default()
    });
    for s in [&scenario, &sparse] {
        let end = SimTime::from_hours(6);
        let service = s.observe_all(
            SimTime::ZERO,
            end,
            SimDuration::from_mins(10),
            WindowPolicy::LastProbes(30),
            SimilarityMetric::Cosine,
        );
        let mut crp = 0.0;
        let mut random = 0.0;
        let mut n = 0;
        for (i, &client) in s.clients().iter().enumerate() {
            let Ok(ranking) = service.closest(&client, s.candidates().to_vec(), end) else {
                continue;
            };
            let Some(&pick) = ranking.top() else { continue };
            crp += s.mean_rtt(client, pick, SimTime::ZERO, end).millis();
            random += s
                .mean_rtt(client, s.candidates()[(i * 5) % 24], SimTime::ZERO, end)
                .millis();
            n += 1;
        }
        assert!(n >= 8, "positionable clients {n}");
        assert!(crp < random, "CRP {crp:.0} vs random {random:.0}");
    }
}

#[test]
fn service_churn_cycle_is_clean() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 73,
        candidate_servers: 0,
        clients: 8,
        cdn_scale: 0.3,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(3);
    let mut service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::All,
        SimilarityMetric::Cosine,
    );
    let initial = service.node_count();
    assert!(initial >= 7);

    // Half the nodes leave.
    for &n in &scenario.clients()[..4] {
        service.remove_node(&n);
    }
    assert_eq!(service.node_count(), initial - 4);

    // Long idle period: everything ages out.
    let (dropped, removed) =
        service.prune_stale(SimTime::from_hours(100), SimDuration::from_hours(1));
    assert!(dropped > 0);
    assert_eq!(removed, initial - 4);
    assert_eq!(service.node_count(), 0);
}
