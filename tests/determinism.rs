//! Determinism: a seed fully determines every experiment artifact.

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{SimDuration, SimTime};

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        candidate_servers: 16,
        clients: 10,
        cdn_scale: 0.3,
        ..ScenarioConfig::default()
    })
}

#[test]
fn identical_seeds_identical_world() {
    let a = scenario(9);
    let b = scenario(9);
    for (x, y) in a.network().hosts().iter().zip(b.network().hosts()) {
        assert_eq!(x.location(), y.location());
        assert_eq!(x.asn(), y.asn());
        assert_eq!(x.access_ms(), y.access_ms());
    }
    let t = SimTime::from_mins(1234);
    for &h1 in a.clients() {
        for &h2 in a.candidates() {
            assert_eq!(a.network().rtt(h1, h2, t), b.network().rtt(h1, h2, t));
        }
    }
}

#[test]
fn different_seeds_different_world() {
    let a = scenario(10);
    let b = scenario(11);
    let same = a
        .network()
        .hosts()
        .iter()
        .zip(b.network().hosts())
        .all(|(x, y)| x.location() == y.location());
    assert!(!same);
}

#[test]
fn identical_seeds_identical_observations_and_decisions() {
    let a = scenario(12);
    let b = scenario(12);
    let end = SimTime::from_hours(4);
    let run = |s: &Scenario| {
        s.observe_all(
            SimTime::ZERO,
            end,
            SimDuration::from_mins(10),
            WindowPolicy::LastProbes(10),
            SimilarityMetric::Cosine,
        )
    };
    let sa = run(&a);
    let sb = run(&b);
    for &client in a.clients() {
        assert_eq!(
            sa.ratio_map(&client, end).ok(),
            sb.ratio_map(&client, end).ok()
        );
        let ra = sa.closest(&client, a.candidates().to_vec(), end).ok();
        let rb = sb.closest(&client, b.candidates().to_vec(), end).ok();
        assert_eq!(
            ra.as_ref().and_then(|r| r.top()),
            rb.as_ref().and_then(|r| r.top())
        );
    }
    let ca = sa.cluster(&SmfConfig::paper(0.1), end);
    let cb = sb.cluster(&SmfConfig::paper(0.1), end);
    assert_eq!(ca, cb);
}

#[test]
fn meridian_overlay_is_deterministic() {
    let s = scenario(13);
    let build = || {
        MeridianOverlay::build(
            s.network(),
            s.candidates(),
            MeridianConfig::default(),
            FaultPlan::paper_like(s.candidates(), 17),
        )
    };
    let o1 = build();
    let o2 = build();
    let t = SimTime::from_hours(20);
    for &client in s.clients() {
        let r1 = o1.closest_node_query(s.network(), s.candidates()[0], client, t);
        let r2 = o2.closest_node_query(s.network(), s.candidates()[0], client, t);
        assert_eq!(r1.selected, r2.selected);
        assert_eq!(r1.hops, r2.hops);
    }
}
