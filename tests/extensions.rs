//! Integration tests for the §VI / §II extensions: name selection,
//! passive monitoring, detouring, and service snapshots working against
//! the full simulated stack.

use crp::{DetourFinder, NameEvaluator, PassiveMonitor, Scenario, ScenarioConfig};
use crp_core::{ServiceSnapshot, SimilarityMetric, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};

fn scenario(seed: u64, clients: usize) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        candidate_servers: 0,
        clients,
        cdn_scale: 0.4,
        ..ScenarioConfig::default()
    })
}

#[test]
fn name_selection_keeps_usable_names_for_most_clients() {
    let s = scenario(1, 10);
    let mut kept_total = 0usize;
    for &client in s.clients() {
        let eval = NameEvaluator::new(s.cdn(), client, 10, SimDuration::from_mins(10));
        kept_total += eval.select(s.names(), SimTime::ZERO, None).len();
    }
    // Most (client, name) combinations are usable under full-ish
    // coverage.
    assert!(
        kept_total >= 10,
        "only {kept_total}/20 name assessments passed"
    );
}

#[test]
fn passive_and_active_observation_agree_on_position() {
    let s = scenario(2, 4);
    let client = s.clients()[0];
    let end = SimTime::from_hours(8);

    // Active campaign.
    let active = s.observe_hosts(
        &[client],
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::All,
        SimilarityMetric::Cosine,
    );
    let active_map = active.ratio_map(&client, end).expect("active observes");

    // Passive campaign over the same period.
    let mut monitor = PassiveMonitor::new(s.cdn(), client, s.names().to_vec());
    for burst in 0..24u64 {
        monitor.browse_session(SimTime::from_mins(burst * 20), SimDuration::from_mins(2), 4);
    }
    let passive_map = monitor
        .tracker()
        .ratio_map(WindowPolicy::All, end)
        .expect("passive observes");

    // The two maps describe the same node: they must be highly similar.
    let sim = active_map.cosine_similarity(&passive_map);
    assert!(sim > 0.5, "active/passive maps disagree: sim {sim:.2}");
}

#[test]
fn detour_outcomes_are_internally_consistent() {
    let s = scenario(3, 12);
    let end = SimTime::from_hours(6);
    let service = s.observe_hosts(
        s.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let finder = DetourFinder::new(s.cdn());
    let mut checked = 0;
    for (i, &a) in s.clients().iter().enumerate() {
        for &b in &s.clients()[i + 1..] {
            let (Ok(ma), Ok(mb)) = (service.ratio_map(&a, end), service.ratio_map(&b, end)) else {
                continue;
            };
            let o = finder.find(a, b, &ma, &mb, end);
            if o.detour_wins() {
                assert!(o.savings().millis() > 0.0);
                assert!(o.best_detour.expect("winner") < o.direct);
            } else {
                assert_eq!(o.savings(), crp_netsim::Rtt::ZERO);
            }
            checked += 1;
        }
    }
    assert!(checked > 20);
}

#[test]
fn snapshot_preserves_live_campaign_state() {
    let s = scenario(4, 6);
    let end = SimTime::from_hours(4);
    let service = s.observe_hosts(
        s.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(10),
        SimilarityMetric::Cosine,
    );
    let json = serde_json::to_string(&ServiceSnapshot::capture(&service)).expect("serializes");
    let restored: ServiceSnapshot<crp_netsim::HostId, crp_cdn::ReplicaId> =
        serde_json::from_str(&json).expect("deserializes");
    let service2 = restored.restore();
    for &c in s.clients() {
        assert_eq!(
            service.ratio_map(&c, end).ok(),
            service2.ratio_map(&c, end).ok(),
            "restored map differs for {c}"
        );
    }
}
