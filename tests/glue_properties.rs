//! Property-based tests over the façade glue: probes, scenarios and the
//! full observation pipeline under random configurations.

use crp::{CdnProbe, Scenario, ScenarioConfig};
use crp_core::{ObservationSource, SimilarityMetric, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_small_scenario_builds_and_observes(
        seed in 0u64..50,
        candidates in 1usize..12,
        clients in 1usize..8,
    ) {
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            candidate_servers: candidates,
            clients,
            cdn_scale: 0.2,
            ..ScenarioConfig::default()
        });
        prop_assert_eq!(scenario.candidates().len(), candidates);
        prop_assert_eq!(scenario.clients().len(), clients);
        let end = SimTime::from_hours(2);
        let service = scenario.observe_all(
            SimTime::ZERO,
            end,
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        // Maps, when they exist, are valid and reference deployed
        // replicas.
        for &h in scenario.candidates().iter().chain(scenario.clients()) {
            if let Ok(map) = service.ratio_map(&h, end) {
                let total: f64 = map.iter().map(|(_, v)| v).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for (replica, _) in map.iter() {
                    prop_assert!(replica.index() < scenario.cdn().replicas().len());
                }
            }
        }
    }

    #[test]
    fn probe_observation_count_matches_queries(
        seed in 0u64..30,
        probes in 1u64..30,
    ) {
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            candidate_servers: 0,
            clients: 1,
            cdn_scale: 0.2,
            ..ScenarioConfig::default()
        });
        let client = scenario.clients()[0];
        let mut probe = CdnProbe::new(scenario.cdn(), client, scenario.names().to_vec());
        for i in 0..probes {
            let _ = probe.observe(SimTime::from_mins(i * 10));
        }
        // Two names per probe round.
        prop_assert_eq!(probe.queries_issued(), probes * 2);
    }

    #[test]
    fn ranking_is_invariant_to_candidate_order(
        seed in 0u64..20,
    ) {
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            candidate_servers: 8,
            clients: 2,
            cdn_scale: 0.3,
            ..ScenarioConfig::default()
        });
        let end = SimTime::from_hours(3);
        let service = scenario.observe_all(
            SimTime::ZERO,
            end,
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        let client = scenario.clients()[0];
        let forward = service.closest(&client, scenario.candidates().to_vec(), end);
        let mut reversed_candidates = scenario.candidates().to_vec();
        reversed_candidates.reverse();
        let reversed = service.closest(&client, reversed_candidates, end);
        match (forward, reversed) {
            (Ok(f), Ok(r)) => prop_assert_eq!(f.entries(), r.entries()),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "asymmetric outcome: {:?}", other.0.is_ok()),
        }
    }
}
