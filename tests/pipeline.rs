//! End-to-end pipeline tests: topology → CDN → DNS probing →
//! observations → selection and clustering.

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};

fn small_scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        candidate_servers: 24,
        clients: 16,
        cdn_scale: 0.4,
        ..ScenarioConfig::default()
    })
}

#[test]
fn full_pipeline_produces_positionable_hosts() {
    let scenario = small_scenario(1);
    let end = SimTime::from_hours(6);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(10),
        SimilarityMetric::Cosine,
    );
    // Virtually all hosts observe redirections.
    assert!(service.node_count() >= 36, "{}", service.node_count());
    // Ratio maps look like the paper's: small support, normalized.
    let mut sizes = Vec::new();
    for &h in scenario.candidates().iter().chain(scenario.clients()) {
        if let Ok(map) = service.ratio_map(&h, end) {
            let total: f64 = map.iter().map(|(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-9);
            sizes.push(map.len());
        }
    }
    let max = *sizes.iter().max().expect("maps exist");
    assert!(max < 30, "ratio maps should stay small, got {max}");
}

#[test]
fn selection_beats_random_on_average() {
    let scenario = small_scenario(2);
    let end = SimTime::from_hours(6);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let mut crp_sum = 0.0;
    let mut random_sum = 0.0;
    let mut n = 0;
    for (i, &client) in scenario.clients().iter().enumerate() {
        let Ok(ranking) = service.closest(&client, scenario.candidates().to_vec(), end) else {
            continue;
        };
        let Some(&pick) = ranking.top() else { continue };
        let random = scenario.candidates()[(i * 7) % scenario.candidates().len()];
        crp_sum += scenario.mean_rtt(client, pick, SimTime::ZERO, end).millis();
        random_sum += scenario
            .mean_rtt(client, random, SimTime::ZERO, end)
            .millis();
        n += 1;
    }
    assert!(n >= 10, "too few positionable clients: {n}");
    assert!(
        crp_sum < random_sum * 0.8,
        "CRP ({crp_sum:.0}ms total) should clearly beat random ({random_sum:.0}ms total)"
    );
}

#[test]
fn clustering_groups_nearby_not_distant() {
    let scenario = small_scenario(3);
    let end = SimTime::from_hours(6);
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let clustering = service.cluster(&SmfConfig::paper(0.1), end);
    let net = scenario.network();
    // Mean intra-cluster distance must beat the population mean distance.
    let mut intra = Vec::new();
    for cluster in clustering.multi_clusters() {
        let ms = cluster.members();
        for (i, a) in ms.iter().enumerate() {
            for b in &ms[i + 1..] {
                intra.push(net.baseline_rtt(*a, *b).millis());
            }
        }
    }
    let mut all = Vec::new();
    for (i, a) in scenario.clients().iter().enumerate() {
        for b in &scenario.clients()[i + 1..] {
            all.push(net.baseline_rtt(*a, *b).millis());
        }
    }
    if intra.is_empty() {
        return; // tiny scenario formed no multi-clusters; nothing to assert
    }
    let mean_intra = intra.iter().sum::<f64>() / intra.len() as f64;
    let mean_all = all.iter().sum::<f64>() / all.len() as f64;
    assert!(
        mean_intra < mean_all * 0.5,
        "intra {mean_intra:.0}ms vs population {mean_all:.0}ms"
    );
}

#[test]
fn probing_cost_is_constant_per_node() {
    // The paper's scalability claim: per-node overhead is O(1) in system
    // size. Doubling the population must not change per-node queries.
    let end = SimTime::from_hours(2);
    let per_node_queries = |clients: usize| -> f64 {
        let scenario = Scenario::build(ScenarioConfig {
            seed: 4,
            candidate_servers: 0,
            clients,
            cdn_scale: 0.3,
            ..ScenarioConfig::default()
        });
        let _ = scenario.observe_hosts(
            scenario.clients(),
            SimTime::ZERO,
            end,
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        scenario.cdn().stats().queries_answered as f64 / clients as f64
    };
    let small = per_node_queries(8);
    let large = per_node_queries(32);
    assert!(
        (small - large).abs() < 1e-9,
        "per-node load changed with population: {small} vs {large}"
    );
}

#[test]
fn king_ground_truth_is_usable() {
    let scenario = small_scenario(5);
    let king = scenario.king(crp_netsim::KingConfig::default());
    let a = scenario.clients()[0];
    let b = scenario.clients()[1];
    let est = king.median_estimate(a, b, SimTime::ZERO, SimTime::from_hours(1), 5);
    let truth = scenario.network().rtt(a, b, SimTime::from_mins(30));
    let est = est.expect("5 attempts rarely all fail");
    let ratio = est.millis() / truth.millis();
    assert!(
        (0.5..2.0).contains(&ratio),
        "king est {est} vs truth {truth}"
    );
}
