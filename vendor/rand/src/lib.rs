//! A workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The CRP workspace builds in offline environments where crates.io is
//! unreachable, so this crate vendors the *subset* of the rand 0.9 API the
//! simulator uses: [`StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`], and the
//! slice helpers in [`seq`].
//!
//! Two deliberate omissions double as reproducibility guarantees:
//!
//! * there is **no** `thread_rng`, `from_entropy`, or free-standing
//!   `rand::random()` — every generator must be constructed from an
//!   explicit seed, which is exactly the invariant `crp-xtask lint`
//!   enforces (rule `CRP002`);
//! * the stream for a given seed is fixed by this file alone, so results
//!   never shift underneath a figure when an upstream crate changes its
//!   algorithm.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire-style
/// widening multiply; the tiny modulo bias of plain `% n` is avoided).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected to keep the distribution exactly uniform; retry.
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let draw = uniform_u64_below(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let draw = uniform_u64_below(rng, span as u64);
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Random>::random(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Random>::random(rng);
                start + (end - start) * u
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`f64` samples `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Random>::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic and portable; intentionally *not*
    /// constructible from OS entropy.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random selection from slices.

    use super::Rng;

    /// Uniform selection of one element by index.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..100 {
            let x = rng.random_range(3..=3u32);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let x = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(19);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).expect("non-empty")));
        }
        let mut v: Vec<u32> = (0..20).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
