//! A workspace-local, dependency-free stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the CRP test suites use:
//! [`Strategy`] with [`Strategy::prop_map`], ranges / tuples / regex
//! string literals as strategies, [`collection::vec`],
//! [`sample::select`], the [`proptest!`] macro, and the `prop_assert*`
//! macros. Cases are drawn from a generator seeded deterministically
//! from the test's name, so failures reproduce across runs without any
//! persistence file.
//!
//! Differences from upstream, by design: no shrinking (a failing case is
//! reported as-is) and `prop_assert!` panics like `assert!` instead of
//! returning an error value.

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a stable hash of `label` (typically the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a, then a SplitMix64 scramble so similar names diverge.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply range reduction; bias is negligible for
        // test-case generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Test-case generation configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// String literals act as regex-shaped generators, as in upstream
/// proptest. The supported grammar covers the workspace's patterns:
/// literals, `[a-z0-9_]` classes, `(...)` groups, `|` alternation, and
/// the `?`, `*`, `+`, `{m}`, `{m,n}` repeaters (`*`/`+` capped at 8).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::emit(&ast, rng, &mut out);
        out
    }
}

mod regex {
    use super::TestRng;

    pub enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Box<Node>),
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, consumed) = parse_alt(&chars, 0);
        assert!(
            consumed == chars.len(),
            "unsupported regex strategy: {pattern}"
        );
        node
    }

    fn parse_alt(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut branches = Vec::new();
        loop {
            let (seq, next) = parse_seq(chars, pos);
            branches.push(seq);
            pos = next;
            if chars.get(pos) == Some(&'|') {
                pos += 1;
            } else {
                break;
            }
        }
        if branches.len() == 1 {
            (branches.pop().expect("non-empty"), pos)
        } else {
            (Node::Alt(branches), pos)
        }
    }

    fn parse_seq(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut items = Vec::new();
        while pos < chars.len() && chars[pos] != '|' && chars[pos] != ')' {
            let (atom, next) = parse_atom(chars, pos);
            pos = next;
            // Postfix repeaters bind to the preceding atom.
            let (atom, next) = parse_postfix(atom, chars, pos);
            pos = next;
            items.push(atom);
        }
        (Node::Seq(items), pos)
    }

    fn parse_atom(chars: &[char], pos: usize) -> (Node, usize) {
        match chars[pos] {
            '(' => {
                let (inner, next) = parse_alt(chars, pos + 1);
                assert!(chars.get(next) == Some(&')'), "unbalanced group");
                (Node::Group(Box::new(inner)), next + 1)
            }
            '[' => parse_class(chars, pos + 1),
            '\\' => {
                let c = *chars.get(pos + 1).expect("dangling escape");
                (Node::Literal(c), pos + 2)
            }
            c => {
                assert!(
                    !matches!(c, '.' | '^' | '$' | '*' | '+' | '?' | '{'),
                    "unsupported regex metacharacter `{c}`"
                );
                (Node::Literal(c), pos + 1)
            }
        }
    }

    fn parse_class(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut ranges = Vec::new();
        while chars.get(pos) != Some(&']') {
            let lo = *chars.get(pos).expect("unterminated class");
            if chars.get(pos + 1) == Some(&'-') && chars.get(pos + 2) != Some(&']') {
                let hi = *chars.get(pos + 2).expect("unterminated class");
                ranges.push((lo, hi));
                pos += 3;
            } else {
                ranges.push((lo, lo));
                pos += 1;
            }
        }
        (Node::Class(ranges), pos + 1)
    }

    fn parse_postfix(atom: Node, chars: &[char], pos: usize) -> (Node, usize) {
        match chars.get(pos) {
            Some('?') => (Node::Repeat(Box::new(atom), 0, 1), pos + 1),
            Some('*') => (Node::Repeat(Box::new(atom), 0, 8), pos + 1),
            Some('+') => (Node::Repeat(Box::new(atom), 1, 8), pos + 1),
            Some('{') => {
                let close = chars[pos..]
                    .iter()
                    .position(|c| *c == '}')
                    .expect("unterminated repetition")
                    + pos;
                let spec: String = chars[pos + 1..close].iter().collect();
                let (lo, hi) = match spec.split_once(',') {
                    None => {
                        let n: u32 = spec.parse().expect("bad repetition count");
                        (n, n)
                    }
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition lower bound"),
                        hi.parse().expect("bad repetition upper bound"),
                    ),
                };
                (Node::Repeat(Box::new(atom), lo, hi), close + 1)
            }
            _ => (atom, pos),
        }
    }

    pub fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                    .sum();
                let mut draw = rng.below(total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi) - u64::from(*lo) + 1;
                    if draw < span {
                        let c =
                            char::from_u32(*lo as u32 + draw as u32).expect("class range is valid");
                        out.push(c);
                        return;
                    }
                    draw -= span;
                }
            }
            Node::Group(inner) => emit(inner, rng, out),
            Node::Seq(items) => {
                for item in items {
                    emit(item, rng, out);
                }
            }
            Node::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                emit(&branches[pick], rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let count = lo + rng.below(u64::from(hi - lo) + 1) as u32;
                for _ in 0..count {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use super::{Strategy, TestRng};

    /// A strategy choosing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from no options");
        Select { options }
    }

    /// Output of [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a property-test condition (panics like `assert!`; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skips the current case when its precondition fails. Only valid
/// directly inside a `proptest!` body (it early-returns from the
/// per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return false;
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                // The per-case closure lets `prop_assume!` skip a case
                // by returning early; `false` marks a skipped case.
                let __ran: bool = (move || {
                    $body
                    true
                })();
                let _ = __ran;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1_000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&y));
        }
    }

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = crate::TestRng::deterministic("regex");
        for _ in 0..500 {
            let s = "[a-z0-9]{1,12}(-[a-z0-9]{1,6})?".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 19, "{s}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s}"
            );
            assert!(!s.starts_with('-'), "{s}");
        }
    }

    #[test]
    fn vec_and_select_and_map() {
        let mut rng = crate::TestRng::deterministic("vec");
        let strat = prop::collection::vec((0u32..5, 0.0f64..1.0), 2..6).prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.generate(&mut rng);
            assert!((2..6).contains(&n));
        }
        let pick = prop::sample::select(vec!["a", "b"]);
        for _ in 0..50 {
            assert!(["a", "b"].contains(&pick.generate(&mut rng)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("same-label");
        let mut b = crate::TestRng::deterministic("same-label");
        for _ in 0..64 {
            assert_eq!(
                (0u64..1_000_000).generate(&mut a),
                (0u64..1_000_000).generate(&mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_compiles(x in 0u32..10, label in "[a-z]{1,4}") {
            prop_assert!(x < 10);
            prop_assert_ne!(label.len(), 0);
            prop_assert_eq!(label.len(), label.chars().count());
        }
    }
}
