//! A workspace-local, dependency-free stand-in for `criterion`.
//!
//! Mirrors the API surface the `crp-bench` suites use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`], the
//! `criterion_group!` / `criterion_main!` macros — but runs each
//! benchmark for a small fixed number of timed iterations and prints a
//! one-line median, instead of upstream's statistical sampling. Good
//! enough to keep `cargo bench` compiling and producing indicative
//! numbers offline; not a rigorous measurement harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;
const DEFAULT_SAMPLES: u64 = 10;

/// Benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    /// When true (``--test``/``--list``), run each benchmark once and
    /// skip timing, matching upstream's `cargo test --benches` mode.
    test_mode: bool,
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion {
            test_mode,
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs one benchmark under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().label, self.samples, self.test_mode, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (upstream semantics; here it
    /// is the number of timed iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.samples, self.criterion.test_mode, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.samples, self.criterion.test_mode, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity; no-op here).
    pub fn finish(self) {}
}

/// Identifies a benchmark within its group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id naming only the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Hint for how much setup output to buffer (ignored here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, test_mode: bool, mut f: F) {
    if test_mode {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{label}: ok (test mode)");
        return;
    }
    let mut bencher = Bencher {
        iters: WARMUP_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed);
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    println!("{label}: median {median:?} over {samples} samples");
}

/// Declares a benchmark group: `criterion_group!(name, target, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            test_mode: true,
            samples: 2,
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            test_mode: true,
            samples: 2,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, n| {
            b.iter(|| total += *n)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(total >= 7);
    }
}
