//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace-local serde stand-in.
//!
//! Implemented directly on `proc_macro` tokens (syn/quote are not
//! available offline). The supported item shapes are exactly what the
//! CRP workspace declares: plain structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like, with ordinary type
//! parameters. Field types never need to be understood — generated code
//! only calls trait methods on field *values*.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic parameter as declared on the item.
struct Param {
    /// Parameter name (`N`), or the lifetime/const source text.
    name: String,
    /// Full declaration source, bounds included (`N: Ord + Clone`).
    src: String,
    /// Whether bounds may be appended (type parameters only).
    is_type: bool,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    params: Vec<Param>,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.body {
        Body::Struct(fields) => serialize_struct(&item.name, fields),
        Body::Enum(variants) => serialize_enum(&item.name, variants),
    };
    let (decl, args) = render_generics(&item.params, "::serde::Serialize");
    let code = format!(
        "impl{decl} ::serde::Serialize for {name}{args} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        name = item.name,
    );
    parse_generated(&code)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.body {
        Body::Struct(fields) => deserialize_struct(&item.name, fields),
        Body::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    let (decl, args) = render_generics(&item.params, "::serde::Deserialize");
    let code = format!(
        "impl{decl} ::serde::Deserialize for {name}{args} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name,
    );
    parse_generated(&code)
}

fn parse_generated(code: &str) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    /// Skips attributes (`#[...]`, including doc comments) and
    /// visibility (`pub`, `pub(...)`).
    fn skip_attrs_and_vis(&mut self) {
        loop {
            if self.at_punct('#') {
                self.pos += 1;
                if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    self.pos += 1;
                }
            } else if self.at_ident("pub") {
                self.pos += 1;
                if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs_and_vis();
    let kind = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    let params = if cur.at_punct('<') {
        parse_generics(&mut cur)
    } else {
        Vec::new()
    };
    // Any `where` clause would sit here; none of the workspace types
    // use one, so reject loudly rather than mis-parse.
    if cur.at_ident("where") {
        panic!("serde_derive: `where` clauses are not supported (type `{name}`)");
    }
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_body(&mut cur, &name)),
        "enum" => Body::Enum(parse_enum_body(&mut cur, &name)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, params, body }
}

/// Parses `<...>` after the item name into individual parameters.
fn parse_generics(cur: &mut Cursor) -> Vec<Param> {
    cur.pos += 1; // consume '<'
    let mut depth = 1usize;
    let mut groups: Vec<Vec<TokenTree>> = vec![Vec::new()];
    loop {
        let t = match cur.next() {
            Some(t) => t,
            None => panic!("serde_derive: unterminated generics"),
        };
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    groups.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        groups.last_mut().expect("groups is never empty").push(t);
    }
    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|tokens| {
            let src = tokens
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            let is_lifetime =
                matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '\'');
            let is_const =
                matches!(tokens.first(), Some(TokenTree::Ident(i)) if i.to_string() == "const");
            if is_lifetime || is_const {
                let name = if is_const {
                    tokens.get(1).map(ToString::to_string).unwrap_or_default()
                } else {
                    tokens
                        .iter()
                        .take(2)
                        .map(ToString::to_string)
                        .collect::<String>()
                };
                Param {
                    name,
                    src,
                    is_type: false,
                }
            } else {
                let name = match tokens.first() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    other => panic!("serde_derive: unsupported generic parameter {other:?}"),
                };
                Param {
                    name,
                    src,
                    is_type: true,
                }
            }
        })
        .collect()
}

fn parse_struct_body(cur: &mut Cursor, name: &str) -> Fields {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive: malformed struct `{name}` body: {other:?}"),
    }
}

fn parse_enum_body(cur: &mut Cursor, name: &str) -> Vec<Variant> {
    let group = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde_derive: malformed enum `{name}` body: {other:?}"),
    };
    let mut inner = Cursor::new(group.stream());
    let mut variants = Vec::new();
    loop {
        inner.skip_attrs_and_vis();
        let vname = match inner.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant in `{name}`, found {other:?}"),
        };
        let fields = match inner.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                inner.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                inner.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        if inner.at_punct('=') {
            panic!("serde_derive: explicit discriminants are not supported (`{name}::{vname}`)");
        }
        variants.push(Variant {
            name: vname,
            fields,
        });
        if inner.at_punct(',') {
            inner.pos += 1;
        }
    }
    variants
}

/// Extracts field names from the token stream of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        names.push(name);
        // Skip the type: everything until a comma outside angle brackets.
        let mut depth = 0usize;
        while let Some(t) = cur.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        cur.pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            cur.pos += 1;
        }
    }
    names
}

/// Counts fields in a tuple struct/variant `( ... )` token stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not introduce a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// Renders `impl<...>` parameter declarations (with `extra_bound` added
/// to every type parameter) and the `<...>` argument list for the type.
fn render_generics(params: &[Param], extra_bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let decl = params
        .iter()
        .map(|p| {
            if p.is_type {
                if p.src.contains(':') {
                    format!("{} + {extra_bound}", p.src)
                } else {
                    format!("{}: {extra_bound}", p.src)
                }
            } else {
                p.src.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    let args = params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    (format!("<{decl}>"), format!("<{args}>"))
}

/// `("a", to_value(a)), ("b", to_value(b))` from bound names.
fn object_pairs(names: &[String], access: impl Fn(&str) -> String) -> String {
    names
        .iter()
        .map(|n| {
            format!(
                "(\"{n}\".to_string(), ::serde::Serialize::to_value(&{})),",
                access(n)
            )
        })
        .collect()
}

fn serialize_struct(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => format!(
            "::serde::Value::Object(vec![{}])",
            object_pairs(names, |n| format!("self.{n}"))
        ),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(vec![{items}])")
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                     ::serde::Serialize::to_value(__f0))]),\n"
                ),
                Fields::Tuple(n) => {
                    let binders = (0..*n)
                        .map(|i| format!("__f{i}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let items: String = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                        .collect();
                    format!(
                        "{name}::{vn}({binders}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Value::Array(vec![{items}]))]),\n"
                    )
                }
                Fields::Named(fields) => {
                    let binders = fields.join(", ");
                    let pairs = object_pairs(fields, |n| n.to_string());
                    format!(
                        "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Value::Object(vec![{pairs}]))]),\n"
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{arms}}}")
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: String = names
                .iter()
                .map(|n| format!("{n}: ::serde::Deserialize::from_value(__v.field(\"{n}\")?)?,\n"))
                .collect();
            format!("Ok({name} {{\n{inits}}})")
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Fields::Tuple(n) => {
            let inits = tuple_inits(*n);
            format!("{}\nOk({name}({inits}))", tuple_prelude(name, *n))
        }
        Fields::Unit => format!(
            "match __v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 __other => Err(::serde::Error::custom(format!(\
                     \"expected null for unit struct `{name}`, got {{__other:?}}\"))),\n\
             }}"
        ),
    }
}

/// Shared guard for positional payloads: binds `__items` to the array.
fn tuple_prelude(what: &str, n: usize) -> String {
    format!(
        "let __items = __v.as_array().ok_or_else(|| \
             ::serde::Error::custom(\"expected array for `{what}`\"))?;\n\
         if __items.len() != {n} {{\n\
             return Err(::serde::Error::custom(format!(\
                 \"`{what}` expects {n} elements, got {{}}\", __items.len())));\n\
         }}"
    )
}

fn tuple_inits(n: usize) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
        .collect()
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name))
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                )),
                Fields::Tuple(n) => {
                    let prelude = tuple_prelude(&format!("{name}::{vn}"), *n)
                        .replace("__v.as_array", "__inner.as_array");
                    let inits = tuple_inits(*n);
                    Some(format!(
                        "\"{vn}\" => {{\n{prelude}\nOk({name}::{vn}({inits}))\n}}\n"
                    ))
                }
                Fields::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__inner.field(\"{f}\")?)?,\n"
                            )
                        })
                        .collect();
                    Some(format!("\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"))
                }
            }
        })
        .collect();
    format!(
        "match __v {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                     \"unknown `{name}` variant `{{__other}}`\"))),\n\
             }},\n\
             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                     {data_arms}\
                     __other => Err(::serde::Error::custom(format!(\
                         \"unknown `{name}` variant `{{__other}}`\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::Error::custom(format!(\
                 \"expected `{name}` value, got {{__other:?}}\"))),\n\
         }}"
    )
}
