//! A workspace-local, dependency-free stand-in for `serde`.
//!
//! The CRP workspace builds offline, so this crate provides the small
//! serialization surface the workspace actually uses: a JSON-shaped
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that convert to
//! and from it, and `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` stand-in) for plain structs and enums.
//!
//! The wire behavior is defined by this crate alone: round-tripping
//! through [`Value`] (and through `serde_json`'s text form) is guaranteed
//! for any type composed of the primitives implemented here. It does not
//! aim for byte-compatibility with upstream serde_json output — nothing
//! in the workspace persists data across serde implementations.

use std::collections::{BTreeMap, HashMap};
use std::error::Error as StdError;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        let pairs = self
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object with field `{name}`")))?;
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl StdError for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Conversion back from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match value {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Maps serialize as arrays of `[key, value]` pairs so that non-string
/// keys round-trip without a key-encoding convention.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected map array"))?
            .iter()
            .map(|entry| <(K, V)>::from_value(entry))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(v: T) {
        let back = T::from_value(&v.to_value()).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(true);
        round_trip(42u32);
        round_trip(-7i64);
        round_trip(u64::MAX);
        round_trip(1.5f64);
        round_trip("hello".to_string());
        round_trip(Some(3u8));
        round_trip(Option::<u8>::None);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip((1u32, "x".to_string()));
        let mut m = BTreeMap::new();
        m.insert(3u32, 0.25f64);
        m.insert(9, 0.75);
        round_trip(m);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Array(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn field_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(obj.field("a"), Ok(&Value::Int(1)));
        assert!(obj.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }
}
