//! A workspace-local, dependency-free stand-in for `serde_json`.
//!
//! Encodes the serde stand-in's [`Value`] tree as JSON text and parses it
//! back. Floats are written with Rust's shortest round-trip formatting
//! (`{:?}`), so `to_string` → `from_str` reproduces every finite `f64`
//! bit-exactly. Non-finite floats are rejected, matching upstream
//! serde_json's refusal to emit them.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the document's shape does
/// not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a dynamic [`Value`].
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // `{:?}` is Rust's shortest round-trip float form.
            out.push_str(&format!("{x:?}"));
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8
                    // by construction of `&str`).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = parse(text).expect("parses");
            let mut out = String::new();
            write_value(&v, &mut out).expect("writes");
            assert_eq!(out, text);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1e-9, 123456.789, -2.5e300, f64::MIN_POSITIVE] {
            let text = to_string(&x).expect("serializes");
            let back: f64 = from_str(&text).expect("parses");
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t control\u{1} ünicode";
        let text = to_string(&s.to_string()).expect("serializes");
        let back: String = from_str(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures() {
        let text = r#"{ "a": [1, 2.5, "x"], "b": { "c": null }, "d": [] }"#;
        let v = parse(text).expect("parses");
        assert_eq!(
            v.field("a")
                .expect("has a")
                .as_array()
                .expect("array")
                .len(),
            3
        );
        assert!(matches!(
            v.field("b").expect("has b").field("c"),
            Ok(Value::Null)
        ));
    }

    #[test]
    fn malformed_input_errors() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"\\q\"", "[] []",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_beyond_i64_survives() {
        let x = u64::MAX;
        let text = to_string(&x).expect("serializes");
        let back: u64 = from_str(&text).expect("parses");
        assert_eq!(back, x);
    }
}
