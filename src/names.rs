//! CDN name selection (§VI).
//!
//! The paper hand-picked its two CDN names from historical data, but
//! sketches how a deployment should choose them automatically:
//!
//! > "One way to do this is to ping the replica servers returned for
//! > each CDN name during the bootstrapping phase and use only those
//! > names corresponding to low-latency servers. […] If one requires an
//! > adaptive solution that does not perform any active probing, one can
//! > eliminate those CDN names that return replica servers that do not
//! > provide positioning information" — e.g. names answering with
//! > CDN-owned (far-away fallback) addresses.
//!
//! [`NameEvaluator`] implements both policies: an *active* bootstrap
//! (one small burst of pings to returned replicas) and a *passive*
//! filter (reject names whose answers include CDN-owned addresses or
//! that barely rotate, since a constant answer carries no frequency
//! information).

use crp_cdn::{Cdn, ReplicaId};
use crp_dns::{DomainName, RecursiveResolver};
use crp_netsim::{HostId, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Verdict for one candidate CDN name at one host.
#[derive(Clone, Debug, PartialEq)]
pub struct NameAssessment {
    /// The name that was probed.
    pub name: DomainName,
    /// Probes that returned at least one replica.
    pub answered: u32,
    /// Probes whose answers included a CDN-owned address.
    pub cdn_owned_answers: u32,
    /// Distinct replicas observed across the bootstrap burst.
    pub distinct_replicas: usize,
    /// Mean RTT (ms) from this host to the returned replicas — only
    /// measured by the active policy, `None` under the passive one.
    pub mean_replica_rtt_ms: Option<f64>,
}

impl NameAssessment {
    /// The passive §VI acceptance rule: the name answered, never with
    /// CDN-owned fallbacks, and with enough rotation to build a ratio
    /// map worth comparing.
    pub fn passes_passive(&self) -> bool {
        self.answered > 0 && self.cdn_owned_answers == 0 && self.distinct_replicas >= 2
    }

    /// The active acceptance rule: passive checks plus a latency bound
    /// on the returned replicas.
    ///
    /// # Panics
    ///
    /// Panics if this assessment was produced passively (no RTTs were
    /// measured); callers choose one policy up front.
    pub fn passes_active(&self, max_mean_rtt_ms: f64) -> bool {
        let rtt = self
            .mean_replica_rtt_ms
            .expect("active policy measured replica RTTs"); // crp-lint: allow(CRP001) — documented # Panics contract: active policy requires measured RTTs
        self.passes_passive() && rtt <= max_mean_rtt_ms
    }
}

/// Evaluates candidate CDN names for one host during bootstrap.
#[derive(Debug)]
pub struct NameEvaluator<'a> {
    cdn: &'a Cdn,
    host: HostId,
    probes: u32,
    interval: SimDuration,
}

impl<'a> NameEvaluator<'a> {
    /// Creates an evaluator issuing `probes` lookups per name, spaced by
    /// `interval` (the paper's bootstrap is ~10 probes at 10 minutes).
    ///
    /// # Panics
    ///
    /// Panics if `probes` is zero.
    pub fn new(cdn: &'a Cdn, host: HostId, probes: u32, interval: SimDuration) -> Self {
        assert!(probes > 0, "bootstrap needs at least one probe");
        NameEvaluator {
            cdn,
            host,
            probes,
            interval,
        }
    }

    /// Assesses one name starting at `start`. With `active` set, each
    /// distinct replica is also "pinged" once (costing RTT measurements);
    /// otherwise the assessment is purely passive.
    pub fn assess(&self, name: &DomainName, start: SimTime, active: bool) -> NameAssessment {
        let mut resolver = RecursiveResolver::new(self.host);
        let mut answered = 0u32;
        let mut cdn_owned_answers = 0u32;
        let mut seen: BTreeSet<ReplicaId> = BTreeSet::new();
        let mut t = start;
        for _ in 0..self.probes {
            if let Ok(resp) = resolver.resolve_uncached(name, self.cdn, t) {
                answered += 1;
                let ips = resp.a_addresses();
                if ips.iter().any(|ip| self.cdn.ip_is_cdn_owned(*ip)) {
                    cdn_owned_answers += 1;
                }
                seen.extend(ips.into_iter().filter_map(ReplicaId::from_ip));
            }
            t += self.interval;
        }
        let mean_replica_rtt_ms = if active && !seen.is_empty() {
            let net = self.cdn.network();
            let total: f64 = seen
                .iter()
                .map(|r| {
                    net.rtt(self.host, self.cdn.replicas()[r.index()].host(), t)
                        .millis()
                })
                .sum();
            Some(total / seen.len() as f64)
        } else {
            None
        };
        NameAssessment {
            name: name.clone(),
            answered,
            cdn_owned_answers,
            distinct_replicas: seen.len(),
            mean_replica_rtt_ms,
        }
    }

    /// Assesses all `names` and returns those passing the chosen policy,
    /// best first (fewest CDN-owned answers, then most rotation, then —
    /// actively — lowest replica RTT).
    pub fn select(
        &self,
        names: &[DomainName],
        start: SimTime,
        active: Option<f64>,
    ) -> Vec<NameAssessment> {
        let mut passing: Vec<NameAssessment> = names
            .iter()
            .map(|n| self.assess(n, start, active.is_some()))
            .filter(|a| match active {
                Some(bound) => a.passes_active(bound),
                None => a.passes_passive(),
            })
            .collect();
        passing.sort_by(|a, b| {
            a.cdn_owned_answers
                .cmp(&b.cdn_owned_answers)
                .then_with(|| b.distinct_replicas.cmp(&a.distinct_replicas))
                .then_with(|| {
                    let ra = a.mean_replica_rtt_ms.unwrap_or(0.0);
                    let rb = b.mean_replica_rtt_ms.unwrap_or(0.0);
                    ra.total_cmp(&rb)
                })
        });
        passing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_cdn::{DeploymentSpec, MappingConfig};
    use crp_netsim::{HostProfile, NetworkBuilder, PopulationSpec, Region};

    fn world() -> (Cdn, HostId, HostId, Vec<DomainName>) {
        let mut net = NetworkBuilder::new(31)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(8)
            .build();
        let near = net.add_population(&PopulationSpec::single_region(
            HostProfile::DnsServer,
            1,
            Region::NorthAmerica,
        ))[0];
        let far = net.add_population(&PopulationSpec::single_region(
            HostProfile::DnsServer,
            1,
            Region::Africa,
        ))[0];
        // Dense in NA only, so the far host draws fallbacks.
        let spec = DeploymentSpec::custom(vec![(Region::NorthAmerica, 40)], 8);
        let mut cdn = Cdn::deploy(
            net,
            &spec,
            MappingConfig {
                fallback_probability: 0.9,
                ..MappingConfig::default()
            },
        );
        let names = vec![
            cdn.add_customer("us.i1.yimg.com").unwrap(),
            cdn.add_customer("www.foxnews.com").unwrap(),
        ];
        (cdn, near, far, names)
    }

    #[test]
    fn well_covered_host_accepts_names_passively() {
        let (cdn, near, _, names) = world();
        let eval = NameEvaluator::new(&cdn, near, 10, SimDuration::from_mins(10));
        let picked = eval.select(&names, SimTime::ZERO, None);
        assert_eq!(
            picked.len(),
            2,
            "both names should pass for a well-covered host"
        );
        for a in &picked {
            assert!(a.passes_passive());
            assert!(
                a.mean_replica_rtt_ms.is_none(),
                "passive mode must not ping"
            );
        }
    }

    #[test]
    fn poorly_covered_host_rejects_fallback_names() {
        let (cdn, _, far, names) = world();
        let eval = NameEvaluator::new(&cdn, far, 10, SimDuration::from_mins(10));
        let picked = eval.select(&names, SimTime::ZERO, None);
        assert!(
            picked.len() < 2,
            "a host fed CDN-owned fallbacks should reject at least one name"
        );
    }

    #[test]
    fn active_policy_enforces_latency_bound() {
        let (cdn, near, _, names) = world();
        let eval = NameEvaluator::new(&cdn, near, 10, SimDuration::from_mins(10));
        let lenient = eval.select(&names, SimTime::ZERO, Some(500.0));
        let strict = eval.select(&names, SimTime::ZERO, Some(0.01));
        assert!(!lenient.is_empty());
        assert!(lenient[0].mean_replica_rtt_ms.is_some());
        assert!(strict.is_empty(), "no replica is within 0.01 ms");
    }

    #[test]
    fn assessment_counts_are_consistent() {
        let (cdn, near, _, names) = world();
        let eval = NameEvaluator::new(&cdn, near, 6, SimDuration::from_mins(10));
        let a = eval.assess(&names[0], SimTime::ZERO, false);
        assert!(a.answered <= 6);
        assert!(a.cdn_owned_answers <= a.answered);
        assert!(a.distinct_replicas <= a.answered as usize * 2);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        let (cdn, near, _, _) = world();
        let _ = NameEvaluator::new(&cdn, near, 0, SimDuration::from_mins(1));
    }

    #[test]
    #[should_panic(expected = "active policy measured")]
    fn passive_assessment_cannot_answer_active_question() {
        let (cdn, near, _, names) = world();
        let eval = NameEvaluator::new(&cdn, near, 3, SimDuration::from_mins(10));
        let a = eval.assess(&names[0], SimTime::ZERO, false);
        let _ = a.passes_active(100.0);
    }
}
