//! One-hop detour routing via CDN replicas (§II).
//!
//! The authors' prior study ("Drafting behind Akamai", SIGCOMM 2006) —
//! the result that motivated CRP — showed that "in approximately 50% of
//! scenarios, the best measured one-hop path through an Akamai server
//! outperforms the direct path in terms of latency". The CDN's
//! redirections *are* the hint: the replicas a host is redirected to sit
//! on well-provisioned paths toward it.
//!
//! [`DetourFinder`] reproduces that application: for a source/target
//! pair, the candidate waypoints are the replicas appearing in either
//! host's ratio map, and the detour latency is the one-hop relay RTT
//! through the replica's host.

use crp_cdn::{Cdn, ReplicaId};
use crp_core::RatioMap;
use crp_netsim::{HostId, Rtt, SimTime};
use std::collections::BTreeSet;

/// Outcome of a detour search for one (source, target) pair.
#[derive(Clone, Debug, PartialEq)]
pub struct DetourOutcome {
    /// The direct-path RTT.
    pub direct: Rtt,
    /// The best one-hop RTT through a CDN replica, if any candidate
    /// existed.
    pub best_detour: Option<Rtt>,
    /// The waypoint achieving `best_detour`.
    pub waypoint: Option<ReplicaId>,
    /// Number of waypoints evaluated.
    pub candidates: usize,
}

impl DetourOutcome {
    /// Whether the detour beats the direct path.
    pub fn detour_wins(&self) -> bool {
        self.best_detour.is_some_and(|d| d < self.direct)
    }

    /// The latency saved by the detour (zero if it loses or none
    /// existed).
    pub fn savings(&self) -> Rtt {
        match self.best_detour {
            Some(d) if d < self.direct => self.direct - d,
            _ => Rtt::ZERO,
        }
    }
}

/// Finds one-hop detours using the replica sets from two hosts' ratio
/// maps as the waypoint candidates.
#[derive(Debug)]
pub struct DetourFinder<'a> {
    cdn: &'a Cdn,
}

impl<'a> DetourFinder<'a> {
    /// Creates a finder over the given CDN.
    pub fn new(cdn: &'a Cdn) -> Self {
        DetourFinder { cdn }
    }

    /// Evaluates the detour for `src → dst` at time `t`, using the union
    /// of the two ratio maps as the waypoint set (the "drafting" hint:
    /// replicas either endpoint is being redirected to).
    pub fn find(
        &self,
        src: HostId,
        dst: HostId,
        src_map: &RatioMap<ReplicaId>,
        dst_map: &RatioMap<ReplicaId>,
        t: SimTime,
    ) -> DetourOutcome {
        let net = self.cdn.network();
        let direct = net.rtt(src, dst, t);
        let waypoints: BTreeSet<ReplicaId> =
            src_map.keys().chain(dst_map.keys()).copied().collect();
        let mut best: Option<(Rtt, ReplicaId)> = None;
        for replica in &waypoints {
            let hop = self.cdn.replicas()[replica.index()].host();
            if hop == src || hop == dst {
                continue;
            }
            let total = net.rtt(src, hop, t) + net.rtt(hop, dst, t);
            if best.is_none_or(|(best_total, _)| total < best_total) {
                best = Some((total, *replica));
            }
        }
        DetourOutcome {
            direct,
            best_detour: best.map(|(r, _)| r),
            waypoint: best.map(|(_, w)| w),
            candidates: waypoints.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scenario, ScenarioConfig};
    use crp_core::{SimilarityMetric, WindowPolicy};
    use crp_netsim::SimDuration;

    fn observed_world() -> (Scenario, crp_core::CrpService<HostId, ReplicaId>, SimTime) {
        let scenario = Scenario::build(ScenarioConfig {
            seed: 61,
            candidate_servers: 0,
            clients: 24,
            cdn_scale: 0.6,
            ..ScenarioConfig::default()
        });
        let end = SimTime::from_hours(6);
        let service = scenario.observe_hosts(
            scenario.clients(),
            SimTime::ZERO,
            end,
            SimDuration::from_mins(10),
            WindowPolicy::LastProbes(30),
            SimilarityMetric::Cosine,
        );
        (scenario, service, end)
    }

    #[test]
    fn detours_are_valid_one_hop_paths() {
        let (scenario, service, end) = observed_world();
        let finder = DetourFinder::new(scenario.cdn());
        let clients = scenario.clients();
        let mut evaluated = 0;
        for (i, &src) in clients.iter().enumerate() {
            for &dst in &clients[i + 1..i + 3.min(clients.len() - i)] {
                let (Ok(sm), Ok(dm)) = (service.ratio_map(&src, end), service.ratio_map(&dst, end))
                else {
                    continue;
                };
                let outcome = finder.find(src, dst, &sm, &dm, end);
                evaluated += 1;
                assert!(outcome.candidates > 0);
                if let (Some(detour), Some(w)) = (outcome.best_detour, outcome.waypoint) {
                    // Recompute and confirm the reported latency.
                    let hop = scenario.cdn().replicas()[w.index()].host();
                    let recomputed = scenario.network().rtt(src, hop, end)
                        + scenario.network().rtt(hop, dst, end);
                    assert_eq!(detour, recomputed);
                }
            }
        }
        assert!(evaluated >= 10, "too few pairs evaluated: {evaluated}");
    }

    #[test]
    fn some_detours_win_on_wide_area_paths() {
        // The SIGCOMM'06 observation: with inflated direct paths, a relay
        // through well-connected CDN infrastructure often wins.
        let (scenario, service, end) = observed_world();
        let finder = DetourFinder::new(scenario.cdn());
        let clients = scenario.clients();
        let mut wins = 0;
        let mut total = 0;
        for (i, &src) in clients.iter().enumerate() {
            for &dst in &clients[i + 1..] {
                let (Ok(sm), Ok(dm)) = (service.ratio_map(&src, end), service.ratio_map(&dst, end))
                else {
                    continue;
                };
                let outcome = finder.find(src, dst, &sm, &dm, end);
                total += 1;
                if outcome.detour_wins() {
                    wins += 1;
                    assert!(outcome.savings().millis() > 0.0);
                }
            }
        }
        assert!(total > 50);
        let rate = wins as f64 / total as f64;
        assert!(
            rate > 0.1,
            "detours should win a meaningful share of pairs, got {rate:.2}"
        );
    }

    #[test]
    fn savings_zero_when_detour_loses() {
        let outcome = DetourOutcome {
            direct: Rtt::from_millis(10.0),
            best_detour: Some(Rtt::from_millis(25.0)),
            waypoint: None,
            candidates: 3,
        };
        assert!(!outcome.detour_wins());
        assert_eq!(outcome.savings(), Rtt::ZERO);
    }
}
