//! # CRP — CDN-based Relative network Positioning
//!
//! A full reproduction of *"Relative Network Positioning via CDN
//! Redirections"* (Su, Choffnes, Bustamante & Kuzmanovic, IEEE ICDCS
//! 2008) as a Rust workspace.
//!
//! CRP estimates the **relative** network positions of Internet hosts
//! with *zero* direct probing: each host records which replica servers a
//! large CDN redirects it to over time, summarizes them as a ratio map,
//! and compares maps by cosine similarity. Two hosts redirected to the
//! same nearby replicas are, with high probability, close to each other.
//!
//! This façade crate re-exports the workspace and provides the glue
//! between the algorithm crate and the simulated substrates:
//!
//! * [`CdnProbe`] — an observation source that performs recursive DNS
//!   lookups against the simulated CDN, exactly as a deployed CRP client
//!   would run `dig` against Akamai-accelerated names;
//! * [`Scenario`] — a reproducible experiment harness that assembles the
//!   synthetic Internet, the CDN, and the paper's host populations, and
//!   collects redirection observations into a [`crp_core::CrpService`].
//!
//! ## Workspace layout
//!
//! | Crate | Role |
//! |-------|------|
//! | [`crp_core`] | the paper's contribution: ratio maps, similarity, selection, SMF clustering |
//! | [`crp_netsim`] | synthetic Internet: geography, AS topology, time-varying RTTs, King |
//! | [`crp_dns`] | DNS substrate: names, records, TTL cache, recursive resolution |
//! | [`crp_cdn`] | Akamai-like CDN: replica fleet, latency-driven redirection, coverage model |
//! | [`crp_meridian`] | Meridian baseline with the paper's deployment fault modes |
//! | [`crp_baselines`] | ASN clustering and Vivaldi coordinates |
//!
//! ## Quickstart
//!
//! ```
//! use crp::{Scenario, ScenarioConfig};
//! use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
//! use crp_netsim::{SimDuration, SimTime};
//!
//! // A small world: 12 candidate servers, 6 clients, a scaled-down CDN.
//! let scenario = Scenario::build(ScenarioConfig {
//!     seed: 42,
//!     candidate_servers: 12,
//!     clients: 6,
//!     cdn_scale: 0.3,
//!     ..ScenarioConfig::default()
//! });
//!
//! // Let every host observe CDN redirections for 6 hours, one probe
//! // every 10 minutes (the paper's cadence).
//! let service = scenario.observe_all(
//!     SimTime::ZERO,
//!     SimTime::from_hours(6),
//!     SimDuration::from_mins(10),
//!     WindowPolicy::LastProbes(10),
//!     SimilarityMetric::Cosine,
//! );
//!
//! // Closest-candidate query for the first client.
//! let now = SimTime::from_hours(6);
//! let ranking = service
//!     .closest(&scenario.clients()[0], scenario.candidates().to_vec(), now)?;
//! assert!(!ranking.is_empty());
//!
//! // Cluster the clients.
//! let clustering = service.cluster(&SmfConfig::paper(0.1), now);
//! assert!(clustering.total_nodes() > 0);
//! # Ok::<(), crp_core::RatioMapError>(())
//! ```

pub mod detour;
pub mod names;
pub mod passive;
pub mod probe;
pub mod scenario;

pub use detour::{DetourFinder, DetourOutcome};
pub use names::{NameAssessment, NameEvaluator};
pub use passive::PassiveMonitor;
pub use probe::CdnProbe;
pub use scenario::{Scenario, ScenarioConfig};

// Re-export the member crates under their natural names.
pub use crp_baselines as baselines;
pub use crp_cdn as cdn;
pub use crp_core as core;
pub use crp_dns as dns;
pub use crp_meridian as meridian;
pub use crp_netsim as netsim;
