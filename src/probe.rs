//! The CRP client's probing loop: recursive DNS lookups against the CDN.

use crp_cdn::{Cdn, ReplicaId};
use crp_core::ObservationSource;
use crp_dns::{DomainName, RecursiveResolver};
use crp_netsim::{HostId, SimTime};

/// An [`ObservationSource`] that queries the simulated CDN for one or
/// more customer names from a given host, exactly as a deployed CRP
/// client issues `dig` lookups against CDN-accelerated names.
///
/// Each [`observe`] call performs one *fresh* (uncached) lookup per
/// customer name and returns the union of replica servers in the
/// answers. With `filter_cdn_owned` enabled, answers containing
/// CDN-owned addresses are discarded — the §VI filtering rule, since
/// such answers are distant fallbacks that carry no position signal.
///
/// [`observe`]: ObservationSource::observe
///
/// # Example
///
/// ```
/// use crp::CdnProbe;
/// use crp_cdn::{Cdn, DeploymentSpec, MappingConfig};
/// use crp_core::ObservationSource;
/// use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
///
/// let mut net = NetworkBuilder::new(9).build();
/// let client = net.add_population(&PopulationSpec::dns_servers(1))[0];
/// let mut cdn = Cdn::deploy(net, &DeploymentSpec::akamai_like(0.3), MappingConfig::default());
/// let name = cdn.add_customer("us.i1.yimg.com")?;
///
/// let mut probe = CdnProbe::new(&cdn, client, vec![name]);
/// let servers = probe.observe(SimTime::ZERO).expect("cdn answers");
/// assert!(!servers.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CdnProbe<'a> {
    cdn: &'a Cdn,
    resolver: RecursiveResolver,
    names: Vec<DomainName>,
    filter_cdn_owned: bool,
}

impl<'a> CdnProbe<'a> {
    /// Creates a probe running on `host`, querying `names`.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn new(cdn: &'a Cdn, host: HostId, names: Vec<DomainName>) -> Self {
        assert!(!names.is_empty(), "probe needs at least one CDN name");
        CdnProbe {
            cdn,
            resolver: RecursiveResolver::new(host),
            names,
            filter_cdn_owned: false,
        }
    }

    /// Enables the §VI name-filtering rule: answers that include
    /// CDN-owned addresses are dropped.
    pub fn filter_cdn_owned(mut self, enabled: bool) -> Self {
        self.filter_cdn_owned = enabled;
        self
    }

    /// The host this probe runs on.
    pub fn host(&self) -> HostId {
        self.resolver.host()
    }

    /// Upstream DNS queries issued so far — the probe's entire network
    /// footprint, and the quantity behind the paper's commensalism
    /// argument (O(1) per node, independent of system size).
    pub fn queries_issued(&self) -> u64 {
        self.resolver.stats().upstream_queries
    }
}

impl ObservationSource<ReplicaId> for CdnProbe<'_> {
    fn observe(&mut self, t: SimTime) -> Option<Vec<ReplicaId>> {
        let mut servers = Vec::new();
        for name in &self.names {
            let Ok(resp) = self.resolver.resolve_uncached(name, self.cdn, t) else {
                continue;
            };
            let ips = resp.a_addresses();
            if self.filter_cdn_owned && ips.iter().any(|ip| self.cdn.ip_is_cdn_owned(*ip)) {
                continue;
            }
            servers.extend(ips.into_iter().filter_map(ReplicaId::from_ip));
        }
        if servers.is_empty() {
            None
        } else {
            Some(servers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_cdn::{DeploymentSpec, MappingConfig};
    use crp_netsim::{NetworkBuilder, PopulationSpec, Region};

    fn small_cdn(seed: u64, clients: usize) -> (Cdn, Vec<HostId>, Vec<DomainName>) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build();
        let hosts = net.add_population(&PopulationSpec::dns_servers(clients));
        let mut cdn = Cdn::deploy(
            net,
            &DeploymentSpec::akamai_like(0.3),
            MappingConfig::default(),
        );
        let yahoo = cdn.add_customer("us.i1.yimg.com").unwrap();
        let fox = cdn.add_customer("www.foxnews.com").unwrap();
        (cdn, hosts, vec![yahoo, fox])
    }

    #[test]
    fn observes_replicas_from_all_names() {
        let (cdn, hosts, names) = small_cdn(1, 1);
        let mut probe = CdnProbe::new(&cdn, hosts[0], names);
        let obs = probe.observe(SimTime::ZERO).unwrap();
        // Two names × two answers each.
        assert_eq!(obs.len(), 4);
        assert_eq!(probe.queries_issued(), 2);
    }

    #[test]
    fn repeated_observations_rotate() {
        let (cdn, hosts, names) = small_cdn(2, 1);
        let mut probe = CdnProbe::new(&cdn, hosts[0], names);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..30u64 {
            if let Some(obs) = probe.observe(SimTime::from_mins(i * 10)) {
                distinct.extend(obs);
            }
        }
        assert!(distinct.len() >= 3, "no rotation: {distinct:?}");
        assert!(
            distinct.len() < 25,
            "implausibly scattered: {}",
            distinct.len()
        );
    }

    #[test]
    fn filter_drops_fallback_answers() {
        // Clients in a region with no coverage trigger fallbacks; with
        // the filter on, those probes yield fewer (or no) observations.
        let mut net = NetworkBuilder::new(3)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build();
        let far = net.add_population(&PopulationSpec::single_region(
            crp_netsim::HostProfile::DnsServer,
            1,
            Region::Africa,
        ))[0];
        let spec = DeploymentSpec::custom(vec![(Region::NorthAmerica, 15)], 4);
        let mut cdn = Cdn::deploy(net, &spec, MappingConfig::default());
        let name = cdn.add_customer("us.i1.yimg.com").unwrap();

        let mut unfiltered = CdnProbe::new(&cdn, far, vec![name.clone()]);
        let mut filtered = CdnProbe::new(&cdn, far, vec![name]).filter_cdn_owned(true);
        let mut unfiltered_cdn_owned = 0usize;
        let mut filtered_cdn_owned = 0usize;
        for i in 0..40u64 {
            let t = SimTime::from_mins(i * 10);
            if let Some(obs) = unfiltered.observe(t) {
                unfiltered_cdn_owned += obs.iter().filter(|r| cdn.ip_is_cdn_owned(r.ip())).count();
            }
            if let Some(obs) = filtered.observe(t) {
                filtered_cdn_owned += obs.iter().filter(|r| cdn.ip_is_cdn_owned(r.ip())).count();
            }
        }
        assert!(
            unfiltered_cdn_owned > 0,
            "scenario failed to trigger fallbacks"
        );
        assert_eq!(filtered_cdn_owned, 0, "filter leaked CDN-owned answers");
    }

    #[test]
    fn unknown_names_give_no_observation() {
        let (cdn, hosts, _) = small_cdn(4, 1);
        let bogus: DomainName = "not.served.example".parse().unwrap();
        let mut probe = CdnProbe::new(&cdn, hosts[0], vec![bogus]);
        assert_eq!(probe.observe(SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "at least one CDN name")]
    fn empty_names_rejected() {
        let (cdn, hosts, _) = small_cdn(5, 1);
        let _ = CdnProbe::new(&cdn, hosts[0], vec![]);
    }
}
