//! Reproducible experiment scenarios.
//!
//! A [`Scenario`] assembles everything the paper's evaluation needs —
//! the synthetic Internet, the CDN with its customer names, a
//! PlanetLab-like candidate-server population and a King-like client
//! population — and runs observation campaigns over it. Every eval
//! binary, example and integration test goes through this type, so the
//! construction order (clients before CDN deployment, which freezes the
//! host set) lives in exactly one place.

use crate::probe::CdnProbe;
use crp_cdn::{Cdn, DeploymentSpec, EventLog, EventScript, MappingConfig, ReplicaId};
use crp_core::{CrpService, ObservationSource, SimilarityMetric, WindowPolicy};
use crp_dns::DomainName;
use crp_netsim::{
    HostId, KingConfig, KingEstimator, LatencyConfig, NetworkBuilder, PopulationSpec, Rtt,
    SimDuration, SimTime,
};

/// Parameters of a scenario. The defaults reproduce the paper's scale:
/// 240 Meridian-capable candidate servers, 1,000 DNS-server clients, the
/// full Akamai-like CDN footprint, and the Yahoo / Fox News pair of
/// customer names.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; every random choice derives from it.
    pub seed: u64,
    /// Number of candidate servers (PlanetLab-like placement).
    pub candidate_servers: usize,
    /// Number of client hosts (King-data-set-like placement).
    pub clients: usize,
    /// CDN footprint scale (1.0 ≈ 240 replicas).
    pub cdn_scale: f64,
    /// Customer names to probe.
    pub customer_names: Vec<String>,
    /// CDN mapping behavior.
    pub mapping: MappingConfig,
    /// Explicit deployment override; `None` uses
    /// [`DeploymentSpec::akamai_like`] at `cdn_scale`.
    pub deployment: Option<DeploymentSpec>,
    /// Draw clients from the broadly-distributed cohort (the paper's
    /// clustering data set) instead of the King-like profile.
    pub broad_clients: bool,
    /// Enable the §VI CDN-owned-address filter on every probe.
    pub filter_cdn_owned: bool,
    /// Scripted infrastructure events applied to the CDN at build time
    /// (reserves staged before customers register, timeline applied
    /// after). The resulting ground-truth [`EventLog`] is kept on the
    /// scenario for detection evaluation.
    pub events: Option<EventScript>,
    /// Latency-model override; `None` uses [`LatencyConfig::default`].
    /// Tests that need a static metric space (e.g. exact remap ground
    /// truth) pass [`LatencyConfig::static_network`].
    pub latency: Option<LatencyConfig>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            candidate_servers: 240,
            clients: 1_000,
            cdn_scale: 1.0,
            customer_names: vec!["us.i1.yimg.com".to_owned(), "www.foxnews.com".to_owned()],
            mapping: MappingConfig::default(),
            deployment: None,
            broad_clients: false,
            filter_cdn_owned: false,
            events: None,
            latency: None,
        }
    }
}

/// A fully assembled experiment world.
pub struct Scenario {
    cdn: Cdn,
    candidates: Vec<HostId>,
    clients: Vec<HostId>,
    names: Vec<DomainName>,
    filter_cdn_owned: bool,
    event_log: EventLog,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("candidates", &self.candidates.len())
            .field("clients", &self.clients.len())
            .field("names", &self.names)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Builds the scenario: topology, populations, CDN, customers.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (no customer names, invalid
    /// mapping config, non-positive CDN scale).
    pub fn build(cfg: ScenarioConfig) -> Scenario {
        crp_telemetry::mem_domain!("scenario.build");
        assert!(!cfg.customer_names.is_empty(), "need at least one CDN name");
        let mut builder = NetworkBuilder::new(cfg.seed);
        if let Some(latency) = cfg.latency.clone() {
            builder = builder.latency(latency);
        }
        let mut net = builder.build();
        let candidates = net.add_population(&PopulationSpec::planetlab(cfg.candidate_servers));
        let client_spec = if cfg.broad_clients {
            PopulationSpec::broad_dns_servers(cfg.clients)
        } else {
            PopulationSpec::dns_servers(cfg.clients)
        };
        let clients = net.add_population(&client_spec);
        let deployment = cfg
            .deployment
            .unwrap_or_else(|| DeploymentSpec::akamai_like(cfg.cdn_scale));
        let mut cdn = Cdn::deploy(net, &deployment, cfg.mapping);
        // Dormant reserves must exist before customers register (the
        // customer's eligible set and shortlists freeze at that point),
        // while the timeline itself only mutates SimTime-keyed state
        // and so can be applied once the fleet is fully wired.
        if let Some(script) = &cfg.events {
            script.stage(&mut cdn);
        }
        let names = cfg
            .customer_names
            .iter()
            .map(|n| cdn.add_customer(n).expect("customer names are valid")) // crp-lint: allow(CRP001) — customer names come from the validated config
            .collect();
        let event_log = cfg
            .events
            .as_ref()
            .map(|script| script.apply(&mut cdn))
            .unwrap_or_default();
        Scenario {
            cdn,
            candidates,
            clients,
            names,
            filter_cdn_owned: cfg.filter_cdn_owned,
            event_log,
        }
    }

    /// The underlying network (for ground-truth RTT measurements).
    pub fn network(&self) -> &crp_netsim::Network {
        self.cdn.network()
    }

    /// The simulated CDN.
    pub fn cdn(&self) -> &Cdn {
        &self.cdn
    }

    /// Ground truth for the scripted infrastructure events applied at
    /// build time (empty when the config carried no script). Detection
    /// evaluation matches the audit layer's `DetectedChange` records
    /// against this log.
    pub fn event_log(&self) -> &EventLog {
        &self.event_log
    }

    /// Candidate-server hosts (the selection targets in Figs. 4–5).
    pub fn candidates(&self) -> &[HostId] {
        &self.candidates
    }

    /// Client hosts (the DNS servers issuing positioning queries).
    pub fn clients(&self) -> &[HostId] {
        &self.clients
    }

    /// The CDN customer names probed by every host.
    pub fn names(&self) -> &[DomainName] {
        &self.names
    }

    /// A King estimator over this scenario's network — the paper's
    /// ground-truth measurement channel.
    pub fn king(&self, cfg: KingConfig) -> KingEstimator<'_> {
        KingEstimator::new(self.network(), cfg)
    }

    /// Runs the probing campaign for `hosts`: one observation per
    /// `interval` in `[start, end)` for each host, recorded into a
    /// [`CrpService`] configured with `window` and `metric`.
    pub fn observe_hosts(
        &self,
        hosts: &[HostId],
        start: SimTime,
        end: SimTime,
        interval: SimDuration,
        window: WindowPolicy,
        metric: SimilarityMetric,
    ) -> CrpService<HostId, ReplicaId> {
        crp_telemetry::profile_scope!("scenario.observe");
        crp_telemetry::mem_domain!("scenario.observe");
        let mut service = CrpService::new(window, metric);
        let campaign = crp_telemetry::span(start.as_millis(), "scenario.observe");
        for &host in hosts {
            let mut probe = CdnProbe::new(&self.cdn, host, self.names.to_vec())
                .filter_cdn_owned(self.filter_cdn_owned);
            let mut recorded = 0u64;
            for t in start.iter_until(end, interval) {
                if let Some(servers) = probe.observe(t) {
                    service.record(host, t, servers);
                    recorded += 1;
                }
            }
            if crp_telemetry::enabled() {
                crp_telemetry::event(
                    end.as_millis(),
                    "scenario.host_observed",
                    &[
                        ("host", host.index().into()),
                        ("observations", recorded.into()),
                    ],
                );
            }
        }
        campaign.end(end.as_millis());
        if crp_telemetry::timeseries::enabled() {
            use crp_telemetry::MemFootprint;
            crp_telemetry::observe_at(
                end.as_millis(),
                "mem.footprint.core.service",
                service.mem_footprint() as f64,
            );
            crp_telemetry::observe_at(
                end.as_millis(),
                "mem.footprint.cdn.tables",
                self.cdn.mem_footprint() as f64,
            );
            // Occupancy of the bounded remap-event observer, so
            // live_report charts how close the campaign came to the
            // capacity at which remap ground truth starts dropping.
            crp_telemetry::observe_at(
                end.as_millis(),
                "mem.footprint.cdn.remap_observer",
                self.cdn.remap_observer_footprint() as f64,
            );
        }
        service
    }

    /// [`observe_hosts`] over candidates and clients together — the
    /// full campaign behind the closest-node experiments.
    ///
    /// [`observe_hosts`]: Scenario::observe_hosts
    pub fn observe_all(
        &self,
        start: SimTime,
        end: SimTime,
        interval: SimDuration,
        window: WindowPolicy,
        metric: SimilarityMetric,
    ) -> CrpService<HostId, ReplicaId> {
        let hosts: Vec<HostId> = self
            .candidates
            .iter()
            .chain(&self.clients)
            .copied()
            .collect();
        self.observe_hosts(&hosts, start, end, interval, window, metric)
    }

    /// Ground-truth mean RTT between two hosts over a window — the
    /// quantity the paper measured directly between PlanetLab nodes and
    /// DNS servers to score recommendations.
    pub fn mean_rtt(&self, a: HostId, b: HostId, start: SimTime, end: SimTime) -> Rtt {
        self.network().mean_rtt(a, b, start, end, 8)
    }

    /// The candidates ordered by ground-truth mean RTT to `client`
    /// (closest first) — the "complete, RTT-based ordering of servers"
    /// recommendations are ranked against.
    pub fn rtt_ordered_candidates(
        &self,
        client: HostId,
        start: SimTime,
        end: SimTime,
    ) -> Vec<(HostId, Rtt)> {
        let mut out: Vec<(HostId, Rtt)> = self
            .candidates
            .iter()
            .map(|&c| (c, self.mean_rtt(client, c, start, end)))
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The rank of `selected` in the client's RTT-based candidate
    /// ordering (0 = optimal), or `None` if `selected` is not a
    /// candidate. This is the metric of Figs. 8–9.
    pub fn rank_of(
        &self,
        client: HostId,
        selected: HostId,
        start: SimTime,
        end: SimTime,
    ) -> Option<usize> {
        self.rtt_ordered_candidates(client, start, end)
            .iter()
            .position(|(c, _)| *c == selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::build(ScenarioConfig {
            seed: 11,
            candidate_servers: 10,
            clients: 5,
            cdn_scale: 0.25,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn build_wires_everything() {
        let s = tiny();
        assert_eq!(s.candidates().len(), 10);
        assert_eq!(s.clients().len(), 5);
        assert_eq!(s.names().len(), 2);
        assert!(s.cdn().replicas().len() > 10);
    }

    #[test]
    fn observation_campaign_populates_service() {
        let s = tiny();
        let service = s.observe_all(
            SimTime::ZERO,
            SimTime::from_hours(2),
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        // Nearly every host should have observations (poor-coverage
        // clients may occasionally miss).
        assert!(service.node_count() >= 13, "{}", service.node_count());
        let now = SimTime::from_hours(2);
        let map = service.ratio_map(&s.candidates()[0], now).unwrap();
        assert!(!map.is_empty());
        assert!(map.len() < 30, "map too scattered: {}", map.len());
    }

    #[test]
    fn ranking_and_rank_of_agree() {
        let s = tiny();
        let start = SimTime::ZERO;
        let end = SimTime::from_hours(1);
        let order = s.rtt_ordered_candidates(s.clients()[0], start, end);
        assert_eq!(order.len(), 10);
        assert!(order.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(s.rank_of(s.clients()[0], order[0].0, start, end), Some(0));
        assert_eq!(s.rank_of(s.clients()[0], order[9].0, start, end), Some(9));
        assert_eq!(s.rank_of(s.clients()[0], s.clients()[1], start, end), None);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = tiny();
        let b = tiny();
        let sa = a.observe_hosts(
            &a.clients()[..2],
            SimTime::ZERO,
            SimTime::from_hours(1),
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        let sb = b.observe_hosts(
            &b.clients()[..2],
            SimTime::ZERO,
            SimTime::from_hours(1),
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        let now = SimTime::from_hours(1);
        assert_eq!(
            sa.ratio_map(&a.clients()[0], now).ok(),
            sb.ratio_map(&b.clients()[0], now).ok()
        );
    }

    #[test]
    fn scripted_events_apply_at_build_and_keep_ground_truth() {
        use crp_cdn::{EventClass, EventKind, EventScript};
        use crp_netsim::Region;
        let script = EventScript::new().with_reserve(Region::NorthAmerica, 4).at(
            SimTime::from_hours(2),
            EventKind::RegionalPoolFlip {
                region: Region::NorthAmerica,
                fraction: 0.5,
            },
        );
        let s = Scenario::build(ScenarioConfig {
            seed: 11,
            candidate_servers: 10,
            clients: 5,
            cdn_scale: 0.25,
            events: Some(script),
            ..ScenarioConfig::default()
        });
        assert_eq!(s.event_log().len(), 1);
        let record = &s.event_log().records[0];
        assert_eq!(record.class, EventClass::RegionalPoolFlip);
        assert_eq!(record.at_ms, SimTime::from_hours(2).as_millis());
        assert!(!record.replicas.is_empty());
        // The world still observes normally with the script in place.
        let service = s.observe_hosts(
            &s.clients()[..2],
            SimTime::ZERO,
            SimTime::from_hours(1),
            SimDuration::from_mins(10),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        assert!(service.node_count() >= 1);
        // No script → empty log.
        assert!(tiny().event_log().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one CDN name")]
    fn empty_names_rejected() {
        let _ = Scenario::build(ScenarioConfig {
            customer_names: vec![],
            clients: 1,
            candidate_servers: 1,
            ..ScenarioConfig::default()
        });
    }
}
