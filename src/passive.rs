//! Passive observation (§VI).
//!
//! The paper notes that even CRP's tiny active probing load "may not be
//! necessary if the service can passively monitor user-generated DNS
//! translations (e.g., from Web browsing) instead of actively requesting
//! CDN redirections."
//!
//! [`PassiveMonitor`] models that deployment: the host's users browse
//! CDN-accelerated sites at irregular intervals; lookups go through the
//! host's caching resolver, and CRP records only the *cache-miss*
//! translations (a cache hit reveals nothing new). The CDN's low TTLs
//! (~20 s) mean almost every browsing burst yields a fresh observation,
//! so a moderately active user population bootstraps a node almost as
//! fast as active probing — with literally zero added load.

use crp_cdn::{Cdn, ReplicaId};
use crp_core::RedirectionTracker;
use crp_dns::{DomainName, RecursiveResolver};
use crp_netsim::{noise, HostId, SimDuration, SimTime};

/// A passively-fed CRP observer: records CDN redirections as a side
/// effect of simulated user browsing.
#[derive(Debug)]
pub struct PassiveMonitor<'a> {
    cdn: &'a Cdn,
    resolver: RecursiveResolver,
    names: Vec<DomainName>,
    tracker: RedirectionTracker<ReplicaId>,
    observations: u64,
    browse_events: u64,
}

impl<'a> PassiveMonitor<'a> {
    /// Creates a monitor on `host` watching lookups for `names`.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn new(cdn: &'a Cdn, host: HostId, names: Vec<DomainName>) -> Self {
        assert!(!names.is_empty(), "monitor needs at least one CDN name");
        PassiveMonitor {
            cdn,
            resolver: RecursiveResolver::new(host),
            names,
            tracker: RedirectionTracker::new(),
            observations: 0,
            browse_events: 0,
        }
    }

    /// One user browsing event at time `t`: the user visits one of the
    /// monitored sites (chosen pseudo-randomly), triggering a DNS lookup
    /// through the caching resolver. Only cache misses produce
    /// observations.
    pub fn browse(&mut self, t: SimTime) {
        self.browse_events += 1;
        let pick = (noise::mix(&[self.resolver.host().key(), 0xB20, self.browse_events])
            % self.names.len() as u64) as usize;
        let name = self.names[pick].clone();
        let hits_before = self.resolver.stats().cache_hits;
        if let Ok(resp) = self.resolver.resolve(&name, self.cdn, t) {
            if self.resolver.stats().cache_hits == hits_before {
                // Cache miss: a genuinely fresh translation.
                let servers: Vec<ReplicaId> = resp
                    .a_addresses()
                    .into_iter()
                    .filter_map(ReplicaId::from_ip)
                    .collect();
                if !servers.is_empty() {
                    self.tracker.record(t, servers);
                    self.observations += 1;
                }
            }
        }
    }

    /// Simulates a user session: `events` page loads spread over
    /// `span`, starting at `start` (think: a browsing burst).
    pub fn browse_session(&mut self, start: SimTime, span: SimDuration, events: u32) {
        for i in 0..events {
            let offset = span.as_millis() * i as u64 / events.max(1) as u64;
            self.browse(SimTime::from_millis(start.as_millis() + offset));
        }
    }

    /// The accumulated redirection history.
    pub fn tracker(&self) -> &RedirectionTracker<ReplicaId> {
        &self.tracker
    }

    /// Fresh observations harvested so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Browsing events simulated so far.
    pub fn browse_events(&self) -> u64 {
        self.browse_events
    }

    /// Whether the node has collected enough history to position itself
    /// (the paper's operating point: a 10-probe window).
    pub fn is_bootstrapped(&self) -> bool {
        self.tracker.len() >= 10
    }

    /// The extra DNS queries this monitor caused beyond what browsing
    /// would have issued anyway. Always zero: passive means passive.
    pub fn added_queries(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_cdn::{DeploymentSpec, MappingConfig};
    use crp_core::WindowPolicy;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn world() -> (Cdn, HostId, Vec<DomainName>) {
        let mut net = NetworkBuilder::new(41)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let host = net.add_population(&PopulationSpec::dns_servers(1))[0];
        let mut cdn = Cdn::deploy(
            net,
            &DeploymentSpec::akamai_like(0.4),
            MappingConfig::default(),
        );
        let names = vec![
            cdn.add_customer("us.i1.yimg.com").unwrap(),
            cdn.add_customer("www.foxnews.com").unwrap(),
        ];
        (cdn, host, names)
    }

    #[test]
    fn browsing_bursts_yield_ttl_limited_observations() {
        let (cdn, host, names) = world();
        let mut monitor = PassiveMonitor::new(&cdn, host, names);
        // 20 page loads within a single 20-second TTL window: the first
        // lookup per name misses, the rest hit the cache.
        monitor.browse_session(SimTime::ZERO, SimDuration::from_secs(18), 20);
        assert!(monitor.observations() <= 4, "{}", monitor.observations());
        assert!(monitor.observations() >= 1);
        assert_eq!(monitor.browse_events(), 20);
    }

    #[test]
    fn spread_out_browsing_bootstraps_the_node() {
        let (cdn, host, names) = world();
        let mut monitor = PassiveMonitor::new(&cdn, host, names);
        // A burst every 20 minutes for 6 hours.
        for burst in 0..18u64 {
            monitor.browse_session(
                SimTime::from_mins(burst * 20),
                SimDuration::from_secs(60),
                5,
            );
        }
        assert!(monitor.is_bootstrapped());
        let map = monitor
            .tracker()
            .ratio_map(WindowPolicy::All, SimTime::from_hours(6))
            .expect("observations recorded");
        assert!(map.len() >= 2, "map too narrow: {}", map.len());
    }

    #[test]
    fn passive_monitoring_adds_no_queries() {
        let (cdn, host, names) = world();
        let mut monitor = PassiveMonitor::new(&cdn, host, names);
        monitor.browse_session(SimTime::ZERO, SimDuration::from_mins(30), 10);
        assert_eq!(monitor.added_queries(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one CDN name")]
    fn empty_names_rejected() {
        let (cdn, host, _) = world();
        let _ = PassiveMonitor::new(&cdn, host, vec![]);
    }
}
