//! Memory observability: allocation attribution by subsystem and
//! capacity gauges — wall-clock-side, like [`profile`](crate::profile).
//!
//! The [`CountingAllocator`](crate::profile::CountingAllocator) reports
//! process-wide allocation pressure; this module says *who* allocated.
//! Sanctioned call sites open a **memory domain** with [`mem_domain!`]
//! (`mem_domain!("core.tracker")`); every allocation, deallocation, and
//! reallocation the thread performs while the domain is innermost is
//! charged to it — live bytes, peak live bytes, total bytes, operation
//! counts, and a power-of-two size-class histogram. A committed
//! `MEM_BASELINE.json` plus the `mem_check`/`mem_report` binaries turn
//! the attribution into a ratcheted budget gate, mirroring
//! `bench_check`.
//!
//! Boundary rules (the same contract as the profiler):
//!
//! - Attribution is **wall-clock-side observability**: nothing here
//!   reads or writes SimTime state, the record stream, or the metric
//!   registers, so arming it cannot perturb a seeded experiment
//!   (`tests/telemetry_determinism.rs` phases 12–13 prove it).
//! - The allocator hooks must be **allocation-free and lock-free**: the
//!   domain registry is a fixed-size table of atomics, the per-thread
//!   domain stack is a const-initialized `thread_local!` of `Cell`s
//!   (no lazy init, no destructor), and every counter is a relaxed
//!   atomic. The only lock in the module guards cold-path domain
//!   *registration* and is never taken from an allocator hook.
//! - `mem_domain!` is restricted to sanctioned sites by lint rule
//!   CRP013 (like CRP008 for trace hooks), so attribution boundaries
//!   stay deliberate instead of accreting.
//!
//! Live bytes are **signed**: a deallocation is charged to the domain
//! that is innermost *when it happens*, so a domain that frees buffers
//! another domain allocated can legitimately go negative. Peak tracking
//! applies per-domain over that signed live count.
//!
//! # Example
//!
//! ```
//! use crp_telemetry::{mem, mem_domain};
//!
//! mem::start();
//! {
//!     mem_domain!("example.work");
//!     let _v = vec![0u8; 4096];
//! }
//! let snapshot = mem::finish().expect("mem tracking was started");
//! // Counts are nonzero only when the binary installs the
//! // CountingAllocator; the domain itself is always registered.
//! assert!(snapshot.domain("example.work").is_some());
//! ```

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct attribution domains (slot 0 is the
/// implicit `(unattributed)` bucket). Registration past the limit
/// falls back to slot 0 rather than failing.
pub const MAX_DOMAINS: usize = 64;

/// Maximum nesting depth of the per-thread domain stack; deeper
/// nesting keeps counting depth but charges to the innermost tracked
/// domain.
const STACK_DEPTH: usize = 32;

/// Number of power-of-two size classes: class `i` covers allocation
/// sizes in `(2^(i+2), 2^(i+3)]` (class 0 is `<= 8` bytes), with the
/// last class absorbing everything larger.
pub const SIZE_CLASSES: usize = 16;

/// Name reported for allocations made outside any open domain.
pub const UNATTRIBUTED: &str = "(unattributed)";

// ---------------------------------------------------------------------
// Per-domain statistics (fixed-size table of atomics)
// ---------------------------------------------------------------------

struct DomainStats {
    /// Signed live bytes: allocations add, deallocations subtract, and
    /// both charge the *current* innermost domain, so cross-domain
    /// frees can drive this negative.
    live: AtomicI64,
    /// High-water mark of `live`.
    peak: AtomicI64,
    /// Total bytes ever allocated (monotonic pressure).
    total: AtomicU64,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    reallocs: AtomicU64,
    classes: [AtomicU64; SIZE_CLASSES],
}

impl DomainStats {
    const fn new() -> DomainStats {
        const ZERO: AtomicU64 = AtomicU64::new(0);
        DomainStats {
            live: AtomicI64::new(0),
            peak: AtomicI64::new(0),
            total: ZERO,
            allocs: ZERO,
            deallocs: ZERO,
            reallocs: ZERO,
            classes: [ZERO; SIZE_CLASSES],
        }
    }

    fn reset(&self) {
        self.live.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.deallocs.store(0, Ordering::Relaxed);
        self.reallocs.store(0, Ordering::Relaxed);
        for c in &self.classes {
            c.store(0, Ordering::Relaxed);
        }
    }
}

const STATS_INIT: DomainStats = DomainStats::new();
static STATS: [DomainStats; MAX_DOMAINS] = [STATS_INIT; MAX_DOMAINS];

/// Armed flag: one relaxed load is the entire disabled-path cost of
/// every allocator hook and every `mem_domain!` site.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Registered domain names, index `i` naming stats slot `i + 1`.
/// Cold path only: taken at registration and snapshot time, never from
/// an allocator hook.
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

// ---------------------------------------------------------------------
// Per-thread domain stack
// ---------------------------------------------------------------------

struct DomainStack {
    depth: Cell<usize>,
    slots: [Cell<u16>; STACK_DEPTH],
}

thread_local! {
    // const-initialized and Drop-free, so access from inside the
    // global allocator can neither allocate nor re-enter TLS teardown.
    static TLS: DomainStack = const {
        DomainStack {
            depth: Cell::new(0),
            slots: [const { Cell::new(0) }; STACK_DEPTH],
        }
    };
}

/// The stats slot charged for the current thread right now.
#[inline]
fn current_slot() -> usize {
    TLS.try_with(|tls| {
        let depth = tls.depth.get();
        if depth == 0 {
            0
        } else {
            usize::from(tls.slots[depth.min(STACK_DEPTH) - 1].get())
        }
    })
    .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Allocator hooks (called by CountingAllocator)
// ---------------------------------------------------------------------

/// Charges one allocation of `size` bytes to the innermost domain.
#[inline]
pub(crate) fn note_alloc(size: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let s = &STATS[current_slot()];
    s.allocs.fetch_add(1, Ordering::Relaxed);
    s.total.fetch_add(size as u64, Ordering::Relaxed);
    s.classes[size_class(size)].fetch_add(1, Ordering::Relaxed);
    let live = s.live.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    s.peak.fetch_max(live, Ordering::Relaxed);
}

/// Charges one deallocation of `size` bytes to the innermost domain.
#[inline]
pub(crate) fn note_dealloc(size: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let s = &STATS[current_slot()];
    s.deallocs.fetch_add(1, Ordering::Relaxed);
    s.live.fetch_sub(size as i64, Ordering::Relaxed);
}

/// Charges one reallocation from `old` to `new` bytes to the innermost
/// domain: total grows by the grown delta only, live moves by the
/// signed difference.
#[inline]
pub(crate) fn note_realloc(old: usize, new: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let s = &STATS[current_slot()];
    s.reallocs.fetch_add(1, Ordering::Relaxed);
    s.total
        .fetch_add(new.saturating_sub(old) as u64, Ordering::Relaxed);
    let delta = new as i64 - old as i64;
    let live = s.live.fetch_add(delta, Ordering::Relaxed) + delta;
    s.peak.fetch_max(live, Ordering::Relaxed);
}

/// The size class for an allocation of `size` bytes.
#[inline]
fn size_class(size: usize) -> usize {
    let ceil_log2 = (usize::BITS - size.saturating_sub(1).leading_zeros()) as usize;
    ceil_log2.saturating_sub(3).min(SIZE_CLASSES - 1)
}

// ---------------------------------------------------------------------
// Domain registration and guards
// ---------------------------------------------------------------------

/// Registers `name` (idempotent) and returns its stats slot; slot 0
/// when the table is full.
fn register(name: &'static str) -> usize {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(pos) = names.iter().position(|n| *n == name) {
        return pos + 1;
    }
    if names.len() + 1 >= MAX_DOMAINS {
        return 0;
    }
    names.push(name);
    names.len()
}

/// An open attribution domain; pops the thread's domain stack on drop.
/// Created by [`mem_domain!`] — not meant to be constructed by hand.
pub struct DomainGuard {
    pushed: bool,
}

impl DomainGuard {
    /// Enters the domain named `name`, caching its registered slot in
    /// the per-callsite `cache` (initialized to `usize::MAX`).
    ///
    /// Inert (no TLS write, no registration) while tracking is
    /// disarmed.
    #[inline]
    pub fn enter_cached(cache: &AtomicUsize, name: &'static str) -> DomainGuard {
        if !ARMED.load(Ordering::Relaxed) {
            return DomainGuard { pushed: false };
        }
        let mut slot = cache.load(Ordering::Relaxed);
        if slot == usize::MAX {
            slot = register(name);
            cache.store(slot, Ordering::Relaxed);
        }
        let pushed = TLS
            .try_with(|tls| {
                let depth = tls.depth.get();
                if depth < STACK_DEPTH {
                    tls.slots[depth].set(slot as u16);
                }
                tls.depth.set(depth + 1);
                true
            })
            .unwrap_or(false);
        DomainGuard { pushed }
    }
}

impl Drop for DomainGuard {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        let _ = TLS.try_with(|tls| {
            let depth = tls.depth.get();
            tls.depth.set(depth.saturating_sub(1));
        });
    }
}

/// Opens a memory-attribution domain covering the rest of the enclosing
/// block. Only sanctioned call sites may use this (lint rule CRP013).
///
/// ```
/// fn ingest() {
///     crp_telemetry::mem_domain!("core.tracker");
///     // allocations here are charged to core.tracker
/// }
/// ```
#[macro_export]
macro_rules! mem_domain {
    ($name:literal) => {
        static __CRP_MEM_DOMAIN_SLOT: ::std::sync::atomic::AtomicUsize =
            ::std::sync::atomic::AtomicUsize::new(usize::MAX);
        let _crp_mem_guard = $crate::mem::DomainGuard::enter_cached(&__CRP_MEM_DOMAIN_SLOT, $name);
    };
}

// ---------------------------------------------------------------------
// Lifecycle and snapshots
// ---------------------------------------------------------------------

/// Arms allocation attribution, zeroing every domain's counters.
/// Registered domain names persist across sessions (they are static
/// call-site properties, not run state).
pub fn start() {
    for s in &STATS {
        s.reset();
    }
    ARMED.store(true, Ordering::Release);
}

/// Whether attribution is armed. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Zeroes every domain's counters without changing the armed state —
/// the per-benchmark reset `bench_all` uses between rows.
pub fn reset() {
    for s in &STATS {
        s.reset();
    }
}

/// Disarms attribution and returns the final snapshot, or `None` if
/// tracking was not armed.
pub fn finish() -> Option<MemSnapshot> {
    if !ARMED.swap(false, Ordering::AcqRel) {
        return None;
    }
    Some(snapshot())
}

/// The current per-domain statistics, name-sorted for deterministic
/// serialization. Callable while armed (e.g. between benchmark rows).
pub fn snapshot() -> MemSnapshot {
    let names = NAMES
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    let mut domains = Vec::with_capacity(names.len() + 1);
    for (slot, name) in std::iter::once(UNATTRIBUTED)
        .chain(names.iter().copied())
        .enumerate()
    {
        let s = &STATS[slot];
        domains.push(DomainMem {
            name: name.to_owned(),
            live_bytes: s.live.load(Ordering::Relaxed),
            peak_bytes: s.peak.load(Ordering::Relaxed),
            total_bytes: s.total.load(Ordering::Relaxed),
            allocs: s.allocs.load(Ordering::Relaxed),
            deallocs: s.deallocs.load(Ordering::Relaxed),
            reallocs: s.reallocs.load(Ordering::Relaxed),
            size_classes: s
                .classes
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        });
    }
    domains.sort_by(|a, b| a.name.cmp(&b.name));
    MemSnapshot { domains }
}

/// Per-domain allocation statistics for one tracked interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainMem {
    /// Domain name as passed to [`mem_domain!`], or
    /// [`UNATTRIBUTED`] for slot 0.
    pub name: String,
    /// Signed live bytes at snapshot time (negative when the domain
    /// freed buffers allocated elsewhere).
    pub live_bytes: i64,
    /// High-water mark of live bytes.
    pub peak_bytes: i64,
    /// Total bytes allocated (monotonic pressure).
    pub total_bytes: u64,
    /// Allocation count.
    pub allocs: u64,
    /// Deallocation count.
    pub deallocs: u64,
    /// Reallocation count.
    pub reallocs: u64,
    /// Allocation counts per power-of-two size class (class 0 covers
    /// sizes up to 8 bytes, each next class doubles, last absorbs the
    /// rest).
    pub size_classes: Vec<u64>,
}

/// A full attribution snapshot: every registered domain plus the
/// unattributed bucket, name-sorted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemSnapshot {
    /// Per-domain statistics, sorted by name.
    pub domains: Vec<DomainMem>,
}

impl MemSnapshot {
    /// Looks up a domain by name.
    pub fn domain(&self, name: &str) -> Option<&DomainMem> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// Total allocations across every domain, unattributed included.
    pub fn total_allocs(&self) -> u64 {
        self.domains.iter().map(|d| d.allocs).sum()
    }

    /// Total bytes allocated across every domain.
    pub fn total_bytes(&self) -> u64 {
        self.domains.iter().map(|d| d.total_bytes).sum()
    }

    /// Fraction of allocations charged to named domains (1.0 when
    /// nothing is unattributed; 1.0 for an empty snapshot).
    pub fn attributed_fraction(&self) -> f64 {
        let total = self.total_allocs();
        if total == 0 {
            return 1.0;
        }
        let unattributed = self.domain(UNATTRIBUTED).map_or(0, |d| d.allocs);
        1.0 - unattributed as f64 / total as f64
    }
}

// ---------------------------------------------------------------------
// Capacity gauges
// ---------------------------------------------------------------------

/// Deep-size accounting for resident structures — the capacity-gauge
/// half of memory observability.
///
/// Implementations report the bytes the structure holds *beyond*
/// `size_of::<Self>()`-style shallow size: heap buffers, map nodes,
/// and owned children, estimated structurally (element counts times
/// element footprints). The estimate trades allocator-level exactness
/// for zero dependencies and deterministic results, which is what the
/// occupancy time series needs.
pub trait MemFootprint {
    /// Estimated resident bytes of this structure, deep.
    fn mem_footprint(&self) -> usize;
}

impl<T: MemFootprint> MemFootprint for &T {
    fn mem_footprint(&self) -> usize {
        (**self).mem_footprint()
    }
}

/// Estimated per-entry overhead of an ordered map (`BTreeMap`) node:
/// amortized slack from partially-filled leaves plus parent edges.
pub const ORDERED_MAP_ENTRY_OVERHEAD: usize = 16;

/// Estimated per-entry overhead of a hash map: control bytes plus the
/// ~1/3 slack a load factor of 7/8-with-doubling leaves resident.
pub const HASH_MAP_ENTRY_OVERHEAD: usize = 24;

/// Deep size of a `Vec`'s heap buffer (capacity, not length — slack is
/// resident too). Element-owned heap data must be added by the caller.
#[allow(clippy::ptr_arg)]
pub fn vec_footprint<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Estimated node bytes of an ordered map with `len` entries of
/// `entry_size` bytes each (key + value, shallow).
pub fn ordered_map_footprint(len: usize, entry_size: usize) -> usize {
    len * (entry_size + ORDERED_MAP_ENTRY_OVERHEAD)
}

/// Estimated table bytes of a hash map with `len` entries of
/// `entry_size` bytes each (key + value, shallow).
pub fn hash_map_footprint(len: usize, entry_size: usize) -> usize {
    len * (entry_size + HASH_MAP_ENTRY_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the process-global state, so phases must run in one
    /// test function (same pattern as the profiler's global test).
    #[test]
    fn lifecycle_and_attribution() {
        assert!(!enabled());
        assert!(finish().is_none(), "finish without start yields nothing");

        // Disarmed: hooks and guards are inert.
        note_alloc(1024);
        {
            mem_domain!("test.disarmed");
            note_alloc(2048);
        }
        start();
        assert!(enabled());
        let snap = snapshot();
        assert_eq!(
            snap.domain(UNATTRIBUTED).map(|d| d.allocs),
            Some(0),
            "disarmed traffic must not leak into the armed session"
        );

        // Armed, outside any domain: charged to the unattributed slot.
        note_alloc(100);
        // Armed, inside nested domains: charged innermost.
        {
            mem_domain!("test.outer");
            note_alloc(1000);
            {
                mem_domain!("test.inner");
                note_alloc(50);
                note_alloc(70);
            }
            note_alloc(2000);
            note_dealloc(500);
        }
        note_dealloc(100);

        let snap = finish().expect("armed session finishes with a snapshot");
        assert!(!enabled());
        assert!(finish().is_none(), "finish is one-shot");

        let un = snap.domain(UNATTRIBUTED).expect("slot 0 always present");
        assert_eq!(un.allocs, 1);
        assert_eq!(un.total_bytes, 100);
        assert_eq!(un.deallocs, 1);
        assert_eq!(un.live_bytes, 0, "100 alloc'd then 100 freed outside");

        let outer = snap.domain("test.outer").expect("registered");
        assert_eq!(outer.allocs, 2);
        assert_eq!(outer.total_bytes, 3000);
        assert_eq!(outer.live_bytes, 2500);
        assert_eq!(outer.peak_bytes, 3000, "peak before the 500-byte free");

        let inner = snap.domain("test.inner").expect("registered");
        assert_eq!(inner.allocs, 2);
        assert_eq!(inner.total_bytes, 120);
        assert_eq!(inner.peak_bytes, 120);

        // Snapshots are name-sorted and round-trip through JSON.
        let names: Vec<&str> = snap.domains.iter().map(|d| d.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MemSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);

        // Attribution fraction: 1 of 5 allocs was unattributed.
        assert!((snap.attributed_fraction() - 0.8).abs() < 1e-12);

        // Realloc accounting: growth adds pressure, shrink only moves
        // live; peak is the high-water over interleaved scopes.
        start();
        {
            mem_domain!("test.realloc");
            note_alloc(64); // live 64, peak 64
            note_realloc(64, 256); // live 256, peak 256, total 64+192
            note_realloc(256, 128); // live 128, peak unchanged, total same
            note_dealloc(128); // live 0
        }
        let snap = finish().expect("armed");
        let d = snap.domain("test.realloc").expect("registered");
        assert_eq!(d.allocs, 1);
        assert_eq!(d.reallocs, 2);
        assert_eq!(d.total_bytes, 64 + 192);
        assert_eq!(d.peak_bytes, 256);
        assert_eq!(d.live_bytes, 0);

        // Interleaved scopes: a domain freeing a sibling's buffer goes
        // negative while the sibling keeps its peak — the documented
        // signed-live semantics.
        start();
        {
            mem_domain!("test.a");
            note_alloc(512);
        }
        {
            mem_domain!("test.b");
            note_dealloc(512);
        }
        let snap = finish().expect("armed");
        assert_eq!(snap.domain("test.a").map(|d| d.peak_bytes), Some(512));
        assert_eq!(snap.domain("test.b").map(|d| d.live_bytes), Some(-512));

        // reset() zeroes counters while staying armed.
        start();
        note_alloc(10);
        reset();
        assert!(enabled());
        let snap = finish().expect("armed");
        assert_eq!(snap.domain(UNATTRIBUTED).map(|d| d.allocs), Some(0));
    }

    #[test]
    fn size_classes_are_powers_of_two() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(8), 0);
        assert_eq!(size_class(9), 1);
        assert_eq!(size_class(16), 1);
        assert_eq!(size_class(17), 2);
        assert_eq!(size_class(1024), 7);
        assert_eq!(size_class(usize::MAX), SIZE_CLASSES - 1);
    }

    #[test]
    fn deep_stack_overflow_keeps_counting_depth() {
        // Depth counting past STACK_DEPTH must stay balanced: guards
        // beyond the limit charge to the innermost tracked domain and
        // unwind cleanly.
        fn nest(depth: usize) {
            if depth == 0 {
                return;
            }
            mem_domain!("test.deep");
            nest(depth - 1);
        }
        nest(STACK_DEPTH + 8);
        let _ = TLS.try_with(|tls| assert_eq!(tls.depth.get(), 0, "stack must unwind to empty"));
    }

    #[test]
    fn footprint_trait_passes_through_references() {
        struct Fixed;
        impl MemFootprint for Fixed {
            fn mem_footprint(&self) -> usize {
                42
            }
        }
        let f = Fixed;
        assert_eq!((&f).mem_footprint(), 42);
    }
}
