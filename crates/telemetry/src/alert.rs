//! A declarative SLO alert engine over the time-series store.
//!
//! Rules are evaluated deterministically against the windowed aggregates
//! of a [`TimeSeriesStore`](crate::timeseries::TimeSeriesStore): the
//! engine replays each rule's tier in ascending window order, applies
//! for-duration debouncing, and records firing/resolved transitions at
//! the **simulated time** of the window that triggered them. The same
//! seeded run therefore produces a byte-identical `alerts.json`.
//!
//! Three rule kinds:
//!
//! - **Threshold** — a window statistic crosses a bound (e.g. p99 ingest
//!   latency above 400 ms).
//! - **Rate of change** — the statistic moves more than `max_delta`
//!   between consecutive windows (e.g. ratio-map drift accelerating).
//! - **Burn rate** — the threshold is breached both in the current
//!   window *and* in the aggregate of the trailing `long_windows`
//!   windows, the classic fast+slow burn-rate pair.

use crate::timeseries::{TimeSeriesStore, Window};
use serde::{Deserialize, Serialize};

/// A window statistic a rule can test.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stat {
    /// Number of samples in the window.
    Count,
    /// Sum of sample values (the windowed rate for counter series).
    Sum,
    /// Mean sample value.
    Mean,
    /// Smallest sample value.
    Min,
    /// Largest sample value.
    Max,
    /// Median estimate.
    P50,
    /// 90th-percentile estimate.
    P90,
    /// 99th-percentile estimate.
    P99,
}

impl Stat {
    fn of(self, w: &Window, bounds: &[f64]) -> Option<f64> {
        match self {
            Stat::Count => Some(w.count as f64),
            Stat::Sum => Some(w.sum),
            Stat::Mean => w.mean(),
            Stat::Min => (w.count > 0).then_some(w.min),
            Stat::Max => (w.count > 0).then_some(w.max),
            Stat::P50 => w.quantile(bounds, 0.50),
            Stat::P90 => w.quantile(bounds, 0.90),
            Stat::P99 => w.quantile(bounds, 0.99),
        }
    }
}

/// Comparison direction for threshold-style rules.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Breach when the statistic is strictly above the bound.
    Above,
    /// Breach when the statistic is strictly below the bound.
    Below,
}

impl Op {
    fn breached(self, stat: f64, value: f64) -> bool {
        match self {
            Op::Above => stat > value,
            Op::Below => stat < value,
        }
    }
}

/// What a rule tests per window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RuleKind {
    /// `stat op value` in each window.
    Threshold {
        /// Statistic to test.
        stat: Stat,
        /// Comparison direction.
        op: Op,
        /// The bound.
        value: f64,
    },
    /// `|stat(w) − stat(prev)| > max_delta` between consecutive windows.
    RateOfChange {
        /// Statistic to difference.
        stat: Stat,
        /// Largest tolerated between-window move.
        max_delta: f64,
    },
    /// `stat op value` in the window **and** in the trailing aggregate
    /// of `long_windows` windows.
    BurnRate {
        /// Statistic to test.
        stat: Stat,
        /// Comparison direction.
        op: Op,
        /// The bound.
        value: f64,
        /// Trailing windows aggregated for the slow burn check.
        long_windows: usize,
    },
}

/// One declarative alert rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name (unique within a rule set).
    pub name: String,
    /// The time-series metric the rule watches.
    pub metric: String,
    /// Which retention tier to evaluate (window width in sim ms).
    pub window_ms: u64,
    /// Consecutive breached windows required before firing (≥ 1).
    pub for_windows: u64,
    /// The test.
    pub kind: RuleKind,
}

/// The default SLO rule set shipped with `--live`.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        // Ingest latency: the redirect-time best-candidate RTT is the
        // per-observation ingest cost; sustained p99 above 400 ms for
        // two 10-minute windows means clients are being mapped far away.
        AlertRule {
            name: "ingest-latency-p99".to_owned(),
            metric: "cdn.best_candidate_ms".to_owned(),
            window_ms: 600_000,
            for_windows: 2,
            kind: RuleKind::Threshold {
                stat: Stat::P99,
                op: Op::Above,
                value: 400.0,
            },
        },
        // Ratio-map drift rate: the audit layer feeds per-snapshot L1
        // drift; a jump of more than 0.5 between hourly windows is the
        // YouLighter-style "the CDN re-architected under us" signal.
        AlertRule {
            name: "ratio-map-drift-rate".to_owned(),
            metric: "audit.ratio_drift.l1".to_owned(),
            window_ms: 3_600_000,
            for_windows: 1,
            kind: RuleKind::RateOfChange {
                stat: Stat::Mean,
                max_delta: 0.5,
            },
        },
        // Remap bursts: more than 50 strongest-replica remap events in a
        // 10-minute window, sustained against the trailing hour, means
        // mapping churn far above the paper's baseline.
        AlertRule {
            name: "remap-event-burst".to_owned(),
            metric: "cdn.remap.events".to_owned(),
            window_ms: 600_000,
            for_windows: 1,
            kind: RuleKind::BurnRate {
                stat: Stat::Sum,
                op: Op::Above,
                value: 50.0,
                long_windows: 6,
            },
        },
        // Change-detector verdicts: the audit detect scan reports how
        // many localized changes each window raised; any window with a
        // raised change is an infrastructure event worth paging on.
        AlertRule {
            name: "change-detected".to_owned(),
            metric: "detect.changes_raised".to_owned(),
            window_ms: 3_600_000,
            for_windows: 1,
            kind: RuleKind::Threshold {
                stat: Stat::Max,
                op: Op::Above,
                value: 0.0,
            },
        },
        // Mass-remap pressure: the detector's global strongest-changed
        // fraction sustained above 30% across two hourly windows means
        // the CDN is continuously re-mapping the population — ratio
        // maps (and any clustering built on them) are stale on arrival.
        AlertRule {
            name: "detect-remap-pressure".to_owned(),
            metric: "detect.remap_fraction".to_owned(),
            window_ms: 3_600_000,
            for_windows: 2,
            kind: RuleKind::Threshold {
                stat: Stat::Mean,
                op: Op::Above,
                value: 0.3,
            },
        },
    ]
}

/// A firing/resolved state change, stamped with simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlertTransition {
    /// Start of the window that triggered the change.
    pub at_ms: u64,
    /// `"firing"` or `"resolved"`.
    pub state: String,
    /// The statistic value that triggered the change.
    pub value: f64,
}

/// One rule's evaluation outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuleOutcome {
    /// The rule that was evaluated.
    pub rule: AlertRule,
    /// Windows the rule saw.
    pub evaluated_windows: u64,
    /// Windows that breached the rule's test.
    pub breached_windows: u64,
    /// State transitions in time order.
    pub transitions: Vec<AlertTransition>,
    /// `"firing"` or `"resolved"` at end of run.
    pub final_state: String,
}

impl RuleOutcome {
    /// Whether the rule ever fired.
    pub fn ever_fired(&self) -> bool {
        self.transitions.iter().any(|t| t.state == "firing")
    }
}

/// The machine-readable alert log (`alerts.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlertLog {
    /// Per-rule outcomes, in rule order.
    pub rules: Vec<RuleOutcome>,
}

impl AlertLog {
    /// The outcome for the named rule, if present.
    pub fn rule(&self, name: &str) -> Option<&RuleOutcome> {
        self.rules.iter().find(|r| r.rule.name == name)
    }

    /// Names of rules firing at end of run.
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .filter(|r| r.final_state == "firing")
            .map(|r| r.rule.name.as_str())
            .collect()
    }
}

impl crate::mem::MemFootprint for AlertLog {
    fn mem_footprint(&self) -> usize {
        crate::mem::vec_footprint(&self.rules)
            + self
                .rules
                .iter()
                .map(|r| {
                    r.rule.name.capacity()
                        + r.rule.metric.capacity()
                        + r.final_state.capacity()
                        + crate::mem::vec_footprint(&r.transitions)
                        + r.transitions
                            .iter()
                            .map(|t| t.state.capacity())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Evaluates a rule set against a completed store.
#[derive(Clone, Debug)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
}

impl AlertEngine {
    /// Creates an engine over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        AlertEngine { rules }
    }

    /// Replays every rule over the store's windows and returns the log.
    pub fn evaluate(&self, store: &TimeSeriesStore) -> AlertLog {
        AlertLog {
            rules: self
                .rules
                .iter()
                .map(|rule| evaluate_rule(rule, store))
                .collect(),
        }
    }
}

fn evaluate_rule(rule: &AlertRule, store: &TimeSeriesStore) -> RuleOutcome {
    let bounds = &store.config().bounds;
    let windows: Vec<&Window> = store
        .series(&rule.metric)
        .map(|s| s.windows(rule.window_ms))
        .unwrap_or_default();

    let mut outcome = RuleOutcome {
        rule: rule.clone(),
        evaluated_windows: 0,
        breached_windows: 0,
        transitions: Vec::new(),
        final_state: "resolved".to_owned(),
    };
    let mut firing = false;
    let mut pending = 0u64;
    let mut prev_stat: Option<f64> = None;

    for (i, w) in windows.iter().enumerate() {
        outcome.evaluated_windows += 1;
        let (breached, value) = match &rule.kind {
            RuleKind::Threshold { stat, op, value } => {
                let s = stat.of(w, bounds);
                (s.is_some_and(|s| op.breached(s, *value)), s.unwrap_or(0.0))
            }
            RuleKind::RateOfChange { stat, max_delta } => {
                let s = stat.of(w, bounds);
                let delta = match (s, prev_stat) {
                    (Some(cur), Some(prev)) => (cur - prev).abs(),
                    _ => 0.0,
                };
                prev_stat = s.or(prev_stat);
                (delta > *max_delta, delta)
            }
            RuleKind::BurnRate {
                stat,
                op,
                value,
                long_windows,
            } => {
                let short = stat.of(w, bounds);
                let fast = short.is_some_and(|s| op.breached(s, *value));
                let slow = if fast {
                    let lo = i.saturating_sub(long_windows.saturating_sub(1));
                    let mut agg = Window {
                        start_ms: w.start_ms,
                        count: 0,
                        sum: 0.0,
                        min: 0.0,
                        max: 0.0,
                        buckets: vec![0; bounds.len() + 1],
                        exemplars: Vec::new(),
                    };
                    for long in &windows[lo..=i] {
                        agg.merge(long);
                    }
                    // Compare the long-window *per-window average* so the
                    // bound keeps its per-window meaning.
                    let span = (i - lo + 1) as f64;
                    stat.of(&agg, bounds)
                        .map(|s| {
                            if matches!(stat, Stat::Sum | Stat::Count) {
                                s / span
                            } else {
                                s
                            }
                        })
                        .is_some_and(|s| op.breached(s, *value))
                } else {
                    false
                };
                (fast && slow, short.unwrap_or(0.0))
            }
        };

        if breached {
            outcome.breached_windows += 1;
            pending += 1;
            if !firing && pending >= rule.for_windows.max(1) {
                firing = true;
                outcome.transitions.push(AlertTransition {
                    at_ms: w.start_ms,
                    state: "firing".to_owned(),
                    value,
                });
            }
        } else {
            pending = 0;
            if firing {
                firing = false;
                outcome.transitions.push(AlertTransition {
                    at_ms: w.start_ms,
                    state: "resolved".to_owned(),
                    value,
                });
            }
        }
    }
    outcome.final_state = if firing { "firing" } else { "resolved" }.to_owned();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{TierSpec, TimeSeriesConfig, TimeSeriesStore};

    fn store() -> TimeSeriesStore {
        TimeSeriesStore::new(TimeSeriesConfig {
            tiers: vec![TierSpec {
                window_ms: 1_000,
                slots: 32,
            }],
            bounds: vec![1.0, 10.0, 100.0, 1_000.0],
            max_series: 8,
            exemplars_per_bucket: 1,
        })
    }

    fn threshold(for_windows: u64, value: f64) -> AlertRule {
        AlertRule {
            name: "r".to_owned(),
            metric: "m".to_owned(),
            window_ms: 1_000,
            for_windows,
            kind: RuleKind::Threshold {
                stat: Stat::Max,
                op: Op::Above,
                value,
            },
        }
    }

    #[test]
    fn threshold_fires_and_resolves_at_sim_time() {
        let mut s = store();
        for t in 0..10u64 {
            let v = if (4..7).contains(&t) { 500.0 } else { 5.0 };
            s.record(t * 1_000, "m", v, 0);
        }
        let log = AlertEngine::new(vec![threshold(1, 100.0)]).evaluate(&s);
        let r = log.rule("r").expect("rule present");
        assert_eq!(r.evaluated_windows, 10);
        assert_eq!(r.breached_windows, 3);
        assert_eq!(r.transitions.len(), 2);
        assert_eq!(r.transitions[0].state, "firing");
        assert_eq!(r.transitions[0].at_ms, 4_000);
        assert_eq!(r.transitions[1].state, "resolved");
        assert_eq!(r.transitions[1].at_ms, 7_000);
        assert_eq!(r.final_state, "resolved");
        assert!(r.ever_fired());
        assert!(log.firing().is_empty());
    }

    #[test]
    fn for_duration_debounces_single_window_spikes() {
        let mut s = store();
        for t in 0..10u64 {
            // Breaches at t=2 (single) and t=6,7 (sustained).
            let v = if t == 2 || t == 6 || t == 7 {
                500.0
            } else {
                5.0
            };
            s.record(t * 1_000, "m", v, 0);
        }
        let log = AlertEngine::new(vec![threshold(2, 100.0)]).evaluate(&s);
        let r = log.rule("r").expect("rule present");
        assert_eq!(r.transitions.len(), 2, "{:?}", r.transitions);
        assert_eq!(
            r.transitions[0].at_ms, 7_000,
            "second sustained window fires"
        );
    }

    #[test]
    fn rule_with_no_data_stays_resolved() {
        let s = store();
        let log = AlertEngine::new(default_rules()).evaluate(&s);
        assert_eq!(log.rules.len(), 5);
        for r in &log.rules {
            assert_eq!(r.final_state, "resolved");
            assert_eq!(r.evaluated_windows, 0);
            assert!(!r.ever_fired());
        }
    }

    #[test]
    fn rate_of_change_detects_jumps_not_levels() {
        let mut s = store();
        // Constant high level: no rate alarm. Then a jump.
        for t in 0..4u64 {
            s.record(t * 1_000, "m", 100.0, 0);
        }
        s.record(4_000, "m", 900.0, 0);
        let rule = AlertRule {
            name: "roc".to_owned(),
            metric: "m".to_owned(),
            window_ms: 1_000,
            for_windows: 1,
            kind: RuleKind::RateOfChange {
                stat: Stat::Mean,
                max_delta: 300.0,
            },
        };
        let log = AlertEngine::new(vec![rule]).evaluate(&s);
        let r = log.rule("roc").expect("rule present");
        assert_eq!(r.breached_windows, 1);
        assert_eq!(r.transitions[0].at_ms, 4_000);
        assert_eq!(r.final_state, "firing", "run ended mid-incident");
        assert_eq!(log.firing(), vec!["roc"]);
    }

    #[test]
    fn burn_rate_requires_sustained_long_window() {
        let rule = AlertRule {
            name: "burn".to_owned(),
            metric: "m".to_owned(),
            window_ms: 1_000,
            for_windows: 1,
            kind: RuleKind::BurnRate {
                stat: Stat::Sum,
                op: Op::Above,
                value: 10.0,
                long_windows: 3,
            },
        };
        // One isolated spike: fast breach but the 3-window average stays
        // at the bound → no fire.
        let mut quiet = store();
        for t in 0..6u64 {
            let v = if t == 3 { 12.0 } else { 9.0 };
            s_record(&mut quiet, t, v);
        }
        let log = AlertEngine::new(vec![rule.clone()]).evaluate(&quiet);
        assert!(!log.rule("burn").expect("rule").ever_fired());

        // Sustained burn: every window breaches → fires.
        let mut hot = store();
        for t in 0..6u64 {
            s_record(&mut hot, t, 20.0);
        }
        let log = AlertEngine::new(vec![rule]).evaluate(&hot);
        assert!(log.rule("burn").expect("rule").ever_fired());
    }

    fn s_record(s: &mut TimeSeriesStore, t: u64, v: f64) {
        s.record(t * 1_000, "m", v, 0);
    }

    #[test]
    fn alert_log_round_trips_and_is_deterministic() {
        let run = || {
            let mut s = store();
            for t in 0..16u64 {
                s.record(t * 1_000, "m", if t % 4 == 0 { 800.0 } else { 3.0 }, 0);
            }
            let log = AlertEngine::new(vec![threshold(1, 100.0)]).evaluate(&s);
            serde_json::to_string(&log).expect("serialize")
        };
        let a = run();
        assert_eq!(a, run());
        let back: AlertLog = serde_json::from_str(&a).expect("parse");
        assert_eq!(back.rules.len(), 1);
    }

    /// Pins the detection latencies in the EXPERIMENTS.md alert table:
    /// a synthetic degradation with a known SimTime onset, evaluated by
    /// the default rule set over a default-config store.
    #[test]
    fn default_rules_detection_latency_from_onset() {
        const MIN: u64 = 60_000;
        const HOUR: u64 = 3_600_000;
        let mut s = TimeSeriesStore::new(TimeSeriesConfig::default());
        // Two simulated hours, one sample per minute; everything
        // degrades at exactly t = 1 h.
        for m in 0..120u64 {
            let t = m * MIN;
            // Ingest latency steps 30 ms → 800 ms (p99 bound is 400).
            s.record(
                t,
                "cdn.best_candidate_ms",
                if m < 60 { 30.0 } else { 800.0 },
                0,
            );
            // Remap events step 3/min → 12/min (30 → 120 per 10-min
            // window; the burst bound is 50 per window).
            for _ in 0..if m < 60 { 3 } else { 12 } {
                s.record(t, "cdn.remap.events", 1.0, 0);
            }
        }
        // Hourly drift snapshots: mean L1 jumps at the 3-hour mark
        // (rate-of-change bound is 0.5 between occupied windows).
        for (h, l1) in [(1u64, 0.05), (2, 0.06), (3, 0.90), (4, 0.92)] {
            s.record(h * HOUR, "audit.ratio_drift.l1", l1, 0);
        }
        let log = AlertEngine::new(default_rules()).evaluate(&s);

        // Threshold with for_windows = 2: the first breached 10-minute
        // window starts at onset; the transition is stamped one window
        // later — 10 min of detection latency.
        let r = log.rule("ingest-latency-p99").expect("rule present");
        assert_eq!(r.transitions[0].state, "firing");
        assert_eq!(r.transitions[0].at_ms - HOUR, 600_000);
        assert_eq!(r.final_state, "firing");

        // Burn rate vs the trailing hour: the first burst window's
        // 6-window average is still diluted by quiet windows, the
        // second crosses it — 10 min of detection latency.
        let r = log.rule("remap-event-burst").expect("rule present");
        assert_eq!(r.transitions[0].state, "firing");
        assert_eq!(r.transitions[0].at_ms - HOUR, 600_000);

        // Rate of change fires on the jump window itself: the
        // transition is stamped at the onset window's start.
        let r = log.rule("ratio-map-drift-rate").expect("rule present");
        assert_eq!(r.transitions[0].state, "firing");
        assert_eq!(r.transitions[0].at_ms, 3 * HOUR);
    }
}
