//! Deterministic structured tracing and metrics for the CRP pipeline.
//!
//! The workspace's experiments are seeded simulations: the same seed must
//! produce the same figures, with or without observability. This crate
//! therefore keys every span and event on **simulated time** (milliseconds,
//! as produced by `SimTime::as_millis`) and never touches the wall clock,
//! so enabling telemetry cannot perturb results and the emitted streams
//! are byte-identical across runs.
//!
//! Two layers:
//!
//! - **Records** ([`Record`]): spans and point events flowing into a
//!   pluggable [`Sink`] — [`JsonlSink`] for files, [`MemorySink`] for
//!   tests, [`NoopSink`] to discard.
//! - **Metrics**: monotonic counters, gauges, and fixed-bucket
//!   [`Histogram`]s aggregated in memory and condensed into a
//!   [`TelemetrySummary`] at shutdown. Hot paths record into metrics
//!   (cheap, allocation-free after the first touch); only coarse events
//!   and spans reach the sink.
//!
//! Instrumented crates call the free functions below ([`counter_add`],
//! [`observe`], [`event`], [`span`], …), which fan into a process-global
//! collector. When no collector is installed every call is a single
//! relaxed atomic load and an early return, so the disabled cost is near
//! zero. Library crates must never write telemetry to files themselves —
//! the JSONL sink in this crate is the only sanctioned path (enforced by
//! lint rule CRP006).
//!
//! A third, deliberately separate layer lives in [`profile`]: hierarchical
//! **wall-clock** scopes for performance attribution. It shares the
//! atomic-gate pattern but never touches the record stream or the metric
//! registers, so the determinism contract above is unaffected (see lint
//! rule CRP007 for where wall-clock time is allowed at all).
//!
//! # Example
//!
//! ```
//! use crp_telemetry as telemetry;
//!
//! let (sink, records) = telemetry::MemorySink::shared();
//! telemetry::install(Box::new(sink));
//!
//! telemetry::counter_add("core.similarity.calls", 1);
//! telemetry::observe_unit("core.smf.mapping_strength", 0.85);
//! if telemetry::enabled() {
//!     telemetry::event(1_000, "probe.round", &[("hosts", 12u64.into())]);
//! }
//!
//! let summary = telemetry::shutdown("example").expect("collector installed");
//! assert_eq!(summary.counter("core.similarity.calls"), Some(1));
//! assert_eq!(summary.counter("event.probe.round"), Some(1));
//! assert_eq!(records.lock().unwrap().len(), 1);
//! ```

pub mod alert;
pub mod mem;
pub mod metrics;
pub mod profile;
pub mod record;
pub mod sink;
pub mod summary;
pub mod timeseries;
pub mod trace;

pub use alert::{AlertEngine, AlertLog, AlertRule};
pub use mem::{DomainMem, MemFootprint, MemSnapshot};
pub use metrics::{
    default_bounds, default_bounds_cached, unit_bounds, unit_bounds_cached, Histogram,
    HistogramSummary,
};
pub use record::{FieldValue, Record};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink};
pub use summary::{CounterEntry, GaugeEntry, TelemetrySummary};
pub use timeseries::{TimeSeriesConfig, TimeSeriesExport, TimeSeriesStore};
pub use trace::{TraceConfig, TraceId, TraceLog};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Aggregates metrics and forwards records to a sink.
///
/// This is the engine behind the global free functions; tests can also
/// drive a standalone `Collector` directly to stay isolated from the
/// process-global instance.
pub struct Collector {
    sink: Box<dyn Sink>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    events: u64,
    spans: u64,
    sink_dropped: u64,
}

impl Collector {
    /// Creates a collector writing records to `sink`.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        Collector {
            sink,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: 0,
            spans: 0,
            sink_dropped: 0,
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v = v.saturating_add(delta);
        } else {
            // crp-lint: allow(CRP014) — first-touch counter registration; steady-state bumps take the get_mut arm
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(v) = self.gauges.get_mut(name) {
            *v = value;
        } else {
            self.gauges.insert(name.to_owned(), value);
        }
    }

    /// Records `value` into the named histogram, creating it with the
    /// given bounds on first touch. Later calls ignore `bounds`.
    ///
    /// NaN and negative values are rejected: they would land in the
    /// lowest bucket (or corrupt min/sum) and silently poison every
    /// percentile derived from the histogram. Rejections are counted
    /// under `telemetry.observe.invalid` so bad instrumentation is
    /// visible rather than absorbed.
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], value: f64) {
        if value.is_nan() || value < 0.0 {
            self.counter_add("telemetry.observe.invalid", 1);
            return;
        }
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            // crp-lint: allow(CRP014) — first-touch histogram construction; steady-state records take the get_mut arm
            let mut h = Histogram::new(bounds);
            h.record(value);
            // crp-lint: allow(CRP014) — first-touch histogram registration; steady-state records take the get_mut arm
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Emits a point event at simulated time `time_ms` and bumps the
    /// auto-counter `event.<name>`, which lets consumers cross-check the
    /// JSONL stream against the summary.
    pub fn event(&mut self, time_ms: u64, name: &str, fields: &[(&str, FieldValue)]) {
        let record = Record::Event {
            time_ms,
            name: name.to_owned(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        };
        self.sink.record(&record);
        self.events += 1;
        self.counter_add(&format!("event.{name}"), 1);
    }

    /// Emits the opening edge of a span.
    pub fn span_start(&mut self, time_ms: u64, name: &str) {
        self.sink.record(&Record::SpanStart {
            time_ms,
            name: name.to_owned(),
        });
    }

    /// Emits the closing edge of a span and counts the completed pair.
    pub fn span_end(&mut self, time_ms: u64, start_ms: u64, name: &str) {
        self.sink.record(&Record::SpanEnd {
            time_ms,
            start_ms,
            name: name.to_owned(),
        });
        self.spans += 1;
    }

    /// Flushes the sink and condenses the collected metrics into a
    /// summary for `experiment`.
    pub fn finish(mut self, experiment: &str) -> TelemetrySummary {
        if self.sink.flush().is_err() {
            self.sink_dropped += 1;
        }
        // Records the sink silently shed (encode/IO failures) become a
        // first-class health signal: `telemetry_check` warns on any loss
        // and fails past its threshold.
        self.sink_dropped = self.sink_dropped.saturating_add(self.sink.dropped());
        TelemetrySummary {
            experiment: experiment.to_owned(),
            events_recorded: self.events,
            spans_recorded: self.spans,
            sink_dropped: self.sink_dropped,
            counters: self
                .counters
                .iter()
                .map(|(name, value)| CounterEntry {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, value)| GaugeEntry {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| h.summarize(name))
                .collect(),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

fn collector_slot() -> MutexGuard<'static, Option<Collector>> {
    COLLECTOR
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs a process-global collector writing to `sink`, replacing any
/// previous one (whose pending metrics are discarded). Telemetry calls
/// are no-ops until this runs.
pub fn install(sink: Box<dyn Sink>) {
    let mut slot = collector_slot();
    *slot = Some(Collector::new(sink));
    ENABLED.store(true, Ordering::Release);
}

/// Installs a collector that aggregates metrics but discards records.
pub fn install_metrics_only() {
    install(Box::new(NoopSink));
}

/// Whether a global collector is installed.
///
/// Call sites pay one relaxed atomic load when telemetry is off; guard
/// any argument construction that allocates or formats behind this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tears down the global collector and returns its summary, or `None`
/// if none was installed.
pub fn shutdown(experiment: &str) -> Option<TelemetrySummary> {
    let collector = {
        let mut slot = collector_slot();
        ENABLED.store(false, Ordering::Release);
        slot.take()
    };
    collector.map(|c| c.finish(experiment))
}

/// Adds `delta` to a global monotonic counter. No-op when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    if let Some(c) = collector_slot().as_mut() {
        c.counter_add(name, delta);
    }
}

/// Sets a global gauge. No-op when disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(c) = collector_slot().as_mut() {
        c.gauge_set(name, value);
    }
}

/// Records into a global histogram with [`default_bounds`] (powers of
/// two, suited to latencies and counts). No-op when disabled.
#[inline]
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(c) = collector_slot().as_mut() {
        c.observe_with(name, default_bounds_cached(), value);
    }
}

/// Records into a global histogram with [`unit_bounds`] (twenty buckets
/// over `[0, 1]`, suited to scores and strengths). No-op when disabled.
#[inline]
pub fn observe_unit(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    if let Some(c) = collector_slot().as_mut() {
        c.observe_with(name, unit_bounds_cached(), value);
    }
}

/// Like [`observe`], but keyed with the simulated time so the sample
/// also lands in the live [`timeseries`] store (when one is running)
/// with the current trace as its exemplar. No-op when both layers are
/// disabled.
#[inline]
pub fn observe_at(time_ms: u64, name: &str, value: f64) {
    observe(name, value);
    if timeseries::enabled() {
        timeseries::record(time_ms, name, value);
    }
}

/// Like [`counter_add`], but keyed with the simulated time so the
/// increment also lands in the live [`timeseries`] store (per-window
/// `sum` is then the windowed rate). No-op when both layers are
/// disabled.
#[inline]
pub fn counter_add_at(time_ms: u64, name: &str, delta: u64) {
    counter_add(name, delta);
    if timeseries::enabled() {
        timeseries::bump(time_ms, name, delta);
    }
}

/// Emits a global point event at simulated time `time_ms`. No-op when
/// disabled — but guard field construction with [`enabled`] at the call
/// site to keep the disabled path allocation-free.
#[inline]
pub fn event(time_ms: u64, name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled() {
        return;
    }
    if let Some(c) = collector_slot().as_mut() {
        c.event(time_ms, name, fields);
    }
}

/// Opens a span at simulated time `start_ms` and returns a guard; call
/// [`SpanGuard::end`] with the closing simulated time. A guard dropped
/// without `end` emits nothing further (the opening edge stands alone in
/// the stream).
#[must_use = "call .end(end_ms) to close the span"]
pub fn span(start_ms: u64, name: &'static str) -> SpanGuard {
    if enabled() {
        if let Some(c) = collector_slot().as_mut() {
            c.span_start(start_ms, name);
        }
    }
    SpanGuard { start_ms, name }
}

/// An open span; see [`span`].
pub struct SpanGuard {
    start_ms: u64,
    name: &'static str,
}

impl SpanGuard {
    /// Closes the span at simulated time `end_ms`.
    pub fn end(self, end_ms: u64) {
        if !enabled() {
            return;
        }
        if let Some(c) = collector_slot().as_mut() {
            c.span_end(end_ms, self.start_ms, self.name);
        }
    }

    /// The simulated time the span opened at.
    pub fn start_ms(&self) -> u64 {
        self.start_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_counters_gauges_histograms() {
        let mut c = Collector::new(Box::new(NoopSink));
        c.counter_add("a.calls", 2);
        c.counter_add("a.calls", 3);
        c.counter_add("b.calls", 1);
        c.gauge_set("g", 1.0);
        c.gauge_set("g", 2.5);
        c.observe_with("h", &unit_bounds(), 0.2);
        c.observe_with("h", &unit_bounds(), 0.4);
        let s = c.finish("exp");
        assert_eq!(s.experiment, "exp");
        assert_eq!(s.counter("a.calls"), Some(5));
        assert_eq!(s.counter("b.calls"), Some(1));
        assert_eq!(s.gauge("g"), Some(2.5));
        let h = s.histogram("h").expect("histogram present");
        assert_eq!(h.count, 2);
        assert!((h.mean - 0.3).abs() < 1e-12);
    }

    #[test]
    fn nan_and_negative_observations_are_rejected() {
        let mut c = Collector::new(Box::new(NoopSink));
        c.observe_with("h", &unit_bounds(), f64::NAN);
        c.observe_with("h", &unit_bounds(), -1.0);
        c.observe_with("h", &unit_bounds(), -0.000001);
        c.observe_with("h", &unit_bounds(), 0.5);
        let s = c.finish("exp");
        let h = s.histogram("h").expect("the valid observation landed");
        // Only the valid sample is aggregated: percentiles stay clean.
        assert_eq!(h.count, 1);
        assert!((h.min - 0.5).abs() < 1e-12);
        assert!((h.mean - 0.5).abs() < 1e-12);
        assert!((h.p50 - 0.5).abs() < 1e-12);
        assert_eq!(s.counter("telemetry.observe.invalid"), Some(3));
    }

    #[test]
    fn rejected_observation_does_not_create_a_histogram() {
        let mut c = Collector::new(Box::new(NoopSink));
        c.observe_with("h", &unit_bounds(), f64::NAN);
        let s = c.finish("exp");
        assert!(s.histogram("h").is_none());
        assert_eq!(s.counter("telemetry.observe.invalid"), Some(1));
    }

    #[test]
    fn infinity_still_lands_in_overflow_bucket() {
        // +inf is not rejected: the histogram routes non-finite values to
        // its overflow bucket, excluded from min/max/mean.
        let mut c = Collector::new(Box::new(NoopSink));
        c.observe_with("h", &unit_bounds(), f64::INFINITY);
        c.observe_with("h", &unit_bounds(), 0.25);
        let s = c.finish("exp");
        let h = s.histogram("h").expect("histogram present");
        assert_eq!(h.count, 2, "overflow bucket still counted");
        assert!((h.max - 0.25).abs() < 1e-12, "min/max/mean stay finite");
        assert_eq!(s.counter("telemetry.observe.invalid"), None);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Collector::new(Box::new(NoopSink));
        c.counter_add("x", u64::MAX - 1);
        c.counter_add("x", 5);
        assert_eq!(c.finish("exp").counter("x"), Some(u64::MAX));
    }

    #[test]
    fn events_bump_auto_counters_and_reach_the_sink() {
        let (sink, records) = MemorySink::shared();
        let mut c = Collector::new(Box::new(sink));
        c.event(10, "probe.round", &[("hosts", 3u64.into())]);
        c.event(20, "probe.round", &[("hosts", 4u64.into())]);
        c.event(30, "fault.injected", &[]);
        c.span_start(0, "campaign");
        c.span_end(40, 0, "campaign");
        let s = c.finish("exp");
        assert_eq!(s.events_recorded, 3);
        assert_eq!(s.spans_recorded, 1);
        assert_eq!(s.counter("event.probe.round"), Some(2));
        assert_eq!(s.counter("event.fault.injected"), Some(1));
        // 3 events + 2 span edges reached the sink.
        assert_eq!(records.lock().unwrap().len(), 5);
    }

    #[test]
    fn summary_collections_are_name_sorted() {
        let mut c = Collector::new(Box::new(NoopSink));
        c.counter_add("zeta", 1);
        c.counter_add("alpha", 1);
        c.gauge_set("mid", 0.0);
        c.gauge_set("aaa", 0.0);
        let s = c.finish("exp");
        let counter_names: Vec<&str> = s.counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(counter_names, ["alpha", "zeta"]);
        let gauge_names: Vec<&str> = s.gauges.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(gauge_names, ["aaa", "mid"]);
    }

    #[test]
    fn sink_drop_counts_surface_in_summary() {
        struct LossySink {
            dropped: u64,
        }
        impl Sink for LossySink {
            fn record(&mut self, _record: &Record) {
                self.dropped += 1; // pretend every record failed to encode
            }
            fn label(&self) -> &'static str {
                "lossy"
            }
            fn dropped(&self) -> u64 {
                self.dropped
            }
        }
        let mut c = Collector::new(Box::new(LossySink { dropped: 0 }));
        c.event(1, "e", &[]);
        c.event(2, "e", &[]);
        let s = c.finish("exp");
        assert_eq!(s.sink_dropped, 2, "sink losses surface in the summary");
    }

    #[test]
    fn identical_runs_produce_identical_summaries() {
        let run = || {
            let mut c = Collector::new(Box::new(NoopSink));
            for i in 0..100u64 {
                c.counter_add("calls", 1);
                c.observe_with("lat", &default_bounds(), (i % 7) as f64);
                if i % 10 == 0 {
                    c.event(i, "tick", &[("i", i.into())]);
                }
            }
            c.finish("det")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let ja = serde_json::to_string(&a).expect("serialize");
        let jb = serde_json::to_string(&b).expect("serialize");
        assert_eq!(ja, jb);
    }
}
