//! Per-observation causal tracing with deterministic head sampling.
//!
//! A [`TraceId`] is minted where a redirection is born — the CDN's
//! authoritative answer — and follows the observation through the
//! pipeline: tracker ingest, ratio-map builds, similarity scoring and
//! ranking. The stations don't thread a context parameter through every
//! signature; they attach stages to the process-global *current trace*,
//! which the simulation's single-threaded, deterministic event order
//! makes exact.
//!
//! Sampling is **head-based and deterministic**: whether a trace is kept
//! is a pure function of its id (`mix64(id) % sample_one_in == 0`), never
//! of an RNG, so two runs of the same seed sample the same observations
//! and the exported span trees are byte-identical. Span buffers are
//! bounded (`max_traces`, `max_spans_per_trace`) with dropped counters.
//!
//! Query-time stations (ratio map → similarity → ranking) run long after
//! the observation was recorded. Trackers therefore stamp each
//! observation with the then-current trace id; at query time
//! [`resume`] re-activates those traces and registers them in a
//! *query set*, and [`query_stage`] fans a stage (e.g. `core.ranking`)
//! out to every trace that contributed data to the query — which is what
//! lets a tail-latency exemplar link all the way from the CDN redirection
//! event to the ranking it influenced.
//!
//! When disabled, every hook is a single relaxed atomic load — the hot
//! path pays only that sampling-branch check.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A trace identifier. Always non-zero; 0 is the "no trace" sentinel in
/// raw (`u64`) form.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw id (never 0 for a minted trace).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The canonical textual form: 16 hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Tracing configuration.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Keep one trace in `sample_one_in` (1 = keep every trace).
    pub sample_one_in: u64,
    /// Maximum traces retained per run.
    pub max_traces: usize,
    /// Maximum spans per trace (consecutive same-name stages collapse
    /// into one span with a repeat count, so chains stay readable).
    pub max_spans_per_trace: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_one_in: 4,
            max_traces: 512,
            max_spans_per_trace: 64,
        }
    }
}

/// SplitMix64: cheap, deterministic avalanche — the same mixer family
/// the simulation's noise layer uses, reimplemented here because this
/// crate sits below `crp-netsim` in the dependency order.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mints a deterministic [`TraceId`] from the given parts (typically
/// seed, resolver id, simulated time, customer index). Never returns a
/// zero id.
pub fn mint(parts: &[u64]) -> TraceId {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fraction, arbitrary non-zero start
    for &p in parts {
        acc = mix64(acc ^ p);
    }
    TraceId(if acc == 0 { 1 } else { acc })
}

#[derive(Clone, Debug)]
struct SpanRec {
    time_ms: u64,
    name: &'static str,
    count: u64,
}

#[derive(Clone, Debug)]
struct TraceRec {
    id: u64,
    start_ms: u64,
    spans: Vec<SpanRec>,
    dropped_spans: u64,
}

impl TraceRec {
    fn push(&mut self, time_ms: u64, name: &'static str, max_spans: usize) {
        if let Some(last) = self.spans.last_mut() {
            if last.name == name {
                last.count += 1;
                return;
            }
        }
        if self.spans.len() >= max_spans {
            self.dropped_spans += 1;
            return;
        }
        self.spans.push(SpanRec {
            time_ms,
            name,
            count: 1,
        });
    }
}

/// The in-memory trace store behind the global hooks.
#[derive(Debug)]
pub struct TraceStore {
    config: TraceConfig,
    traces: Vec<TraceRec>,
    index: BTreeMap<u64, usize>,
    minted: u64,
    sampled: u64,
    dropped_traces: u64,
    query_set: Vec<usize>,
    query_time_ms: u64,
}

impl TraceStore {
    fn new(config: TraceConfig) -> Self {
        TraceStore {
            config,
            traces: Vec::new(),
            index: BTreeMap::new(),
            minted: 0,
            sampled: 0,
            dropped_traces: 0,
            query_set: Vec::new(),
            query_time_ms: 0,
        }
    }

    /// Condenses the store into its serializable log form.
    pub fn log(&self) -> TraceLog {
        TraceLog {
            sample_one_in: self.config.sample_one_in,
            minted: self.minted,
            sampled: self.sampled,
            dropped_traces: self.dropped_traces,
            traces: self
                .traces
                .iter()
                .map(|t| TraceTree {
                    id: format!("{:016x}", t.id),
                    start_ms: t.start_ms,
                    dropped_spans: t.dropped_spans,
                    spans: t
                        .spans
                        .iter()
                        .map(|s| SpanNode {
                            time_ms: s.time_ms,
                            name: s.name.to_owned(),
                            count: s.count,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

impl crate::mem::MemFootprint for TraceStore {
    fn mem_footprint(&self) -> usize {
        crate::mem::vec_footprint(&self.traces)
            + self
                .traces
                .iter()
                .map(|t| crate::mem::vec_footprint(&t.spans))
                .sum::<usize>()
            + crate::mem::ordered_map_footprint(
                self.index.len(),
                std::mem::size_of::<u64>() + std::mem::size_of::<usize>(),
            )
            + crate::mem::vec_footprint(&self.query_set)
    }
}

/// Serializable log of every sampled trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    /// The sampling denominator the run used.
    pub sample_one_in: u64,
    /// Traces minted (sampled or not).
    pub minted: u64,
    /// Traces kept by the head sampler.
    pub sampled: u64,
    /// Sampled traces dropped at the `max_traces` cap.
    pub dropped_traces: u64,
    /// The span trees, in mint order.
    pub traces: Vec<TraceTree>,
}

impl TraceLog {
    /// The trace with the given 16-hex-digit id, if sampled.
    pub fn trace(&self, id_hex: &str) -> Option<&TraceTree> {
        self.traces.iter().find(|t| t.id == id_hex)
    }
}

impl crate::mem::MemFootprint for TraceLog {
    fn mem_footprint(&self) -> usize {
        crate::mem::vec_footprint(&self.traces)
            + self
                .traces
                .iter()
                .map(|t| {
                    t.id.capacity()
                        + crate::mem::vec_footprint(&t.spans)
                        + t.spans.iter().map(|s| s.name.capacity()).sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// One sampled trace: the causal chain of an observation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceTree {
    /// Trace id, 16 hex digits.
    pub id: String,
    /// When the root event (the CDN redirection) happened.
    pub start_ms: u64,
    /// Stages dropped at the span cap.
    pub dropped_spans: u64,
    /// Stages in causal order; the first is the root.
    pub spans: Vec<SpanNode>,
}

impl TraceTree {
    /// Whether the chain contains a stage with the given name.
    pub fn reaches(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name == name)
    }
}

/// One stage in a trace (consecutive repeats collapsed).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Simulated time the stage (first) fired.
    pub time_ms: u64,
    /// Stage name, e.g. `core.ranking`.
    pub name: String,
    /// How many consecutive times the stage fired.
    pub count: u64,
}

static TR_ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static TRACES: Mutex<Option<TraceStore>> = Mutex::new(None);

fn trace_slot() -> MutexGuard<'static, Option<TraceStore>> {
    TRACES
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs a process-global trace store, replacing any previous one.
pub fn start(config: TraceConfig) {
    let mut slot = trace_slot();
    *slot = Some(TraceStore::new(config));
    CURRENT.store(0, Ordering::Release);
    TR_ENABLED.store(true, Ordering::Release);
}

/// Whether tracing is live. One relaxed atomic load — this is the entire
/// hot-path cost when tracing is off.
#[inline]
pub fn enabled() -> bool {
    TR_ENABLED.load(Ordering::Relaxed)
}

/// Tears down the global store and returns its log, or `None`.
pub fn finish() -> Option<TraceLog> {
    let store = {
        let mut slot = trace_slot();
        TR_ENABLED.store(false, Ordering::Release);
        CURRENT.store(0, Ordering::Release);
        slot.take()
    };
    store.map(|s| s.log())
}

/// The raw id of the current sampled trace, or 0. Safe to call with
/// tracing disabled (returns 0); used to stamp observations and
/// histogram exemplars.
#[inline]
pub fn current_raw() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Opens a trace at its minting site (the CDN redirection event). The
/// head sampler decides synchronously: a kept trace becomes *current*
/// (stages attach to it; exemplars reference it), an unsampled one
/// clears the current slot. No-op when disabled.
pub fn begin(id: TraceId, time_ms: u64, root: &'static str) {
    if !enabled() {
        return;
    }
    let mut slot = trace_slot();
    let Some(store) = slot.as_mut() else { return };
    store.minted += 1;
    if mix64(id.0) % store.config.sample_one_in.max(1) != 0 {
        CURRENT.store(0, Ordering::Relaxed);
        return;
    }
    store.sampled += 1;
    if store.index.contains_key(&id.0) {
        // Re-minted id (same inputs): keep the existing tree current.
        CURRENT.store(id.0, Ordering::Relaxed);
        return;
    }
    if store.traces.len() >= store.config.max_traces {
        store.dropped_traces += 1;
        CURRENT.store(0, Ordering::Relaxed);
        return;
    }
    let mut spans = Vec::with_capacity(8);
    spans.push(SpanRec {
        time_ms,
        name: root,
        count: 1,
    });
    store.index.insert(id.0, store.traces.len());
    store.traces.push(TraceRec {
        id: id.0,
        start_ms: time_ms,
        spans,
        dropped_spans: 0,
    });
    CURRENT.store(id.0, Ordering::Relaxed);
}

/// Appends a stage to the current trace, if any. No-op when disabled or
/// when no sampled trace is current.
pub fn stage_at(time_ms: u64, name: &'static str) {
    if !enabled() {
        return;
    }
    let raw = CURRENT.load(Ordering::Relaxed);
    if raw == 0 {
        return;
    }
    let mut slot = trace_slot();
    let Some(store) = slot.as_mut() else { return };
    let max = store.config.max_spans_per_trace;
    if let Some(&idx) = store.index.get(&raw) {
        if let Some(t) = store.traces.get_mut(idx) {
            // crp-lint: allow(CRP014) — span append into a buffer capped at max_spans_per_trace, sampled traces only
            t.push(time_ms, name, max);
        }
    }
}

/// Re-activates the trace stamped on stored data (e.g. an observation
/// feeding a ratio-map build): makes it current, appends `name`, and —
/// inside a [`begin_query`] scope — registers it in the query set so
/// later [`query_stage`] calls reach it. No-op for raw id 0, unknown
/// (unsampled) ids, or when disabled.
pub fn resume(raw: u64, time_ms: u64, name: &'static str) {
    if !enabled() || raw == 0 {
        return;
    }
    let mut slot = trace_slot();
    let Some(store) = slot.as_mut() else { return };
    let Some(&idx) = store.index.get(&raw) else {
        return;
    };
    let max = store.config.max_spans_per_trace;
    if let Some(t) = store.traces.get_mut(idx) {
        // crp-lint: allow(CRP014) — span append into a buffer capped at max_spans_per_trace, sampled traces only
        t.push(time_ms, name, max);
    }
    if !store.query_set.contains(&idx) {
        // crp-lint: allow(CRP014) — query set is bounded by the sampled-trace cap and cleared per query scope
        store.query_set.push(idx);
    }
    CURRENT.store(raw, Ordering::Relaxed);
}

/// Opens a query scope at simulated time `time_ms`: clears the query
/// set that subsequent [`resume`] calls populate. No-op when disabled.
pub fn begin_query(time_ms: u64) {
    if !enabled() {
        return;
    }
    let mut slot = trace_slot();
    let Some(store) = slot.as_mut() else { return };
    store.query_set.clear();
    store.query_time_ms = time_ms;
}

/// Fans a stage out to every trace in the current query set — the
/// traces whose observations fed the query — at the query's time.
/// No-op when disabled or outside a query scope.
pub fn query_stage(name: &'static str) {
    if !enabled() {
        return;
    }
    let mut slot = trace_slot();
    let Some(store) = slot.as_mut() else { return };
    let max = store.config.max_spans_per_trace;
    let time = store.query_time_ms;
    for i in 0..store.query_set.len() {
        let Some(&idx) = store.query_set.get(i) else {
            break;
        };
        if let Some(t) = store.traces.get_mut(idx) {
            // crp-lint: allow(CRP014) — span append into a buffer capped at max_spans_per_trace, sampled traces only
            t.push(time, name, max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace store is process-global; like the collector and explain
    // tests, one test function exercises the full lifecycle to avoid
    // cross-test interference.
    #[test]
    fn trace_lifecycle_sampling_and_query_fanout() {
        // Phase 1: disabled — everything is a no-op and current stays 0.
        assert!(!enabled());
        begin(mint(&[1, 2, 3]), 10, "cdn.redirect");
        stage_at(11, "core.tracker.record");
        assert_eq!(current_raw(), 0);
        assert!(finish().is_none());

        // Phase 2: keep-all sampling records full chains.
        start(TraceConfig {
            sample_one_in: 1,
            max_traces: 4,
            max_spans_per_trace: 5,
        });
        let a = mint(&[7, 1]);
        let b = mint(&[7, 2]);
        assert_ne!(a, b);
        begin(a, 100, "cdn.redirect");
        assert_eq!(current_raw(), a.raw());
        stage_at(100, "core.tracker.record");
        stage_at(100, "core.tracker.record"); // collapses into count=2
        begin(b, 200, "cdn.redirect");
        stage_at(200, "core.tracker.record");

        // Query scope: both observations feed it; ranking reaches both.
        begin_query(300);
        resume(a.raw(), 300, "core.ratio_map");
        resume(b.raw(), 300, "core.ratio_map");
        query_stage("core.similarity");
        query_stage("core.ranking");
        resume(0, 300, "core.ratio_map"); // no-op sentinel
        resume(0xDEAD, 300, "core.ratio_map"); // unknown id: no-op
        resume(a.raw(), 310, "core.overflow"); // 6th distinct stage: over the cap

        let log = finish().expect("store was live");
        assert_eq!(log.minted, 2);
        assert_eq!(log.sampled, 2);
        assert_eq!(log.traces.len(), 2);
        let ta = log.trace(&a.to_hex()).expect("trace a sampled");
        assert_eq!(ta.spans[0].name, "cdn.redirect");
        assert_eq!(ta.spans[1].count, 2, "consecutive stages collapse");
        assert!(ta.reaches("core.ratio_map"));
        assert!(ta.reaches("core.similarity"));
        assert!(ta.reaches("core.ranking"));
        assert!(log
            .trace(&b.to_hex())
            .expect("trace b")
            .reaches("core.ranking"));
        // Span cap: 5 spans max, the 6th stage was dropped and counted.
        assert_eq!(ta.spans.len(), 5);
        assert_eq!(ta.dropped_spans, 1);

        // Phase 3: sampling is a pure function of the id — with a large
        // denominator most traces are dropped, deterministically.
        start(TraceConfig {
            sample_one_in: 1_000_000,
            max_traces: 8,
            max_spans_per_trace: 8,
        });
        for i in 0..50u64 {
            begin(mint(&[9, i]), i, "cdn.redirect");
        }
        let log = finish().expect("store was live");
        assert_eq!(log.minted, 50);
        assert_eq!(log.sampled as usize, log.traces.len());
        assert!(log.sampled < 50, "1-in-a-million kept almost nothing");

        // Phase 4: identical runs produce identical serialized logs.
        let run = || {
            start(TraceConfig::default());
            for i in 0..40u64 {
                begin(mint(&[11, i]), i * 10, "cdn.redirect");
                stage_at(i * 10, "core.tracker.record");
            }
            begin_query(500);
            for i in 0..40u64 {
                resume(mint(&[11, i]).raw(), 500, "core.ratio_map");
            }
            query_stage("core.ranking");
            serde_json::to_string(&finish().expect("live")).expect("serialize")
        };
        let x = run();
        let y = run();
        assert_eq!(x, y);
        assert_eq!(current_raw(), 0, "finish clears the current slot");

        // Phase 5: the trace cap drops (and counts) excess sampled traces.
        start(TraceConfig {
            sample_one_in: 1,
            max_traces: 2,
            max_spans_per_trace: 8,
        });
        for i in 0..5u64 {
            begin(mint(&[13, i]), i, "cdn.redirect");
        }
        let log = finish().expect("live");
        assert_eq!(log.traces.len(), 2);
        assert_eq!(log.dropped_traces, 3);
    }

    #[test]
    fn mint_is_deterministic_and_nonzero() {
        assert_eq!(mint(&[1, 2, 3]), mint(&[1, 2, 3]));
        assert_ne!(mint(&[1, 2, 3]), mint(&[1, 2, 4]));
        assert_ne!(mint(&[]).raw(), 0);
        assert_eq!(mint(&[5]).to_hex().len(), 16);
    }
}
