//! Metric primitives: fixed-bucket histograms and bucket presets.
//!
//! Counters and gauges are plain integers/floats held by the collector;
//! histograms carry enough structure (bucket boundaries, counts, value
//! range) to warrant a dedicated type. Everything here is deterministic:
//! identical observation sequences produce identical state, and
//! summaries iterate in name order.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Default bucket upper bounds for [`crate::observe`]: powers of two
/// from 2⁻¹⁰ (~0.001) to 2³⁰ (~10⁹), covering unit-interval scores,
/// millisecond latencies, and simulated-hour durations alike. Values
/// above the last bound land in the overflow bucket.
pub fn default_bounds() -> Vec<f64> {
    (-10..=30).map(|e: i32| (e as f64).exp2()).collect()
}

/// Bucket upper bounds for values confined to `[0, 1]` (similarity
/// scores, mapping strengths): twenty buckets of width 0.05.
pub fn unit_bounds() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

/// Process-wide cached [`default_bounds`]: the bounds only matter on a
/// histogram's first touch, so steady-state observations must not pay
/// for rebuilding the vector.
pub fn default_bounds_cached() -> &'static [f64] {
    static CACHE: OnceLock<Vec<f64>> = OnceLock::new();
    CACHE.get_or_init(default_bounds)
}

/// Process-wide cached [`unit_bounds`]; see [`default_bounds_cached`].
pub fn unit_bounds_cached() -> &'static [f64] {
    static CACHE: OnceLock<Vec<f64>> = OnceLock::new();
    CACHE.get_or_init(unit_bounds)
}

/// A histogram over fixed, ascending bucket boundaries.
///
/// Bucket `i` counts values `v <= bounds[i]` (and greater than the
/// previous bound); values above the last bound land in an implicit
/// overflow bucket. The exact minimum and maximum observed values are
/// tracked so quantile estimates can be clamped to the observed range.
///
/// # Example
///
/// ```
/// use crp_telemetry::metrics::Histogram;
///
/// let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
/// for v in [0.5, 3.0, 4.0, 90.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.5), Some(10.0)); // upper bound of the median's bucket
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    counts: Vec<u64>,
    finite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly ascending"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            finite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket but excluded from the min/max/sum statistics, so
    /// a stray NaN cannot poison the summary.
    pub fn record(&mut self, value: f64) {
        let idx = if value.is_finite() {
            self.finite += 1;
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.bounds.partition_point(|b| *b < value)
        } else {
            self.bounds.len()
        };
        // `idx <= bounds.len()` by construction and `counts` holds
        // `bounds.len() + 1` buckets, so the slot always exists.
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow bucket last (`bounds().len() + 1`
    /// entries).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean of the finite observations, or `None` if there are none.
    pub fn mean(&self) -> Option<f64> {
        (self.finite > 0).then(|| self.sum / self.finite as f64)
    }

    /// Smallest finite observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// The `q`-quantile estimate (`0 < q <= 1`), or `None` if the
    /// histogram is empty.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// rank-`ceil(q·n)` observation, clamped to the observed
    /// `[min, max]` range — so a single-sample histogram reports the
    /// sample itself at every quantile, and a saturated overflow bucket
    /// reports the largest observed value rather than infinity.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        let mut idx = self.counts.len() - 1;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                idx = i;
                break;
            }
        }
        let raw = if idx < self.bounds.len() {
            self.bounds[idx]
        } else {
            // Overflow bucket: no upper bound; fall back to the largest
            // observed value (or the last bound if nothing finite).
            self.max().unwrap_or(*self.bounds.last()?)
        };
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => Some(raw.clamp(lo, hi)),
            _ => Some(raw),
        }
    }

    /// Condenses the histogram into its serializable summary form.
    pub fn summarize(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_owned(),
            count: self.count(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            mean: self.mean().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// The serializable digest of one histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Smallest finite observation (0 when empty).
    pub min: f64,
    /// Largest finite observation (0 when empty).
    pub max: f64,
    /// Mean of finite observations (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let s = h.summarize("x");
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(7.0);
        // The raw bucket bound is 10.0, but clamping to the observed
        // range pins every quantile to the lone sample.
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.0), "q={q}");
        }
        assert_eq!(h.mean(), Some(7.0));
        assert_eq!(h.min(), Some(7.0));
        assert_eq!(h.max(), Some(7.0));
    }

    #[test]
    fn saturated_overflow_bucket_reports_observed_max() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        for _ in 0..5 {
            h.record(1_000.0); // all in the overflow bucket
        }
        assert_eq!(h.bucket_counts(), &[0, 0, 5]);
        assert_eq!(h.quantile(0.5), Some(1_000.0));
        assert_eq!(h.quantile(0.99), Some(1_000.0));
        assert_eq!(h.max(), Some(1_000.0));
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 2.0, 3.0]);
        h.record(1.0); // exactly on a bound -> that bucket
        h.record(1.000001); // just above -> next bucket
        h.record(3.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = Histogram::new(&[1.0, 2.0, 3.0, 4.0]);
        for v in [0.5, 1.5, 2.5, 3.5] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.75), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(3.5)); // clamped to max
    }

    #[test]
    fn non_finite_values_cannot_poison_statistics() {
        let mut h = Histogram::new(&[1.0]);
        h.record(0.5);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(0.5));
        // NaN/inf sit in the overflow bucket.
        assert_eq!(h.bucket_counts(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_rejected() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn zero_quantile_rejected() {
        let mut h = Histogram::new(&[1.0]);
        h.record(0.5);
        let _ = h.quantile(0.0);
    }

    #[test]
    fn preset_bounds_are_valid() {
        // Constructing validates ordering and finiteness.
        let _ = Histogram::new(&default_bounds());
        let _ = Histogram::new(&unit_bounds());
        assert_eq!(unit_bounds().len(), 20);
        assert!((unit_bounds()[19] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = Histogram::new(&unit_bounds());
        for v in [0.1, 0.2, 0.90] {
            h.record(v);
        }
        let s = h.summarize("core.similarity.score");
        let text = serde_json::to_string(&s).expect("serialize summary");
        let back: HistogramSummary = serde_json::from_str(&text).expect("parse summary");
        assert_eq!(back, s);
    }
}
