//! Pluggable destinations for the telemetry record stream.
//!
//! Three sinks cover the pipeline's needs: [`JsonlSink`] writes one JSON
//! line per record for offline analysis, [`MemorySink`] buffers records
//! for assertions in tests, and [`NoopSink`] discards everything (the
//! default when telemetry is enabled only for its metric registers).
//!
//! This module is the **only** place in the workspace where telemetry
//! output touches the filesystem; library crates emit through the
//! global collector and never open files themselves (lint rule CRP006).

use crate::record::Record;
use std::fs;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A destination for telemetry records.
///
/// Implementations must be cheap per call and must not panic: sinks run
/// inside the instrumented hot paths.
pub trait Sink: Send {
    /// Consumes one record.
    fn record(&mut self, record: &Record);

    /// Flushes buffered output.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Short human-readable label for diagnostics.
    fn label(&self) -> &'static str;

    /// Records this sink has silently dropped (encode or I/O failures).
    /// Surfaced into [`crate::TelemetrySummary::sink_dropped`] at
    /// shutdown so lossy runs are visible, not absorbed.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every record.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&mut self, _record: &Record) {}

    fn label(&self) -> &'static str {
        "noop"
    }
}

/// Buffers records in memory behind a shared handle, for tests.
///
/// # Example
///
/// ```
/// use crp_telemetry::sink::{MemorySink, Sink};
/// use crp_telemetry::record::Record;
///
/// let (mut sink, handle) = MemorySink::shared();
/// sink.record(&Record::SpanStart { time_ms: 0, name: "x".into() });
/// assert_eq!(handle.lock().unwrap().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl MemorySink {
    /// Creates a sink plus a handle that stays readable after the sink
    /// is installed into the global collector.
    pub fn shared() -> (MemorySink, Arc<Mutex<Vec<Record>>>) {
        let records = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                records: Arc::clone(&records),
            },
            records,
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, record: &Record) {
        self.records
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            // crp-lint: allow(CRP014) — memory capture sink clones records into its buffer by design; not a serving-path sink
            .push(record.clone());
    }

    fn label(&self) -> &'static str {
        "memory"
    }
}

/// Writes records as JSON Lines to a file, one record per line.
///
/// Encoding or I/O failures never panic; they increment a drop counter
/// that surfaces in the run summary instead, because telemetry must not
/// take down the experiment it observes.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<fs::File>,
    path: PathBuf,
    written: u64,
    dropped: u64,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the directories or the file.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = fs::File::create(path)?;
        Ok(JsonlSink {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            written: 0,
            dropped: 0,
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Records dropped to encoding or I/O errors.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, record: &Record) {
        // crp-lint: allow(CRP014) — line-oriented export sink serializes by design; not a serving-path consumer
        match record.to_json_line() {
            Ok(line) => {
                if writeln!(self.writer, "{line}").is_ok() {
                    self.written += 1;
                } else {
                    self.dropped += 1;
                }
            }
            Err(_) => self.dropped += 1,
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn label(&self) -> &'static str {
        "jsonl"
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn event(t: u64, name: &str) -> Record {
        Record::Event {
            time_ms: t,
            name: name.to_owned(),
            fields: vec![("v".to_owned(), FieldValue::U64(t))],
        }
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let mut s = NoopSink;
        s.record(&event(1, "a"));
        assert!(s.flush().is_ok());
        assert_eq!(s.label(), "noop");
    }

    #[test]
    fn memory_sink_shares_records_with_handle() {
        let (mut sink, handle) = MemorySink::shared();
        sink.record(&event(1, "a"));
        sink.record(&event(2, "b"));
        let records = handle.lock().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].name(), "b");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let dir = std::env::temp_dir().join("crp-telemetry-sink-test");
        let path = dir.join("out.jsonl");
        let mut sink = JsonlSink::create(&path).expect("create sink");
        sink.record(&event(1, "a"));
        sink.record(&event(2, "b"));
        sink.flush().expect("flush");
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.dropped(), 0);
        let text = fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = serde_json::parse(line).expect("valid json");
            assert!(v.field("kind").is_ok());
        }
    }

    #[test]
    fn jsonl_sink_counts_unencodable_records_as_dropped() {
        let dir = std::env::temp_dir().join("crp-telemetry-sink-drop-test");
        let mut sink = JsonlSink::create(&dir.join("out.jsonl")).expect("create sink");
        sink.record(&Record::Event {
            time_ms: 0,
            name: "bad".to_owned(),
            fields: vec![("x".to_owned(), FieldValue::F64(f64::INFINITY))],
        });
        assert_eq!(sink.written(), 0);
        assert_eq!(sink.dropped(), 1);
    }
}
