//! Wall-clock profiling — the *other* half of observability, kept
//! strictly apart from the deterministic SimTime record stream.
//!
//! Everything else in this crate is keyed on simulated time so that
//! enabling telemetry cannot perturb a seeded experiment. That contract
//! deliberately leaves a blind spot: nothing attributes *real* time (or
//! memory) to the hot paths. This module fills the gap with
//! hierarchical wall-clock scopes:
//!
//! - [`profile_scope!`] opens a named scope tied to the enclosing
//!   block; nested scopes form a call tree ("flamegraph-style").
//! - Each tree node aggregates call count, total wall-clock time, self
//!   time (total minus children), and — when the optional
//!   [`CountingAllocator`] is installed as the binary's global
//!   allocator — bytes allocated and allocation counts.
//! - [`finish`] condenses the tree into a serializable [`ProfileNode`]
//!   for `<experiment>_profile.json`.
//!
//! The profiler never writes into the record stream or the metric
//! registers, so the telemetry determinism contract (and the on/off
//! determinism test) is untouched: profile output is wall-clock data by
//! definition and is excluded from any byte-comparison. Like the
//! collector, the whole machinery hides behind one relaxed atomic load
//! when disabled ([`scope`] returns an inert guard).
//!
//! This file is the **only** library code in the workspace allowed to
//! touch `std::time::Instant` (lint rule CRP007; the sanctioned
//! harness crates `crp-bench` and `crp-eval` are the other exceptions).
//!
//! # Example
//!
//! ```
//! use crp_telemetry::{profile, profile_scope};
//!
//! profile::start();
//! {
//!     profile_scope!("outer");
//!     {
//!         profile_scope!("inner");
//!     }
//! }
//! let tree = profile::finish().expect("profiler was started");
//! assert_eq!(tree.children[0].name, "outer");
//! assert_eq!(tree.children[0].children[0].name, "inner");
//! ```

use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------
// Aggregation tree
// ---------------------------------------------------------------------

/// One aggregated node while the profiler is live.
struct NodeData {
    name: &'static str,
    calls: u64,
    total_ns: u64,
    alloc_bytes: u64,
    allocs: u64,
    /// Children by scope name — a `BTreeMap` so the serialized tree
    /// lists children in a stable (name-sorted) order.
    children: BTreeMap<&'static str, usize>,
}

impl NodeData {
    fn new(name: &'static str) -> NodeData {
        NodeData {
            name,
            calls: 0,
            total_ns: 0,
            alloc_bytes: 0,
            allocs: 0,
            children: BTreeMap::new(),
        }
    }
}

/// The aggregation engine behind the global [`scope`] guards.
///
/// Scopes aggregate by *path*: the same scope name under two different
/// parents produces two tree nodes, so self/total time attribute to the
/// actual call structure. The engine is usually driven through the
/// process-global [`start`]/[`scope`]/[`finish`] functions, but tests
/// can drive a standalone `Profiler` directly (with synthetic
/// durations) to stay deterministic and isolated.
pub struct Profiler {
    /// Arena of nodes; index 0 is the root.
    nodes: Vec<NodeData>,
    /// Indices of the currently open scopes, innermost last.
    stack: Vec<usize>,
    started: Instant,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates an empty profiler whose root span starts now.
    pub fn new() -> Profiler {
        Profiler {
            nodes: vec![NodeData::new("root")],
            stack: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Opens a scope named `name` under the innermost open scope (or
    /// the root) and returns its node index for the matching [`exit`].
    ///
    /// [`exit`]: Profiler::exit
    pub fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(0);
        let node = match self.nodes[parent].children.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(NodeData::new(name));
                self.nodes[parent].children.insert(name, idx);
                idx
            }
        };
        self.stack.push(node);
        node
    }

    /// Closes the scope opened as `node`, charging it `elapsed_ns` of
    /// wall-clock time and the given allocation deltas. Unbalanced
    /// exits (a guard outliving inner guards) close the inner scopes
    /// silently — the profiler is best-effort bookkeeping, never a
    /// source of panics.
    pub fn exit(&mut self, node: usize, elapsed_ns: u64, alloc_bytes: u64, allocs: u64) {
        if let Some(open) = self.stack.iter().rposition(|&n| n == node) {
            self.stack.truncate(open);
        }
        if let Some(data) = self.nodes.get_mut(node) {
            data.calls = data.calls.saturating_add(1);
            data.total_ns = data.total_ns.saturating_add(elapsed_ns);
            data.alloc_bytes = data.alloc_bytes.saturating_add(alloc_bytes);
            data.allocs = data.allocs.saturating_add(allocs);
        }
    }

    /// Condenses the aggregation into a serializable tree; the root
    /// covers the profiler's whole lifetime so far.
    pub fn tree(&self) -> ProfileNode {
        let total = duration_ns(self.started.elapsed());
        self.tree_with_root_total(total)
    }

    /// [`tree`], but with an explicit root duration — the deterministic
    /// form used by tests.
    ///
    /// [`tree`]: Profiler::tree
    pub fn tree_with_root_total(&self, root_total_ns: u64) -> ProfileNode {
        let mut root = self.build(0);
        root.calls = 1;
        root.total_ns = root_total_ns;
        let child_ns: u64 = root
            .children
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.total_ns));
        root.self_ns = root_total_ns.saturating_sub(child_ns);
        root
    }

    fn build(&self, idx: usize) -> ProfileNode {
        let data = &self.nodes[idx];
        let children: Vec<ProfileNode> = data
            .children
            .values()
            .map(|&child| self.build(child))
            .collect();
        let child_ns: u64 = children
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.total_ns));
        ProfileNode {
            name: data.name.to_owned(),
            calls: data.calls,
            total_ns: data.total_ns,
            self_ns: data.total_ns.saturating_sub(child_ns),
            alloc_bytes: data.alloc_bytes,
            allocs: data.allocs,
            children,
        }
    }
}

/// One node of the serialized profile tree (flamegraph-style: every
/// node carries its own time plus its children).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Scope name as passed to [`profile_scope!`] (`"root"` at the top).
    pub name: String,
    /// Completed activations of this scope.
    pub calls: u64,
    /// Wall-clock nanoseconds across all activations, children included.
    pub total_ns: u64,
    /// `total_ns` minus the children's `total_ns` (saturating).
    pub self_ns: u64,
    /// Bytes allocated while the scope was open (0 unless the binary
    /// installs [`CountingAllocator`]).
    pub alloc_bytes: u64,
    /// Heap allocations while the scope was open (same caveat).
    pub allocs: u64,
    /// Child scopes, name-sorted.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Total nodes in this subtree, itself included.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProfileNode::node_count)
            .sum::<usize>()
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Process-global profiler
// ---------------------------------------------------------------------

static PROFILING: AtomicBool = AtomicBool::new(false);
/// Bumped by every [`start`]; guards from an earlier session compare
/// their stored epoch and become no-ops instead of corrupting the tree.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static PROFILER: Mutex<Option<Profiler>> = Mutex::new(None);

fn profiler_slot() -> MutexGuard<'static, Option<Profiler>> {
    PROFILER
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs a fresh process-global profiler, replacing (and discarding)
/// any previous one. [`scope`] guards are no-ops until this runs.
pub fn start() {
    let mut slot = profiler_slot();
    EPOCH.fetch_add(1, Ordering::Relaxed);
    *slot = Some(Profiler::new());
    PROFILING.store(true, Ordering::Release);
}

/// Whether a global profiler is installed. One relaxed atomic load —
/// this is the entire disabled-path cost of [`profile_scope!`].
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Tears down the global profiler and returns its aggregated tree, or
/// `None` if none was installed. Scopes still open keep their guards;
/// those guards detect the epoch change and do nothing on drop.
pub fn finish() -> Option<ProfileNode> {
    let profiler = {
        let mut slot = profiler_slot();
        PROFILING.store(false, Ordering::Release);
        slot.take()
    };
    profiler.map(|p| p.tree())
}

/// Opens a wall-clock scope; prefer the [`profile_scope!`] macro.
///
/// When profiling is off this is one atomic load and an inert guard.
#[must_use = "bind the guard to a variable so the scope spans the block"]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !profiling() {
        return ScopeGuard::inert();
    }
    let mut slot = profiler_slot();
    let Some(profiler) = slot.as_mut() else {
        return ScopeGuard::inert();
    };
    let node = profiler.enter(name);
    ScopeGuard {
        node,
        epoch: EPOCH.load(Ordering::Relaxed),
        bytes_at_enter: allocated_bytes(),
        allocs_at_enter: allocation_count(),
        start: Some(Instant::now()),
    }
}

/// An open profile scope; closes (and charges its node) on drop.
pub struct ScopeGuard {
    node: usize,
    epoch: u64,
    bytes_at_enter: u64,
    allocs_at_enter: u64,
    /// `None` marks the inert (profiling-disabled) guard.
    start: Option<Instant>,
}

impl ScopeGuard {
    fn inert() -> ScopeGuard {
        ScopeGuard {
            node: 0,
            epoch: 0,
            bytes_at_enter: 0,
            allocs_at_enter: 0,
            start: None,
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        // Stop the clock before taking the lock so contention is not
        // billed to the scope.
        let Some(start) = self.start else { return };
        let elapsed_ns = duration_ns(start.elapsed());
        if !profiling() {
            return;
        }
        let bytes = allocated_bytes().saturating_sub(self.bytes_at_enter);
        let allocs = allocation_count().saturating_sub(self.allocs_at_enter);
        let mut slot = profiler_slot();
        if EPOCH.load(Ordering::Relaxed) != self.epoch {
            return; // the profiler was restarted under this guard
        }
        if let Some(profiler) = slot.as_mut() {
            profiler.exit(self.node, elapsed_ns, bytes, allocs);
        }
    }
}

/// Opens a named wall-clock profile scope covering the rest of the
/// enclosing block.
///
/// ```
/// # fn expensive() {}
/// fn hot_path() {
///     crp_telemetry::profile_scope!("core.hot_path");
///     expensive();
/// } // scope closes here
/// ```
#[macro_export]
macro_rules! profile_scope {
    ($name:literal) => {
        let _crp_profile_guard = $crate::profile::scope($name);
    };
}

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// A global allocator that counts allocations on top of [`System`].
///
/// Binaries opt in (it cannot be installed at runtime):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: crp_telemetry::profile::CountingAllocator =
///     crp_telemetry::profile::CountingAllocator;
/// ```
///
/// With it installed, every profile scope additionally reports bytes
/// allocated and allocation counts; without it both read as zero. The
/// counters are monotonic totals (deallocations are not subtracted), so
/// scope deltas measure allocation *pressure*, not live heap size.
pub struct CountingAllocator;

// SAFETY: delegates every allocation verbatim to `System`; the only
// addition is relaxed atomic counter bumps, which cannot alter layout
// or aliasing guarantees.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
            crate::mem::note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
            crate::mem::note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        crate::mem::note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let out = System.realloc(ptr, layout, new_size);
        if !out.is_null() {
            let grown = new_size.saturating_sub(layout.size());
            ALLOCATED_BYTES.fetch_add(grown as u64, Ordering::Relaxed);
            ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
            crate::mem::note_realloc(layout.size(), new_size);
        }
        out
    }
}

/// Total bytes allocated so far (0 unless [`CountingAllocator`] is the
/// global allocator).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Total heap allocations so far (same caveat).
pub fn allocation_count() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Shared monotonic clock + peak RSS
// ---------------------------------------------------------------------

/// A monotonic wall-clock stopwatch — the single clock source the
/// harness binaries (`run_all`, `bench_all`) share with the profiler,
/// so the coarse per-experiment durations and the per-scope profile
/// tree are measured on the same basis.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_ns(&self) -> u64 {
        duration_ns(self.started.elapsed())
    }

    /// Seconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Peak resident-set size of this process in bytes, when the platform
/// exposes it (`/proc/self/status` on Linux); `None` elsewhere.
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss_bytes_for_status_path("/proc/self/status")
}

/// Peak RSS of another live process by PID, best-effort (`None` once
/// the process has been reaped, and on non-Linux platforms).
pub fn peak_rss_bytes_for(pid: u32) -> Option<u64> {
    peak_rss_bytes_for_status_path(&format!("/proc/{pid}/status"))
}

fn peak_rss_bytes_for_status_path(path: &str) -> Option<u64> {
    let status = std::fs::read_to_string(path).ok()?;
    parse_vm_hwm_bytes(&status)
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document; the
/// kernel reports kibibytes.
fn parse_vm_hwm_bytes(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib.saturating_mul(1024))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a standalone profiler with synthetic durations — fully
    /// deterministic, no reliance on real elapsed time.
    #[test]
    fn tree_aggregates_calls_totals_and_self_time() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            let outer = p.enter("outer");
            let inner = p.enter("inner");
            p.exit(inner, 10, 64, 2);
            p.exit(outer, 25, 100, 3);
        }
        let tree = p.tree_with_root_total(100);
        assert_eq!(tree.name, "root");
        assert_eq!(tree.calls, 1);
        assert_eq!(tree.total_ns, 100);
        assert_eq!(tree.self_ns, 100 - 75);
        let outer = tree.child("outer").expect("outer recorded");
        assert_eq!(outer.calls, 3);
        assert_eq!(outer.total_ns, 75);
        assert_eq!(outer.self_ns, 75 - 30);
        assert_eq!(outer.alloc_bytes, 300);
        assert_eq!(outer.allocs, 9);
        let inner = outer.child("inner").expect("inner nested under outer");
        assert_eq!(inner.calls, 3);
        assert_eq!(inner.total_ns, 30);
        assert_eq!(inner.self_ns, 30);
        assert_eq!(inner.alloc_bytes, 192);
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn same_name_under_different_parents_gets_distinct_nodes() {
        let mut p = Profiler::new();
        let a = p.enter("a");
        let shared = p.enter("shared");
        p.exit(shared, 5, 0, 0);
        p.exit(a, 10, 0, 0);
        let b = p.enter("b");
        let shared2 = p.enter("shared");
        p.exit(shared2, 7, 0, 0);
        p.exit(b, 9, 0, 0);
        assert_ne!(shared, shared2, "path-sensitive aggregation");
        let tree = p.tree_with_root_total(19);
        let under_a = tree.child("a").and_then(|n| n.child("shared"));
        let under_b = tree.child("b").and_then(|n| n.child("shared"));
        assert_eq!(under_a.map(|n| n.total_ns), Some(5));
        assert_eq!(under_b.map(|n| n.total_ns), Some(7));
    }

    #[test]
    fn repeated_scopes_reuse_their_node() {
        let mut p = Profiler::new();
        for i in 0..5u64 {
            let n = p.enter("hot");
            p.exit(n, i, 0, 0);
        }
        let tree = p.tree_with_root_total(10);
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].calls, 5);
        assert_eq!(tree.children[0].total_ns, 0 + 1 + 2 + 3 + 4);
    }

    #[test]
    fn unbalanced_exit_closes_inner_scopes() {
        let mut p = Profiler::new();
        let outer = p.enter("outer");
        let _inner = p.enter("inner"); // never explicitly exited
        p.exit(outer, 50, 0, 0);
        // The stack is empty again: a new scope lands under the root.
        let next = p.enter("next");
        p.exit(next, 1, 0, 0);
        let tree = p.tree_with_root_total(51);
        assert!(tree.child("next").is_some(), "stack recovered: {tree:?}");
        assert_eq!(tree.child("outer").map(|n| n.calls), Some(1));
        // `inner` exists but recorded no completed call.
        let inner = tree.child("outer").and_then(|n| n.child("inner"));
        assert_eq!(inner.map(|n| n.calls), Some(0));
    }

    #[test]
    fn children_serialize_name_sorted_and_round_trip() {
        let mut p = Profiler::new();
        for name in ["zeta", "alpha", "mid"] {
            // Enter in non-sorted order.
            let n = p.enter(match name {
                "zeta" => "zeta",
                "alpha" => "alpha",
                _ => "mid",
            });
            p.exit(n, 1, 0, 0);
        }
        let tree = p.tree_with_root_total(3);
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        let json = serde_json::to_string(&tree).expect("serialize tree");
        let back: ProfileNode = serde_json::from_str(&json).expect("parse tree");
        assert_eq!(back, tree);
    }

    #[test]
    fn saturation_instead_of_overflow() {
        let mut p = Profiler::new();
        let n = p.enter("x");
        p.exit(n, u64::MAX - 1, u64::MAX, u64::MAX);
        let m = p.enter("x");
        p.exit(m, 5, 1, 1);
        let tree = p.tree_with_root_total(1);
        let x = tree.child("x").expect("node");
        assert_eq!(x.total_ns, u64::MAX);
        assert_eq!(x.alloc_bytes, u64::MAX);
        assert_eq!(x.allocs, u64::MAX);
        // Root self time saturates at zero rather than wrapping.
        assert_eq!(tree.self_ns, 0);
    }

    #[test]
    fn parse_vm_hwm_reads_kernel_format() {
        let status = "Name:\tbench_all\nVmPeak:\t  123456 kB\nVmHWM:\t   20480 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm_bytes(status), Some(20480 * 1024));
        assert_eq!(parse_vm_hwm_bytes("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm_bytes("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    /// One test drives the whole global lifecycle: the profiler is
    /// process-global, so parallel test threads must not share it.
    #[test]
    fn global_lifecycle() {
        assert!(!profiling());
        {
            // Disabled: guards are inert and finish() has nothing.
            let _g = scope("ignored");
        }
        assert!(finish().is_none());

        start();
        assert!(profiling());
        {
            let _outer = scope("outer");
            let _inner = scope("inner");
        }
        let stale = scope("stale"); // left open across a restart
        start(); // restart bumps the epoch
        drop(stale); // must not corrupt the new profiler
        {
            crate::profile_scope!("fresh");
        }
        let tree = finish().expect("profiler installed");
        assert!(!profiling());
        assert!(tree.child("fresh").is_some(), "tree: {tree:?}");
        assert!(
            tree.child("outer").is_none(),
            "pre-restart scopes must not leak into the new tree"
        );
        assert!(finish().is_none(), "finish is one-shot");
    }
}
