//! Deterministic, allocation-bounded time-series store.
//!
//! The summary layer ([`crate::TelemetrySummary`]) answers "what happened
//! over the whole run"; this module answers "what was happening at hour
//! 30". Metrics are aggregated into fixed windows keyed on **simulated
//! time** and held in ring buffers — one ring per retention tier — so
//! memory is bounded by configuration, never by campaign length, and the
//! JSON export of a seeded run is byte-identical across executions.
//!
//! Each window carries count/sum/min/max plus a bucketed histogram over
//! the store-wide bounds, and *exemplars*: the most recent sampled
//! [`crate::trace`] ids that landed in each bucket, so a tail-latency
//! spike in a window links directly to the span trees of the offending
//! observations.
//!
//! Like the collector, the store has a process-global, atomically gated
//! instance: [`start`], [`record`]/[`bump`], [`finish`]. When disabled
//! every call is one relaxed atomic load.

use crate::metrics::default_bounds;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One retention tier: `slots` ring-buffered windows of `window_ms`
/// simulated milliseconds each (retention = `slots × window_ms`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Window width in simulated milliseconds.
    pub window_ms: u64,
    /// Number of windows retained.
    pub slots: usize,
}

/// Configuration of a [`TimeSeriesStore`].
#[derive(Clone, Debug)]
pub struct TimeSeriesConfig {
    /// Retention tiers, coarsest last. Every sample lands in every tier.
    pub tiers: Vec<TierSpec>,
    /// Histogram bucket upper bounds shared by all series.
    pub bounds: Vec<f64>,
    /// Maximum number of distinct series; further names are dropped (and
    /// counted) rather than allocated.
    pub max_series: usize,
    /// Exemplar trace ids retained per bucket per window (latest wins).
    pub exemplars_per_bucket: usize,
}

impl Default for TimeSeriesConfig {
    /// Tiers sized for probe-interval campaigns (the experiments probe
    /// every 10 simulated minutes for up to 36 hours): 1-minute windows
    /// for 2 hours, 10-minute windows for 24 hours, 1-hour windows for
    /// 96 hours.
    fn default() -> Self {
        TimeSeriesConfig {
            tiers: vec![
                TierSpec {
                    window_ms: 60_000,
                    slots: 120,
                },
                TierSpec {
                    window_ms: 600_000,
                    slots: 144,
                },
                TierSpec {
                    window_ms: 3_600_000,
                    slots: 96,
                },
            ],
            bounds: default_bounds(),
            max_series: 128,
            exemplars_per_bucket: 4,
        }
    }
}

/// One aggregated window (or a whole-run rollup when `start_ms` is 0 and
/// `window_ms` covers the run).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Window start, simulated milliseconds.
    pub start_ms: u64,
    /// Samples aggregated.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Per-bucket counts over the store bounds, overflow bucket last.
    pub buckets: Vec<u64>,
    /// `(bucket index, trace id)` exemplars, latest wins per bucket.
    pub exemplars: Vec<(usize, u64)>,
}

impl Window {
    fn empty(n_buckets: usize) -> Self {
        Window {
            start_ms: 0,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            // crp-lint: allow(CRP014) — bucket storage allocated at series/tier first touch only
            buckets: vec![0; n_buckets],
            // crp-lint: allow(CRP014) — const empty vec; nothing is allocated until the first exemplar
            exemplars: Vec::new(),
        }
    }

    fn reset(&mut self, start_ms: u64) {
        self.start_ms = start_ms;
        self.count = 0;
        self.sum = 0.0;
        self.min = 0.0;
        self.max = 0.0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.exemplars.clear();
    }

    fn observe(&mut self, value: f64, bucket: usize, exemplar: u64, max_exemplars: usize) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if let Some(b) = self.buckets.get_mut(bucket) {
            *b += 1;
        }
        if exemplar != 0 && max_exemplars > 0 {
            if let Some(slot) = self.exemplars.iter_mut().find(|(b, _)| *b == bucket) {
                slot.1 = exemplar; // latest wins within a bucket
            } else if self.exemplars.len() < max_exemplars * self.buckets.len() {
                // crp-lint: allow(CRP014) — exemplar append capped at max_exemplars per bucket
                self.exemplars.push((bucket, exemplar));
            }
        }
    }

    /// Mean of the window's samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile estimate against `bounds` (upper bound of the
    /// rank bucket, clamped to the observed range), or `None` when the
    /// window is empty or `q` is outside `(0, 1]`.
    pub fn quantile(&self, bounds: &[f64], q: f64) -> Option<f64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut idx = self.buckets.len().saturating_sub(1);
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                idx = i;
                break;
            }
        }
        let raw = bounds.get(idx).copied().unwrap_or(self.max);
        Some(raw.clamp(self.min, self.max))
    }

    /// Merges `other` into `self` (used for multi-window burn-rate
    /// evaluation and the whole-run rollup).
    pub fn merge(&mut self, other: &Window) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        for &(bucket, id) in &other.exemplars {
            if let Some(slot) = self.exemplars.iter_mut().find(|(b, _)| *b == bucket) {
                slot.1 = id;
            } else {
                self.exemplars.push((bucket, id));
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Tier {
    window_ms: u64,
    slots: Vec<Window>,
}

impl Tier {
    fn new(spec: TierSpec, n_buckets: usize) -> Self {
        Tier {
            window_ms: spec.window_ms.max(1),
            // crp-lint: allow(CRP014) — tier ring allocated once at series first touch; series count capped at max_series
            slots: vec![Window::empty(n_buckets); spec.slots.max(1)],
        }
    }

    /// Returns `false` when the sample is older than the slot currently
    /// occupying its ring position (late arrival past retention).
    fn record(&mut self, time_ms: u64, value: f64, bucket: usize, ex: u64, max_ex: usize) -> bool {
        let start = time_ms - time_ms % self.window_ms;
        let idx = (time_ms / self.window_ms) as usize % self.slots.len();
        let Some(slot) = self.slots.get_mut(idx) else {
            return false;
        };
        if slot.count == 0 && slot.start_ms == 0 {
            slot.reset(start);
        } else if slot.start_ms < start {
            slot.reset(start);
        } else if slot.start_ms > start {
            return false;
        }
        slot.observe(value, bucket, ex, max_ex);
        true
    }

    /// Occupied windows in ascending start order.
    fn windows(&self) -> Vec<&Window> {
        let mut ws: Vec<&Window> = self.slots.iter().filter(|w| w.count > 0).collect();
        ws.sort_by_key(|w| w.start_ms);
        ws
    }
}

/// One metric's timeline: a whole-run rollup plus per-tier rings.
#[derive(Clone, Debug)]
pub struct Series {
    total: Window,
    tiers: Vec<Tier>,
}

impl Series {
    /// The whole-run rollup window (bucket exemplars are latest-wins
    /// across the entire run).
    pub fn total(&self) -> &Window {
        &self.total
    }

    /// Occupied windows of the tier with the given width, ascending.
    pub fn windows(&self, window_ms: u64) -> Vec<&Window> {
        self.tiers
            .iter()
            .find(|t| t.window_ms == window_ms)
            .map(|t| t.windows())
            .unwrap_or_default()
    }

    /// The widths of the retention tiers, in configuration order.
    pub fn tier_widths(&self) -> Vec<u64> {
        self.tiers.iter().map(|t| t.window_ms).collect()
    }
}

/// The store: series by name, with bounded cardinality.
#[derive(Debug)]
pub struct TimeSeriesStore {
    config: TimeSeriesConfig,
    series: BTreeMap<String, Series>,
    late_dropped: u64,
    series_dropped: u64,
}

impl TimeSeriesStore {
    /// Creates an empty store.
    pub fn new(config: TimeSeriesConfig) -> Self {
        TimeSeriesStore {
            config,
            series: BTreeMap::new(),
            late_dropped: 0,
            series_dropped: 0,
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &TimeSeriesConfig {
        &self.config
    }

    /// Records one sample for `name` at simulated time `time_ms`.
    /// `exemplar` is a raw trace id (0 = none). NaN and negative values
    /// are dropped, mirroring the collector's histogram guard.
    pub fn record(&mut self, time_ms: u64, name: &str, value: f64, exemplar: u64) {
        if value.is_nan() || value < 0.0 {
            return;
        }
        let bucket = self.config.bounds.partition_point(|b| *b < value);
        let max_ex = self.config.exemplars_per_bucket;
        let n_buckets = self.config.bounds.len() + 1;
        let series = match self.series.get_mut(name) {
            Some(s) => s,
            None => {
                if self.series.len() >= self.config.max_series {
                    self.series_dropped += 1;
                    return;
                }
                let tiers = self
                    .config
                    .tiers
                    .iter()
                    // crp-lint: allow(CRP014) — first-touch tier construction, capped at max_series
                    .map(|spec| Tier::new(*spec, n_buckets))
                    // crp-lint: allow(CRP014) — first-touch series creation, capped at max_series
                    .collect();
                // crp-lint: allow(CRP014) — first-touch series creation, capped at max_series
                self.series.entry(name.to_owned()).or_insert(Series {
                    total: Window::empty(n_buckets),
                    tiers,
                })
            }
        };
        series.total.observe(value, bucket, exemplar, max_ex);
        for tier in &mut series.tiers {
            if !tier.record(time_ms, value, bucket, exemplar, max_ex) {
                self.late_dropped += 1;
            }
        }
    }

    /// The series for `name`, if any samples were recorded.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Samples dropped because they were older than their ring slot.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Samples dropped because the series cap was reached.
    pub fn series_dropped(&self) -> u64 {
        self.series_dropped
    }

    /// Condenses the store into its serializable export form. Only
    /// occupied windows are exported, ascending by start time, so the
    /// JSON is deterministic for a seeded run.
    pub fn export(&self) -> TimeSeriesExport {
        TimeSeriesExport {
            bounds: self.config.bounds.clone(),
            tiers: self.config.tiers.clone(),
            late_dropped: self.late_dropped,
            series_dropped: self.series_dropped,
            series: self
                .series
                .iter()
                .map(|(name, s)| SeriesExport {
                    name: name.clone(),
                    total: export_window(&s.total),
                    tiers: s
                        .tiers
                        .iter()
                        .map(|t| TierExport {
                            window_ms: t.window_ms,
                            windows: t.windows().into_iter().map(export_window).collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

fn export_window(w: &Window) -> WindowExport {
    WindowExport {
        start_ms: w.start_ms,
        count: w.count,
        sum: w.sum,
        min: w.min,
        max: w.max,
        buckets: w.buckets.clone(),
        exemplars: w
            .exemplars
            .iter()
            .map(|(bucket, id)| ExemplarExport {
                bucket: *bucket,
                trace: format!("{id:016x}"),
            })
            .collect(),
    }
}

/// Serializable form of the whole store.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesExport {
    /// Histogram bucket bounds shared by every window.
    pub bounds: Vec<f64>,
    /// The configured retention tiers.
    pub tiers: Vec<TierSpec>,
    /// Samples dropped as too old for their ring slot.
    pub late_dropped: u64,
    /// Samples dropped past the series cap.
    pub series_dropped: u64,
    /// Per-metric timelines, name-sorted.
    pub series: Vec<SeriesExport>,
}

impl TimeSeriesExport {
    /// The exported series for `name`, if present.
    pub fn series(&self, name: &str) -> Option<&SeriesExport> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Serializable form of one series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesExport {
    /// Metric name.
    pub name: String,
    /// Whole-run rollup.
    pub total: WindowExport,
    /// Per-tier occupied windows, ascending by start.
    pub tiers: Vec<TierExport>,
}

/// Serializable form of one retention tier.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TierExport {
    /// Window width in simulated milliseconds.
    pub window_ms: u64,
    /// Occupied windows, ascending by start.
    pub windows: Vec<WindowExport>,
}

/// Serializable form of one window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowExport {
    /// Window start, simulated milliseconds.
    pub start_ms: u64,
    /// Samples aggregated.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Per-bucket counts, overflow last.
    pub buckets: Vec<u64>,
    /// Bucket exemplars (trace ids as 16-digit hex).
    pub exemplars: Vec<ExemplarExport>,
}

/// One exemplar: a bucket index and the trace id that landed in it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExemplarExport {
    /// Bucket index into the shared bounds (last = overflow).
    pub bucket: usize,
    /// Trace id, 16 hex digits.
    pub trace: String,
}

static TS_ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<Option<TimeSeriesStore>> = Mutex::new(None);

fn store_slot() -> MutexGuard<'static, Option<TimeSeriesStore>> {
    STORE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs a process-global store, replacing any previous one.
pub fn start(config: TimeSeriesConfig) {
    let mut slot = store_slot();
    *slot = Some(TimeSeriesStore::new(config));
    TS_ENABLED.store(true, Ordering::Release);
}

/// Whether the global store is live. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    TS_ENABLED.load(Ordering::Relaxed)
}

/// Tears down the global store and returns it, or `None` if not live.
pub fn finish() -> Option<TimeSeriesStore> {
    let mut slot = store_slot();
    TS_ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// Records a sample into the global store, tagging it with the current
/// trace (if one is active and sampled). No-op when disabled.
#[inline]
pub fn record(time_ms: u64, name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let exemplar = crate::trace::current_raw();
    if let Some(s) = store_slot().as_mut() {
        s.record(time_ms, name, value, exemplar);
    }
}

/// Records a counter increment as a sample of value `delta` — per-window
/// `sum` is then the windowed rate. No-op when disabled.
#[inline]
pub fn bump(time_ms: u64, name: &str, delta: u64) {
    record(time_ms, name, delta as f64);
}

impl crate::mem::MemFootprint for Window {
    fn mem_footprint(&self) -> usize {
        crate::mem::vec_footprint(&self.buckets) + crate::mem::vec_footprint(&self.exemplars)
    }
}

impl crate::mem::MemFootprint for Series {
    fn mem_footprint(&self) -> usize {
        let tiers: usize = self
            .tiers
            .iter()
            .map(|t| {
                std::mem::size_of::<Tier>()
                    + crate::mem::vec_footprint(&t.slots)
                    + t.slots
                        .iter()
                        .map(crate::mem::MemFootprint::mem_footprint)
                        .sum::<usize>()
            })
            .sum();
        self.total.mem_footprint() + tiers
    }
}

impl crate::mem::MemFootprint for TimeSeriesStore {
    fn mem_footprint(&self) -> usize {
        crate::mem::ordered_map_footprint(
            self.series.len(),
            std::mem::size_of::<String>() + std::mem::size_of::<Series>(),
        ) + self
            .series
            .iter()
            .map(|(name, s)| name.capacity() + s.mem_footprint())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TimeSeriesConfig {
        TimeSeriesConfig {
            tiers: vec![
                TierSpec {
                    window_ms: 1_000,
                    slots: 4,
                },
                TierSpec {
                    window_ms: 10_000,
                    slots: 4,
                },
            ],
            bounds: vec![1.0, 10.0, 100.0],
            max_series: 3,
            exemplars_per_bucket: 2,
        }
    }

    #[test]
    fn windows_aggregate_by_sim_time() {
        let mut s = TimeSeriesStore::new(cfg());
        s.record(100, "lat", 0.5, 0);
        s.record(900, "lat", 5.0, 0);
        s.record(1_100, "lat", 50.0, 0);
        let series = s.series("lat").expect("series exists");
        let fine = series.windows(1_000);
        assert_eq!(fine.len(), 2);
        assert_eq!(fine[0].start_ms, 0);
        assert_eq!(fine[0].count, 2);
        assert_eq!(fine[1].start_ms, 1_000);
        assert_eq!(fine[1].count, 1);
        let coarse = series.windows(10_000);
        assert_eq!(coarse.len(), 1);
        assert_eq!(coarse[0].count, 3);
        assert_eq!(series.total().count, 3);
        assert!((series.total().sum - 55.5).abs() < 1e-12);
    }

    #[test]
    fn ring_evicts_old_windows_and_drops_late_samples() {
        let mut s = TimeSeriesStore::new(cfg());
        // Fine tier: 4 slots of 1s → retention 4s.
        for t in 0..8u64 {
            s.record(t * 1_000, "x", 1.0, 0);
        }
        let series = s.series("x").expect("series exists");
        let fine = series.windows(1_000);
        assert_eq!(fine.len(), 4, "ring holds only the last 4 windows");
        assert_eq!(fine[0].start_ms, 4_000);
        assert_eq!(fine[3].start_ms, 7_000);
        // A sample far in the past hits an occupied newer slot → dropped
        // from that tier, but the whole-run rollup still counts it.
        s.record(3_000, "x", 1.0, 0);
        assert_eq!(s.late_dropped(), 1);
        assert_eq!(s.series("x").map(|x| x.total().count), Some(9));
    }

    #[test]
    fn series_cap_is_enforced() {
        let mut s = TimeSeriesStore::new(cfg());
        for name in ["a", "b", "c", "d", "e"] {
            s.record(0, name, 1.0, 0);
        }
        assert_eq!(s.names(), vec!["a", "b", "c"]);
        assert_eq!(s.series_dropped(), 2);
    }

    #[test]
    fn invalid_values_are_dropped() {
        let mut s = TimeSeriesStore::new(cfg());
        s.record(0, "x", f64::NAN, 0);
        s.record(0, "x", -1.0, 0);
        assert!(s.series("x").is_none());
    }

    #[test]
    fn exemplars_latest_wins_per_bucket() {
        let mut s = TimeSeriesStore::new(cfg());
        s.record(0, "lat", 500.0, 7); // overflow bucket
        s.record(10, "lat", 600.0, 9); // same bucket, later trace
        s.record(20, "lat", 0.5, 3); // bucket 0
        let total = s.series("lat").map(|x| x.total().clone()).expect("series");
        assert!(total.exemplars.contains(&(3, 9)), "{:?}", total.exemplars);
        assert!(total.exemplars.contains(&(0, 3)));
        assert_eq!(total.exemplars.len(), 2);
    }

    #[test]
    fn quantiles_walk_buckets_and_clamp() {
        let mut w = Window::empty(4);
        let bounds = [1.0, 10.0, 100.0];
        for v in [0.5, 5.0, 50.0, 50.0] {
            w.observe(v, bounds.partition_point(|b| *b < v), 0, 0);
        }
        assert_eq!(w.quantile(&bounds, 0.25), Some(1.0));
        assert_eq!(w.quantile(&bounds, 1.0), Some(50.0)); // clamped to max
        assert_eq!(Window::empty(4).quantile(&bounds, 0.5), None);
    }

    #[test]
    fn merge_combines_counts_and_exemplars() {
        let bounds = [1.0, 10.0];
        let mut a = Window::empty(3);
        a.observe(0.5, 0, 1, 2);
        let mut b = Window::empty(3);
        b.observe(20.0, 2, 5, 2);
        b.observe(0.7, 0, 8, 2);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.quantile(&bounds, 1.0).unwrap() - 20.0).abs() < 1e-12);
        // b's bucket-0 exemplar overwrote a's (latest wins).
        assert!(a.exemplars.contains(&(0, 8)));
        assert!(a.exemplars.contains(&(2, 5)));
    }

    #[test]
    fn export_is_deterministic() {
        let run = || {
            let mut s = TimeSeriesStore::new(cfg());
            for t in 0..20u64 {
                s.record(t * 700, "lat", (t % 5) as f64, t % 3);
                s.record(t * 700, "rate", 1.0, 0);
            }
            serde_json::to_string(&s.export()).expect("serialize")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn export_round_trips() {
        let mut s = TimeSeriesStore::new(cfg());
        s.record(1_500, "lat", 3.0, 42);
        let exported = s.export();
        let text = serde_json::to_string(&exported).expect("serialize");
        let back: TimeSeriesExport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, exported);
        assert_eq!(back.series("lat").map(|x| x.total.count), Some(1));
        assert_eq!(
            back.series("lat")
                .map(|x| x.total.exemplars[0].trace.clone()),
            Some("000000000000002a".to_owned())
        );
    }
}
