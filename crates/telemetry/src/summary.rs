//! The deterministic, serializable digest of one instrumented run.
//!
//! A [`TelemetrySummary`] is produced when a collector is shut down. All
//! collections are sorted by metric name, so two runs of the same seeded
//! experiment serialize to byte-identical JSON.

use crate::metrics::HistogramSummary;
use serde::{Deserialize, Serialize};

/// One named monotonic counter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter name, dotted-path style (`core.similarity.calls`).
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One named gauge (last value written wins).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Gauge name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Aggregated metrics for one experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Experiment name (usually the eval binary name).
    pub experiment: String,
    /// Total events emitted to the sink.
    pub events_recorded: u64,
    /// Total spans completed (start/end pairs emitted).
    pub spans_recorded: u64,
    /// Records the sink failed to persist (0 for memory/no-op sinks).
    pub sink_dropped: u64,
    /// Counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Histogram digests, sorted by name.
    pub histograms: Vec<HistogramSummary>,
}

impl TelemetrySummary {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram digest by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds `other` into `self`, producing a cross-run roll-up (the
    /// `combined` entry `run_all` writes).
    ///
    /// Semantics per layer:
    /// - `events_recorded`/`spans_recorded`/`sink_dropped` and counters
    ///   add, saturating at `u64::MAX` like live counters do;
    /// - gauges keep last-write-wins: `other`'s value replaces ours;
    /// - histogram digests merge approximately — counts add, min/max
    ///   widen, means combine count-weighted, and percentiles take the
    ///   pairwise max (a conservative upper bound: the true combined
    ///   quantile can never exceed the larger of the two digests').
    ///   Empty digests are identity elements and never distort bounds.
    ///
    /// Collections stay name-sorted, so merging preserves the
    /// byte-stable serialization order.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.events_recorded = self.events_recorded.saturating_add(other.events_recorded);
        self.spans_recorded = self.spans_recorded.saturating_add(other.spans_recorded);
        self.sink_dropped = self.sink_dropped.saturating_add(other.sink_dropped);
        for c in &other.counters {
            if let Some(mine) = self.counters.iter_mut().find(|m| m.name == c.name) {
                mine.value = mine.value.saturating_add(c.value);
            } else {
                self.counters.push(c.clone());
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for g in &other.gauges {
            if let Some(mine) = self.gauges.iter_mut().find(|m| m.name == g.name) {
                mine.value = g.value;
            } else {
                self.gauges.push(g.clone());
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.histograms {
            if let Some(mine) = self.histograms.iter_mut().find(|m| m.name == h.name) {
                merge_histogram(mine, h);
            } else {
                self.histograms.push(h.clone());
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

/// Approximate merge of two digests of the same metric; see
/// [`TelemetrySummary::merge`] for the semantics.
fn merge_histogram(into: &mut HistogramSummary, other: &HistogramSummary) {
    if other.count == 0 {
        return; // an empty digest carries no information
    }
    if into.count == 0 {
        let name = into.name.clone();
        *into = other.clone();
        into.name = name;
        return;
    }
    let total = into.count.saturating_add(other.count);
    into.mean = (into.mean * into.count as f64 + other.mean * other.count as f64) / total as f64;
    into.min = into.min.min(other.min);
    into.max = into.max.max(other.max);
    into.p50 = into.p50.max(other.p50);
    into.p90 = into.p90.max(other.p90);
    into.p99 = into.p99.max(other.p99);
    into.count = total;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySummary {
        TelemetrySummary {
            experiment: "fig9_window_size".to_owned(),
            events_recorded: 3,
            spans_recorded: 1,
            sink_dropped: 0,
            counters: vec![
                CounterEntry {
                    name: "cdn.queries".to_owned(),
                    value: 120,
                },
                CounterEntry {
                    name: "core.similarity.calls".to_owned(),
                    value: 900,
                },
            ],
            gauges: vec![GaugeEntry {
                name: "core.smf.clusters".to_owned(),
                value: 4.0,
            }],
            histograms: Vec::new(),
        }
    }

    #[test]
    fn lookups_find_entries_by_name() {
        let s = sample();
        assert_eq!(s.counter("cdn.queries"), Some(120));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("core.smf.clusters"), Some(4.0));
        assert_eq!(s.gauge("missing"), None);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample();
        let text = serde_json::to_string(&s).expect("serialize");
        let back: TelemetrySummary = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, s);
    }

    fn digest(name: &str, count: u64, min: f64, max: f64, mean: f64, p50: f64) -> HistogramSummary {
        HistogramSummary {
            name: name.to_owned(),
            count,
            min,
            max,
            mean,
            p50,
            p90: p50,
            p99: p50,
        }
    }

    #[test]
    fn merge_adds_counters_and_keeps_name_order() {
        let mut a = sample();
        let mut b = sample();
        b.counters.push(CounterEntry {
            name: "aaa.first".to_owned(),
            value: 7,
        });
        b.gauges[0].value = 9.0;
        a.merge(&b);
        assert_eq!(a.events_recorded, 6);
        assert_eq!(a.spans_recorded, 2);
        assert_eq!(a.counter("cdn.queries"), Some(240));
        assert_eq!(a.counter("core.similarity.calls"), Some(1800));
        assert_eq!(a.counter("aaa.first"), Some(7));
        // Gauges are last-write-wins.
        assert_eq!(a.gauge("core.smf.clusters"), Some(9.0));
        let names: Vec<&str> = a.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merge must keep counters name-sorted");
    }

    #[test]
    fn merge_saturates_counters_at_u64_max() {
        let mut a = sample();
        a.counters[0].value = u64::MAX - 10;
        a.events_recorded = u64::MAX;
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("cdn.queries"), Some(u64::MAX));
        assert_eq!(a.events_recorded, u64::MAX);
    }

    #[test]
    fn merge_histograms_combines_counts_bounds_and_means() {
        let mut a = sample();
        a.histograms.push(digest("lat", 10, 1.0, 9.0, 4.0, 5.0));
        let mut b = sample();
        b.histograms.push(digest("lat", 30, 0.5, 20.0, 8.0, 7.0));
        a.merge(&b);
        let h = a.histogram("lat").expect("merged digest");
        assert_eq!(h.count, 40);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 20.0);
        // Count-weighted mean: (10*4 + 30*8) / 40 = 7.
        assert!((h.mean - 7.0).abs() < 1e-12);
        // Percentiles are conservative pairwise maxima.
        assert_eq!(h.p50, 7.0);
    }

    #[test]
    fn merge_treats_empty_histograms_as_identity() {
        // Empty digests report min/max/mean 0 — blindly merging those
        // would corrupt the populated side's bounds.
        let mut a = sample();
        a.histograms.push(digest("lat", 5, 2.0, 6.0, 4.0, 4.0));
        let mut b = sample();
        b.histograms.push(digest("lat", 0, 0.0, 0.0, 0.0, 0.0));
        a.merge(&b);
        let h = a.histogram("lat").expect("digest kept");
        assert_eq!((h.count, h.min, h.max), (5, 2.0, 6.0));

        // And the mirror image: empty absorbs populated wholesale.
        let mut c = sample();
        c.histograms.push(digest("lat", 0, 0.0, 0.0, 0.0, 0.0));
        let mut d = sample();
        d.histograms.push(digest("lat", 5, 2.0, 6.0, 4.0, 4.0));
        c.merge(&d);
        let h = c.histogram("lat").expect("digest adopted");
        assert_eq!((h.count, h.min, h.max), (5, 2.0, 6.0));
        assert_eq!(h.name, "lat");
    }

    #[test]
    fn merge_single_bucket_percentiles_stay_within_range() {
        // A one-observation digest has min == max == mean == p50; after
        // merging, every percentile must stay within [min, max].
        let mut a = sample();
        a.histograms.push(digest("one", 1, 3.0, 3.0, 3.0, 3.0));
        let mut b = sample();
        b.histograms.push(digest("one", 1, 5.0, 5.0, 5.0, 5.0));
        a.merge(&b);
        let h = a.histogram("one").expect("digest");
        assert_eq!(h.count, 2);
        for q in [h.p50, h.p90, h.p99] {
            assert!(q >= h.min && q <= h.max, "quantile {q} outside bounds");
        }
        assert!((h.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_disjoint_histograms_keeps_both_sorted() {
        let mut a = sample();
        a.histograms.push(digest("zeta", 1, 1.0, 1.0, 1.0, 1.0));
        let mut b = sample();
        b.histograms.push(digest("alpha", 1, 2.0, 2.0, 2.0, 2.0));
        a.merge(&b);
        let names: Vec<&str> = a.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn merged_summary_round_trips_through_json() {
        let mut a = sample();
        a.histograms.push(digest("lat", 3, 1.0, 2.0, 1.5, 1.5));
        let b = sample();
        a.merge(&b);
        let text = serde_json::to_string(&a).expect("serialize");
        let back: TelemetrySummary = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, a);
    }
}
