//! The deterministic, serializable digest of one instrumented run.
//!
//! A [`TelemetrySummary`] is produced when a collector is shut down. All
//! collections are sorted by metric name, so two runs of the same seeded
//! experiment serialize to byte-identical JSON.

use crate::metrics::HistogramSummary;
use serde::{Deserialize, Serialize};

/// One named monotonic counter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter name, dotted-path style (`core.similarity.calls`).
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One named gauge (last value written wins).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Gauge name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Aggregated metrics for one experiment run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Experiment name (usually the eval binary name).
    pub experiment: String,
    /// Total events emitted to the sink.
    pub events_recorded: u64,
    /// Total spans completed (start/end pairs emitted).
    pub spans_recorded: u64,
    /// Records the sink failed to persist (0 for memory/no-op sinks).
    pub sink_dropped: u64,
    /// Counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Histogram digests, sorted by name.
    pub histograms: Vec<HistogramSummary>,
}

impl TelemetrySummary {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram digest by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySummary {
        TelemetrySummary {
            experiment: "fig9_window_size".to_owned(),
            events_recorded: 3,
            spans_recorded: 1,
            sink_dropped: 0,
            counters: vec![
                CounterEntry {
                    name: "cdn.queries".to_owned(),
                    value: 120,
                },
                CounterEntry {
                    name: "core.similarity.calls".to_owned(),
                    value: 900,
                },
            ],
            gauges: vec![GaugeEntry {
                name: "core.smf.clusters".to_owned(),
                value: 4.0,
            }],
            histograms: Vec::new(),
        }
    }

    #[test]
    fn lookups_find_entries_by_name() {
        let s = sample();
        assert_eq!(s.counter("cdn.queries"), Some(120));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("core.smf.clusters"), Some(4.0));
        assert_eq!(s.gauge("missing"), None);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample();
        let text = serde_json::to_string(&s).expect("serialize");
        let back: TelemetrySummary = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, s);
    }
}
