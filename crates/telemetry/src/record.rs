//! The structured records that flow into a [`crate::sink::Sink`].
//!
//! Records are keyed exclusively by **simulated time** in milliseconds
//! (`crp_netsim::SimTime::as_millis`); wall-clock time never appears, so
//! two runs of the same seeded experiment emit byte-identical streams.
//! The telemetry crate stores the raw `u64` rather than `SimTime` itself
//! to stay dependency-free — `crp-netsim` is itself an instrumented
//! crate and must be able to depend on this one.

use serde::{Serialize, Value};
use std::fmt;

/// A single structured field on an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// String field.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl Serialize for FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => v.to_value(),
            FieldValue::I64(v) => v.to_value(),
            FieldValue::F64(v) => v.to_value(),
            FieldValue::Str(v) => v.to_value(),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// One record in the telemetry stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A point event at a simulated instant.
    Event {
        /// Simulated time in milliseconds.
        time_ms: u64,
        /// Event name, dotted-path style (`probe.round`).
        name: String,
        /// Structured payload, in insertion order.
        fields: Vec<(String, FieldValue)>,
    },
    /// The opening edge of a span.
    SpanStart {
        /// Simulated start time in milliseconds.
        time_ms: u64,
        /// Span name.
        name: String,
    },
    /// The closing edge of a span.
    SpanEnd {
        /// Simulated end time in milliseconds.
        time_ms: u64,
        /// Simulated start time, repeated so each line is
        /// self-contained.
        start_ms: u64,
        /// Span name.
        name: String,
    },
}

impl Record {
    /// The record's simulated timestamp in milliseconds.
    pub fn time_ms(&self) -> u64 {
        match self {
            Record::Event { time_ms, .. }
            | Record::SpanStart { time_ms, .. }
            | Record::SpanEnd { time_ms, .. } => *time_ms,
        }
    }

    /// The record's name.
    pub fn name(&self) -> &str {
        match self {
            Record::Event { name, .. }
            | Record::SpanStart { name, .. }
            | Record::SpanEnd { name, .. } => name,
        }
    }

    /// Encodes the record as one line of JSON (no trailing newline).
    ///
    /// The shape is stable: `kind` is `"event"`, `"span_start"`, or
    /// `"span_end"`; `t_ms` is the simulated timestamp; events carry a
    /// `fields` object, span ends a `start_ms`.
    ///
    /// # Errors
    ///
    /// Returns an error if a float field is non-finite.
    pub fn to_json_line(&self) -> Result<String, serde::Error> {
        let value = match self {
            Record::Event {
                time_ms,
                name,
                fields,
            } => Value::Object(vec![
                ("kind".to_owned(), Value::String("event".to_owned())),
                ("t_ms".to_owned(), time_ms.to_value()),
                ("name".to_owned(), Value::String(name.clone())),
                (
                    "fields".to_owned(),
                    Value::Object(
                        fields
                            .iter()
                            .map(|(k, v)| (k.clone(), v.to_value()))
                            .collect(),
                    ),
                ),
            ]),
            Record::SpanStart { time_ms, name } => Value::Object(vec![
                ("kind".to_owned(), Value::String("span_start".to_owned())),
                ("t_ms".to_owned(), time_ms.to_value()),
                ("name".to_owned(), Value::String(name.clone())),
            ]),
            Record::SpanEnd {
                time_ms,
                start_ms,
                name,
            } => Value::Object(vec![
                ("kind".to_owned(), Value::String("span_end".to_owned())),
                ("t_ms".to_owned(), time_ms.to_value()),
                ("start_ms".to_owned(), start_ms.to_value()),
                ("name".to_owned(), Value::String(name.clone())),
            ]),
        };
        serde_json::to_string(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_encodes_stable_json() {
        let r = Record::Event {
            time_ms: 600_000,
            name: "probe.round".to_owned(),
            fields: vec![
                ("hosts".to_owned(), FieldValue::U64(12)),
                ("window".to_owned(), FieldValue::Str("10 probes".to_owned())),
            ],
        };
        let line = r.to_json_line().expect("encode");
        assert_eq!(
            line,
            r#"{"kind":"event","t_ms":600000,"name":"probe.round","fields":{"hosts":12,"window":"10 probes"}}"#
        );
    }

    #[test]
    fn span_edges_encode_kind_and_times() {
        let start = Record::SpanStart {
            time_ms: 5,
            name: "campaign".to_owned(),
        };
        let end = Record::SpanEnd {
            time_ms: 11,
            start_ms: 5,
            name: "campaign".to_owned(),
        };
        assert!(start.to_json_line().expect("encode").contains("span_start"));
        let end_line = end.to_json_line().expect("encode");
        assert!(end_line.contains("span_end"));
        assert!(end_line.contains("\"start_ms\":5"));
        assert_eq!(end.time_ms(), 11);
        assert_eq!(end.name(), "campaign");
    }

    #[test]
    fn non_finite_field_is_an_encode_error() {
        let r = Record::Event {
            time_ms: 0,
            name: "bad".to_owned(),
            fields: vec![("x".to_owned(), FieldValue::F64(f64::NAN))],
        };
        assert!(r.to_json_line().is_err());
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5f64), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_owned()));
        assert_eq!(FieldValue::U64(7).to_string(), "7");
    }
}
