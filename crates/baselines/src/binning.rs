//! Landmark binning (Ratnasamy et al., INFOCOM 2002).
//!
//! The paper positions CRP directly against this scheme: "Our focus is
//! instead on supporting a relative network positioning system as that
//! proposed by Ratnasamy et al., but without requiring landmark
//! selection or additional measurements." Binning is the original
//! relative-positioning technique: every node measures its RTT to a
//! small fixed set of landmarks, orders the landmarks by latency, and
//! annotates each with a coarse latency level; nodes with equal bins are
//! deemed close. It needs landmark infrastructure and O(#landmarks)
//! probes per node — exactly the costs CRP eliminates.

use crp_core::Clustering;
use crp_netsim::{HostId, Network, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Latency-level boundaries in milliseconds (the INFOCOM paper's
/// three-level scheme).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BinningConfig {
    /// Upper bounds of each latency level; RTTs beyond the last bound
    /// fall in the final level.
    pub level_bounds_ms: Vec<f64>,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            // The canonical 3-level split used in the binning paper.
            level_bounds_ms: vec![100.0, 200.0],
        }
    }
}

impl BinningConfig {
    fn validate(&self) {
        assert!(
            !self.level_bounds_ms.is_empty(),
            "need at least one level bound"
        );
        assert!(
            self.level_bounds_ms.windows(2).all(|w| w[0] < w[1]),
            "level bounds must increase"
        );
    }

    fn level_of(&self, ms: f64) -> u8 {
        self.level_bounds_ms
            .iter()
            .position(|b| ms <= *b)
            .unwrap_or(self.level_bounds_ms.len()) as u8
    }
}

/// A node's bin: the landmark indices ordered by increasing RTT, each
/// annotated with its latency level.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bin {
    ordered_landmarks: Vec<(u8, u8)>, // (landmark index, latency level)
}

/// Computes the bin of `node` against `landmarks` at time `t` — this
/// costs one direct RTT measurement per landmark, the probing bill CRP
/// never pays.
pub fn bin_of(
    net: &Network,
    node: HostId,
    landmarks: &[HostId],
    cfg: &BinningConfig,
    t: SimTime,
) -> Bin {
    cfg.validate();
    assert!(!landmarks.is_empty(), "need landmarks");
    assert!(landmarks.len() <= u8::MAX as usize, "too many landmarks");
    let mut measured: Vec<(u8, f64)> = landmarks
        .iter()
        .enumerate()
        .map(|(i, &l)| (i as u8, net.rtt(node, l, t).millis()))
        .collect();
    measured.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    Bin {
        ordered_landmarks: measured
            .into_iter()
            .map(|(i, ms)| (i, cfg.level_of(ms)))
            .collect(),
    }
}

/// Clusters `nodes` by identical bins — the binning paper's grouping
/// rule. Returns a partition in the same shape as CRP's and ASN's
/// clusterings so the quality metrics apply unchanged.
pub fn binning_clustering(
    net: &Network,
    nodes: &[HostId],
    landmarks: &[HostId],
    cfg: &BinningConfig,
    t: SimTime,
) -> Clustering<HostId> {
    let mut groups: BTreeMap<Bin, Vec<HostId>> = BTreeMap::new();
    for &n in nodes {
        groups
            .entry(bin_of(net, n, landmarks, cfg, t))
            .or_default()
            .push(n);
    }
    Clustering::from_groups(groups.into_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn world() -> (Network, Vec<HostId>, Vec<HostId>) {
        let mut net = NetworkBuilder::new(91)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(5)
            .build();
        let landmarks = net.add_population(&PopulationSpec::planetlab(8));
        let nodes = net.add_population(&PopulationSpec::dns_servers(60));
        (net, landmarks, nodes)
    }

    #[test]
    fn bins_are_deterministic_and_complete() {
        let (net, landmarks, nodes) = world();
        let cfg = BinningConfig::default();
        let t = SimTime::from_mins(5);
        let b1 = bin_of(&net, nodes[0], &landmarks, &cfg, t);
        let b2 = bin_of(&net, nodes[0], &landmarks, &cfg, t);
        assert_eq!(b1, b2);
        assert_eq!(b1.ordered_landmarks.len(), landmarks.len());
    }

    #[test]
    fn clustering_partitions_all_nodes() {
        let (net, landmarks, nodes) = world();
        let clustering = binning_clustering(
            &net,
            &nodes,
            &landmarks,
            &BinningConfig::default(),
            SimTime::ZERO,
        );
        assert_eq!(clustering.total_nodes(), nodes.len());
    }

    #[test]
    fn same_bin_nodes_are_closer_than_average() {
        let (net, landmarks, nodes) = world();
        let clustering = binning_clustering(
            &net,
            &nodes,
            &landmarks,
            &BinningConfig::default(),
            SimTime::ZERO,
        );
        let mut intra = Vec::new();
        for c in clustering.multi_clusters() {
            let ms = c.members();
            for (i, a) in ms.iter().enumerate() {
                for b in &ms[i + 1..] {
                    intra.push(net.baseline_rtt(*a, *b).millis());
                }
            }
        }
        if intra.is_empty() {
            return; // binning found no multi-node groups at this scale
        }
        let mut all = Vec::new();
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                all.push(net.baseline_rtt(*a, *b).millis());
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) < mean(&all),
            "binning groups should be closer than random: {:.0} vs {:.0}",
            mean(&intra),
            mean(&all)
        );
    }

    #[test]
    fn level_boundaries_are_inclusive_upper() {
        let cfg = BinningConfig::default();
        assert_eq!(cfg.level_of(50.0), 0);
        assert_eq!(cfg.level_of(100.0), 0);
        assert_eq!(cfg.level_of(150.0), 1);
        assert_eq!(cfg.level_of(500.0), 2);
    }

    #[test]
    #[should_panic(expected = "level bounds must increase")]
    fn bad_bounds_rejected() {
        let (net, landmarks, nodes) = world();
        let cfg = BinningConfig {
            level_bounds_ms: vec![200.0, 100.0],
        };
        let _ = bin_of(&net, nodes[0], &landmarks, &cfg, SimTime::ZERO);
    }
}
