//! Vivaldi network coordinates (Dabek et al., SIGCOMM 2004).
//!
//! Vivaldi embeds hosts in a low-dimensional Euclidean space with a
//! per-node *height* (modeling access-link delay) by simulating a mass–
//! spring system: each RTT sample between two nodes pulls or pushes
//! their coordinates so that coordinate distance tracks measured RTT.
//! It is the canonical decentralized coordinate system the paper's
//! related work discusses, and serves here as the coordinate-based
//! contrast to both CRP and Meridian in the ablation benches.

use crp_netsim::{noise, HostId, Network, Rtt, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Vivaldi tuning parameters (the paper's recommended constants).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VivaldiConfig {
    /// Coordinate dimensionality (2–3 suffices per the Vivaldi paper).
    pub dimensions: usize,
    /// Adaptive-timestep gain `c_c`.
    pub cc: f64,
    /// Error-damping gain `c_e`.
    pub ce: f64,
    /// Samples each node takes per round.
    pub samples_per_round: usize,
    /// Seed for neighbor selection.
    pub seed: u64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        VivaldiConfig {
            dimensions: 3,
            cc: 0.25,
            ce: 0.25,
            samples_per_round: 8,
            seed: 0,
        }
    }
}

impl VivaldiConfig {
    fn validate(&self) {
        assert!(self.dimensions > 0, "need at least one dimension");
        assert!(self.cc > 0.0 && self.cc <= 1.0, "cc must be in (0, 1]");
        assert!(self.ce > 0.0 && self.ce <= 1.0, "ce must be in (0, 1]");
        assert!(self.samples_per_round > 0, "need samples per round");
    }
}

#[derive(Clone, Debug)]
struct Coord {
    v: Vec<f64>,
    height: f64,
    error: f64,
}

/// A Vivaldi coordinate system over a set of hosts.
///
/// # Example
///
/// ```
/// use crp_baselines::{Vivaldi, VivaldiConfig};
/// use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
///
/// let mut net = NetworkBuilder::new(2).build();
/// let hosts = net.add_population(&PopulationSpec::planetlab(20));
/// let mut vivaldi = Vivaldi::new(&hosts, VivaldiConfig::default());
/// vivaldi.run_rounds(&net, 20, SimTime::ZERO);
/// let est = vivaldi.estimate(hosts[0], hosts[1]).unwrap();
/// assert!(est.millis() >= 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Vivaldi {
    cfg: VivaldiConfig,
    coords: HashMap<HostId, Coord>,
    members: Vec<HostId>,
    rounds_run: u64,
    samples_taken: u64,
}

impl Vivaldi {
    /// Creates a system with all hosts at the origin (the canonical
    /// Vivaldi start) with maximal error estimates.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty or the config is invalid.
    pub fn new(hosts: &[HostId], cfg: VivaldiConfig) -> Self {
        cfg.validate();
        assert!(!hosts.is_empty(), "vivaldi needs hosts");
        let coords = hosts
            .iter()
            .map(|h| {
                (
                    *h,
                    Coord {
                        v: vec![0.0; cfg.dimensions],
                        height: 0.0,
                        error: 1.0,
                    },
                )
            })
            .collect();
        Vivaldi {
            cfg,
            coords,
            members: hosts.to_vec(),
            rounds_run: 0,
            samples_taken: 0,
        }
    }

    /// Runs `rounds` update rounds: every node samples RTT to a few
    /// random peers at time `t` and adjusts its coordinate.
    pub fn run_rounds(&mut self, net: &Network, rounds: usize, t: SimTime) {
        for _ in 0..rounds {
            let round = self.rounds_run;
            for i in 0..self.members.len() {
                for s in 0..self.cfg.samples_per_round {
                    let j = (noise::mix(&[self.cfg.seed, 0x51, round, i as u64, s as u64])
                        % self.members.len() as u64) as usize;
                    if i == j {
                        continue;
                    }
                    let a = self.members[i];
                    let b = self.members[j];
                    let rtt = net.rtt(a, b, t);
                    self.samples_taken += 1;
                    self.update(a, b, rtt);
                }
            }
            self.rounds_run += 1;
        }
    }

    /// Applies one Vivaldi update at node `a` from a measured `rtt` to
    /// node `b` (using `b`'s current coordinate and error).
    ///
    /// # Panics
    ///
    /// Panics if either host was not registered at construction.
    pub fn update(&mut self, a: HostId, b: HostId, rtt: Rtt) {
        let cb = self.coords[&b].clone();
        let ca = self.coords.get_mut(&a).expect("host registered"); // crp-lint: allow(CRP001) — documented # Panics contract: hosts must be registered
        let dist = coord_distance(&ca.v, ca.height, &cb.v, cb.height);
        let rtt_ms = rtt.millis().max(0.1);
        // Sample weight balances local vs remote confidence.
        let w = ca.error / (ca.error + cb.error).max(1e-9);
        let rel_err = (dist - rtt_ms).abs() / rtt_ms;
        // Update the moving error estimate.
        ca.error = (rel_err * self.cfg.ce * w + ca.error * (1.0 - self.cfg.ce * w)).min(2.5);
        // Move along the error gradient.
        let delta = self.cfg.cc * w;
        let force = delta * (rtt_ms - dist);
        let (mut dir, dir_norm) = direction(&ca.v, &cb.v);
        if dir_norm < 1e-9 {
            // Coincident coordinates: kick in a deterministic direction.
            for (d, x) in dir.iter_mut().enumerate() {
                *x = if (a.key() + d as u64).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
            }
            normalize(&mut dir);
        }
        for (x, d) in ca.v.iter_mut().zip(&dir) {
            *x += force * d;
        }
        ca.height = (ca.height + force * 0.1).max(0.0);
    }

    /// The estimated RTT between two registered hosts, or `None` if
    /// either is unknown.
    pub fn estimate(&self, a: HostId, b: HostId) -> Option<Rtt> {
        let ca = self.coords.get(&a)?;
        let cb = self.coords.get(&b)?;
        Some(Rtt::from_millis(
            coord_distance(&ca.v, ca.height, &cb.v, cb.height).max(0.0),
        ))
    }

    /// The node's current error estimate (1.0 = untrained).
    pub fn error_of(&self, host: HostId) -> Option<f64> {
        self.coords.get(&host).map(|c| c.error)
    }

    /// Median relative estimation error against true RTTs at time `t` —
    /// the standard Vivaldi accuracy figure.
    pub fn median_relative_error(&self, net: &Network, t: SimTime) -> f64 {
        let mut errs = Vec::new();
        for (i, &a) in self.members.iter().enumerate() {
            for &b in &self.members[i + 1..] {
                let truth = net.rtt(a, b, t).millis();
                let est = self.estimate(a, b).expect("members registered").millis(); // crp-lint: allow(CRP001) — members are registered at construction
                errs.push((est - truth).abs() / truth.max(0.1));
            }
        }
        errs.sort_by(f64::total_cmp);
        if errs.is_empty() {
            0.0
        } else {
            errs[errs.len() / 2]
        }
    }

    /// Total RTT samples consumed so far (Vivaldi's probing cost).
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }
}

fn coord_distance(a: &[f64], ha: f64, b: &[f64], hb: f64) -> f64 {
    let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    // Parenthesized so the result is bit-identical under argument swap.
    sq.sqrt() + (ha + hb)
}

fn direction(from: &[f64], to: &[f64]) -> (Vec<f64>, f64) {
    let mut d: Vec<f64> = from.iter().zip(to).map(|(x, y)| x - y).collect();
    let norm = d.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-9 {
        for x in &mut d {
            *x /= norm;
        }
    }
    (d, norm)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
    for x in v {
        *x /= norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{LatencyConfig, NetworkBuilder, PopulationSpec};

    fn setup(n: usize) -> (Network, Vec<HostId>) {
        let mut net = NetworkBuilder::new(23)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(5)
            .latency(LatencyConfig::static_network())
            .build();
        let hosts = net.add_population(&PopulationSpec::planetlab(n));
        (net, hosts)
    }

    #[test]
    fn training_reduces_error() {
        let (net, hosts) = setup(30);
        let mut v = Vivaldi::new(&hosts, VivaldiConfig::default());
        let before = v.median_relative_error(&net, SimTime::ZERO);
        v.run_rounds(&net, 40, SimTime::ZERO);
        let after = v.median_relative_error(&net, SimTime::ZERO);
        assert!(
            after < before * 0.6,
            "median error did not improve: {before:.3} -> {after:.3}"
        );
        assert!(after < 0.5, "converged error too high: {after:.3}");
    }

    #[test]
    fn node_error_estimates_shrink_on_average() {
        let (net, hosts) = setup(20);
        let mut v = Vivaldi::new(&hosts, VivaldiConfig::default());
        assert_eq!(v.error_of(hosts[0]), Some(1.0));
        v.run_rounds(&net, 30, SimTime::ZERO);
        // Individual error estimates oscillate (distant samples inflate
        // them transiently), but the population mean must drop well
        // below the untrained value of 1.0.
        let mean: f64 =
            hosts.iter().map(|h| v.error_of(*h).unwrap()).sum::<f64>() / hosts.len() as f64;
        assert!(mean < 0.9, "mean error {mean:.3} did not shrink");
    }

    #[test]
    fn estimates_are_symmetric_and_nonnegative() {
        let (net, hosts) = setup(15);
        let mut v = Vivaldi::new(&hosts, VivaldiConfig::default());
        v.run_rounds(&net, 10, SimTime::ZERO);
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                let ab = v.estimate(a, b).unwrap();
                let ba = v.estimate(b, a).unwrap();
                assert_eq!(ab, ba);
            }
        }
    }

    #[test]
    fn unknown_hosts_estimate_none() {
        let (mut net, hosts) = setup(5);
        let stranger = net.add_host(crp_netsim::Region::Africa, (1.0, 2.0), "x".into());
        let v = Vivaldi::new(&hosts, VivaldiConfig::default());
        assert!(v.estimate(hosts[0], stranger).is_none());
    }

    #[test]
    fn sample_accounting() {
        let (net, hosts) = setup(10);
        let mut v = Vivaldi::new(&hosts, VivaldiConfig::default());
        assert_eq!(v.samples_taken(), 0);
        v.run_rounds(&net, 2, SimTime::ZERO);
        assert!(v.samples_taken() > 0);
    }

    #[test]
    #[should_panic(expected = "vivaldi needs hosts")]
    fn empty_hosts_rejected() {
        let _ = Vivaldi::new(&[], VivaldiConfig::default());
    }

    #[test]
    fn training_is_deterministic() {
        let (net, hosts) = setup(12);
        let mut a = Vivaldi::new(&hosts, VivaldiConfig::default());
        let mut b = Vivaldi::new(&hosts, VivaldiConfig::default());
        a.run_rounds(&net, 15, SimTime::ZERO);
        b.run_rounds(&net, 15, SimTime::ZERO);
        assert_eq!(
            a.estimate(hosts[0], hosts[5]),
            b.estimate(hosts[0], hosts[5])
        );
    }
}
