//! GNP: Global Network Positioning (Ng & Zhang, INFOCOM 2002).
//!
//! The landmark-based coordinate system the paper's related work leads
//! with. A fixed set of landmarks first embeds *itself* into a
//! low-dimensional Euclidean space by minimizing pairwise embedding
//! error; every other host then solves a small optimization against the
//! landmark coordinates to place itself. Distances between any two
//! hosts are estimated as coordinate distances.
//!
//! Both phases use the same optimizer: a simple deterministic coordinate
//! descent (the original used Simplex Downhill; any local optimizer
//! suffices at these dimensions), seeded from latency-proportional
//! initial positions so runs are reproducible.

use crp_netsim::{HostId, Network, Rtt, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// GNP parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GnpConfig {
    /// Embedding dimensionality (the GNP paper's sweet spot is 5–7 for
    /// the Internet; small worlds do fine with less).
    pub dimensions: usize,
    /// Coordinate-descent sweeps per embedding.
    pub iterations: usize,
    /// Initial step size in coordinate space (ms).
    pub initial_step_ms: f64,
}

impl Default for GnpConfig {
    fn default() -> Self {
        GnpConfig {
            dimensions: 5,
            iterations: 60,
            initial_step_ms: 40.0,
        }
    }
}

impl GnpConfig {
    fn validate(&self) {
        assert!(self.dimensions > 0, "need at least one dimension");
        assert!(self.iterations > 0, "need at least one iteration");
        assert!(self.initial_step_ms > 0.0, "step must be positive");
    }
}

/// A trained GNP coordinate system.
///
/// # Example
///
/// ```
/// use crp_baselines::{Gnp, GnpConfig};
/// use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
///
/// let mut net = NetworkBuilder::new(4).build();
/// let landmarks = net.add_population(&PopulationSpec::planetlab(8));
/// let hosts = net.add_population(&PopulationSpec::dns_servers(4));
/// let mut gnp = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
/// for &h in &hosts {
///     gnp.place_host(&net, h, SimTime::ZERO);
/// }
/// assert!(gnp.estimate(hosts[0], hosts[1]).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Gnp {
    cfg: GnpConfig,
    coords: HashMap<HostId, Vec<f64>>,
    landmarks: Vec<HostId>,
    probes: u64,
}

impl Gnp {
    /// Phase 1: embeds the landmarks from their full pairwise RTT matrix
    /// at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dimensions + 1` landmarks are given or the
    /// config is invalid.
    pub fn embed_landmarks(net: &Network, landmarks: &[HostId], cfg: GnpConfig, t: SimTime) -> Gnp {
        cfg.validate();
        assert!(
            landmarks.len() > cfg.dimensions,
            "need more landmarks than dimensions"
        );
        let n = landmarks.len();
        let mut probes = 0u64;
        let mut rtt = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = net.rtt(landmarks[i], landmarks[j], t).millis();
                probes += 1;
                rtt[i][j] = d;
                rtt[j][i] = d;
            }
        }
        // Latency-proportional deterministic initialization: landmark i
        // starts spread along axis (i mod dims).
        let mut coords: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut v = vec![0.0; cfg.dimensions];
                v[i % cfg.dimensions] = rtt[0][i].max(1.0);
                v
            })
            .collect();
        // Coordinate descent on total squared embedding error.
        let mut step = cfg.initial_step_ms;
        for _ in 0..cfg.iterations {
            for i in 0..n {
                for d in 0..cfg.dimensions {
                    let err_here = landmark_error(&coords, &rtt, i);
                    for delta in [step, -step] {
                        coords[i][d] += delta;
                        if landmark_error(&coords, &rtt, i) < err_here {
                            break;
                        }
                        coords[i][d] -= delta;
                    }
                }
            }
            step *= 0.92;
        }
        let coords_map = landmarks.iter().zip(coords).map(|(h, c)| (*h, c)).collect();
        Gnp {
            cfg,
            coords: coords_map,
            landmarks: landmarks.to_vec(),
            probes,
        }
    }

    /// Phase 2: places one host by measuring it against every landmark
    /// and minimizing its own embedding error.
    pub fn place_host(&mut self, net: &Network, host: HostId, t: SimTime) {
        if self.coords.contains_key(&host) {
            return;
        }
        let targets: Vec<(Vec<f64>, f64)> = self
            .landmarks
            .iter()
            .map(|&l| {
                self.probes += 1;
                (self.coords[&l].clone(), net.rtt(host, l, t).millis())
            })
            .collect();
        // Start at the nearest landmark's coordinate.
        let nearest = targets
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("landmarks exist"); // crp-lint: allow(CRP001) — landmark sets are validated non-empty at construction
        let mut pos = nearest.0.clone();
        let mut step = self.cfg.initial_step_ms;
        for _ in 0..self.cfg.iterations {
            for d in 0..self.cfg.dimensions {
                let here = host_error(&pos, &targets);
                for delta in [step, -step] {
                    pos[d] += delta;
                    if host_error(&pos, &targets) < here {
                        break;
                    }
                    pos[d] -= delta;
                }
            }
            step *= 0.92;
        }
        self.coords.insert(host, pos);
    }

    /// Estimated RTT between two placed hosts, or `None` if either is
    /// unplaced.
    pub fn estimate(&self, a: HostId, b: HostId) -> Option<Rtt> {
        let ca = self.coords.get(&a)?;
        let cb = self.coords.get(&b)?;
        Some(Rtt::from_millis(euclidean(ca, cb)))
    }

    /// Direct measurements consumed so far (GNP's probing bill).
    pub fn probes_issued(&self) -> u64 {
        self.probes
    }

    /// Median relative estimation error over placed non-landmark hosts.
    pub fn median_relative_error(&self, net: &Network, hosts: &[HostId], t: SimTime) -> f64 {
        let mut errs = Vec::new();
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                let (Some(est), truth) = (self.estimate(a, b), net.rtt(a, b, t).millis()) else {
                    continue;
                };
                errs.push((est.millis() - truth).abs() / truth.max(0.1));
            }
        }
        errs.sort_by(f64::total_cmp);
        if errs.is_empty() {
            0.0
        } else {
            errs[errs.len() / 2]
        }
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn landmark_error(coords: &[Vec<f64>], rtt: &[Vec<f64>], i: usize) -> f64 {
    let mut e = 0.0;
    for j in 0..coords.len() {
        if i == j {
            continue;
        }
        let d = euclidean(&coords[i], &coords[j]);
        let want = rtt[i][j];
        // Normalized squared error, as in the GNP objective.
        e += ((d - want) / want.max(1.0)).powi(2);
    }
    e
}

fn host_error(pos: &[f64], targets: &[(Vec<f64>, f64)]) -> f64 {
    targets
        .iter()
        .map(|(c, want)| {
            let d = euclidean(pos, c);
            ((d - want) / want.max(1.0)).powi(2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{LatencyConfig, NetworkBuilder, PopulationSpec};

    fn world() -> (Network, Vec<HostId>, Vec<HostId>) {
        let mut net = NetworkBuilder::new(93)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(5)
            .latency(LatencyConfig::static_network())
            .build();
        let landmarks = net.add_population(&PopulationSpec::planetlab(10));
        let hosts = net.add_population(&PopulationSpec::dns_servers(16));
        (net, landmarks, hosts)
    }

    #[test]
    fn landmark_embedding_reduces_error_below_trivial() {
        let (net, landmarks, _) = world();
        let gnp = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
        let err = gnp.median_relative_error(&net, &landmarks, SimTime::ZERO);
        assert!(err < 0.4, "landmark self-embedding error {err:.2}");
    }

    #[test]
    fn placed_hosts_estimate_reasonably() {
        let (net, landmarks, hosts) = world();
        let mut gnp = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
        for &h in &hosts {
            gnp.place_host(&net, h, SimTime::ZERO);
        }
        let err = gnp.median_relative_error(&net, &hosts, SimTime::ZERO);
        assert!(err < 0.6, "host embedding error {err:.2}");
    }

    #[test]
    fn probing_cost_is_counted() {
        let (net, landmarks, hosts) = world();
        let mut gnp = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
        let after_landmarks = gnp.probes_issued();
        assert_eq!(after_landmarks, (10 * 9 / 2) as u64);
        gnp.place_host(&net, hosts[0], SimTime::ZERO);
        assert_eq!(gnp.probes_issued(), after_landmarks + 10);
    }

    #[test]
    fn unplaced_hosts_estimate_none() {
        let (net, landmarks, hosts) = world();
        let gnp = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
        assert!(gnp.estimate(hosts[0], hosts[1]).is_none());
        assert!(gnp.estimate(landmarks[0], landmarks[1]).is_some());
    }

    #[test]
    fn embedding_is_deterministic() {
        let (net, landmarks, hosts) = world();
        let mut a = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
        let mut b = Gnp::embed_landmarks(&net, &landmarks, GnpConfig::default(), SimTime::ZERO);
        a.place_host(&net, hosts[0], SimTime::ZERO);
        b.place_host(&net, hosts[0], SimTime::ZERO);
        a.place_host(&net, hosts[1], SimTime::ZERO);
        b.place_host(&net, hosts[1], SimTime::ZERO);
        assert_eq!(
            a.estimate(hosts[0], hosts[1]),
            b.estimate(hosts[0], hosts[1])
        );
    }

    #[test]
    #[should_panic(expected = "more landmarks than dimensions")]
    fn too_few_landmarks_rejected() {
        let (net, landmarks, _) = world();
        let _ = Gnp::embed_landmarks(&net, &landmarks[..3], GnpConfig::default(), SimTime::ZERO);
    }
}
