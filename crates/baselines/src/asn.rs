//! ASN-based clustering.
//!
//! "ASN-based clustering relies on the hypothesis that nodes located in
//! the same autonomous system are nearby in a networking sense. […] any
//! node belonging to the same ASN is grouped into the same cluster"
//! (§V-B). The original used RouteViews BGP data to map addresses to
//! ASNs; in the reproduction the topology itself knows each host's AS.

use crp_core::Clustering;
use crp_netsim::{HostId, Network};
use std::collections::BTreeMap;

/// Clusters `nodes` by autonomous system: every host in the same AS
/// lands in the same cluster. Hosts alone in their AS come out as
/// singletons (unclustered, in the paper's accounting).
///
/// # Panics
///
/// Panics if any host id does not belong to `net`.
///
/// # Example
///
/// ```
/// use crp_baselines::asn_clustering;
/// use crp_netsim::{NetworkBuilder, PopulationSpec};
///
/// let mut net = NetworkBuilder::new(1).build();
/// let nodes = net.add_population(&PopulationSpec::dns_servers(50));
/// let clustering = asn_clustering(&net, &nodes);
/// assert_eq!(clustering.total_nodes(), 50);
/// ```
pub fn asn_clustering(net: &Network, nodes: &[HostId]) -> Clustering<HostId> {
    let mut groups: BTreeMap<u32, Vec<HostId>> = BTreeMap::new();
    for &h in nodes {
        groups.entry(net.host(h).asn().asn()).or_default().push(h);
    }
    Clustering::from_groups(groups.into_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn net_and_nodes(n: usize) -> (Network, Vec<HostId>) {
        let mut net = NetworkBuilder::new(17)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build();
        let nodes = net.add_population(&PopulationSpec::dns_servers(n));
        (net, nodes)
    }

    #[test]
    fn partition_covers_all_nodes() {
        let (net, nodes) = net_and_nodes(80);
        let clustering = asn_clustering(&net, &nodes);
        assert_eq!(clustering.total_nodes(), nodes.len());
    }

    #[test]
    fn members_share_an_asn() {
        let (net, nodes) = net_and_nodes(80);
        let clustering = asn_clustering(&net, &nodes);
        for cluster in clustering.multi_clusters() {
            let asn = net.host(*cluster.center()).asn();
            for m in cluster.members() {
                assert_eq!(net.host(*m).asn(), asn);
            }
        }
    }

    #[test]
    fn distinct_asns_never_merge() {
        let (net, nodes) = net_and_nodes(80);
        let clustering = asn_clustering(&net, &nodes);
        for (i, a) in clustering.clusters().iter().enumerate() {
            for b in clustering.clusters().iter().skip(i + 1) {
                assert_ne!(net.host(*a.center()).asn(), net.host(*b.center()).asn());
            }
        }
    }

    #[test]
    fn empty_input_gives_empty_clustering() {
        let (net, _) = net_and_nodes(1);
        let clustering = asn_clustering(&net, &[]);
        assert_eq!(clustering.total_nodes(), 0);
    }

    #[test]
    fn is_deterministic() {
        let (net, nodes) = net_and_nodes(40);
        assert_eq!(asn_clustering(&net, &nodes), asn_clustering(&net, &nodes));
    }
}
