//! Baseline positioning techniques the paper compares CRP against.
//!
//! * [`asn`] — ASN-based clustering: group hosts by autonomous system
//!   (the paper's Table I / Fig. 7 baseline, built from RouteViews data
//!   in the original; here the AS assignment comes from the synthetic
//!   topology).
//! * [`binning`] — landmark binning (Ratnasamy et al., INFOCOM 2002),
//!   *the* relative-positioning scheme the paper says CRP replaces
//!   "without requiring landmark selection or additional measurements".
//! * [`gnp`] — Global Network Positioning (Ng & Zhang, INFOCOM 2002),
//!   the landmark-based coordinate system leading the related work.
//! * [`vivaldi`] — Vivaldi network coordinates (Dabek et al., SIGCOMM
//!   2004), the decentralized coordinate system among those the paper
//!   cites. Meridian had been shown to beat Vivaldi/GNP; implementing
//!   them lets the ablation benches close that loop inside the
//!   reproduction.

pub mod asn;
pub mod binning;
pub mod gnp;
pub mod vivaldi;

pub use asn::asn_clustering;
pub use binning::{bin_of, binning_clustering, Bin, BinningConfig};
pub use gnp::{Gnp, GnpConfig};
pub use vivaldi::{Vivaldi, VivaldiConfig};
