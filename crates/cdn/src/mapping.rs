//! The mapping system: parameters governing how resolvers are redirected.

use serde::{Deserialize, Serialize};

/// Configuration of the CDN's DNS mapping behavior.
///
/// Defaults reproduce the documented Akamai behavior circa the paper's
/// measurement period: 20-second answer TTLs, two A records per answer,
/// rankings refreshed on the order of a minute, load balancing across the
/// few best candidates, and distant fallbacks for poorly covered clients.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MappingConfig {
    /// TTL of the terminal A records.
    pub answer_ttl_secs: u64,
    /// TTL of the public-name → edge-name CNAME.
    pub cname_ttl_secs: u64,
    /// Number of A records per answer.
    pub answers_per_response: usize,
    /// How often (ms) the mapping system re-ranks candidates from fresh
    /// measurements.
    pub mapping_epoch_ms: u64,
    /// Relative noise (σ) on the CDN's internal latency measurements.
    pub measurement_noise_sigma: f64,
    /// Candidates the load balancer rotates among, for well-covered
    /// clients.
    pub load_balance_pool: usize,
    /// Per-resolver shortlist size: the cluster of replicas the mapping
    /// system considers for a resolver at all (static pre-localization).
    pub shortlist_size: usize,
    /// A resolver whose best candidate exceeds this RTT (ms) counts as
    /// poorly covered.
    pub coverage_radius_ms: f64,
    /// Pool-width multiplier for poorly covered resolvers: their answers
    /// scatter across `load_balance_pool * scatter_factor` candidates.
    pub scatter_factor: usize,
    /// Probability that a poorly covered resolver is answered with a
    /// global fallback server (CDN-owned address) instead of an edge
    /// replica.
    pub fallback_probability: f64,
    /// Extra multiplicative ranking noise applied when localizing a
    /// poorly covered resolver. The CDN simply cannot measure such
    /// clients well, so its answers scatter far and wide — the paper's
    /// New Zealand client was sent to Massachusetts, Tennessee and
    /// Japan.
    pub scatter_noise: f64,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            answer_ttl_secs: 20,
            cname_ttl_secs: 1_800,
            answers_per_response: 2,
            mapping_epoch_ms: 60_000,
            measurement_noise_sigma: 0.05,
            load_balance_pool: 2,
            shortlist_size: 16,
            coverage_radius_ms: 60.0,
            scatter_factor: 4,
            fallback_probability: 0.2,
            scatter_noise: 1.5,
        }
    }
}

impl MappingConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range (zero pools, probabilities
    /// outside `[0, 1]`, non-positive radii).
    pub fn validate(&self) {
        assert!(self.answer_ttl_secs > 0, "answer TTL must be positive");
        assert!(self.answers_per_response > 0, "need at least one answer");
        assert!(self.mapping_epoch_ms > 0, "mapping epoch must be positive");
        assert!(
            self.measurement_noise_sigma >= 0.0,
            "noise sigma must be non-negative"
        );
        assert!(self.load_balance_pool > 0, "pool must be non-empty");
        assert!(
            self.shortlist_size >= self.load_balance_pool,
            "shortlist must cover the load-balance pool"
        );
        assert!(
            self.coverage_radius_ms > 0.0,
            "coverage radius must be positive"
        );
        assert!(self.scatter_factor >= 1, "scatter factor must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.fallback_probability),
            "fallback probability must be in [0, 1]"
        );
        assert!(
            self.scatter_noise >= 0.0,
            "scatter noise must be non-negative"
        );
    }

    /// A configuration with no fallbacks and no scatter — every client is
    /// treated as well-covered. Used to ablate the coverage model.
    pub fn full_coverage() -> Self {
        MappingConfig {
            coverage_radius_ms: f64::INFINITY,
            fallback_probability: 0.0,
            ..MappingConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        MappingConfig::default().validate();
    }

    #[test]
    fn full_coverage_validates() {
        let cfg = MappingConfig::full_coverage();
        assert_eq!(cfg.fallback_probability, 0.0);
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn rejects_empty_pool() {
        MappingConfig {
            load_balance_pool: 0,
            ..MappingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shortlist must cover")]
    fn rejects_short_shortlist() {
        MappingConfig {
            shortlist_size: 1,
            load_balance_pool: 2,
            ..MappingConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "fallback probability")]
    fn rejects_bad_probability() {
        MappingConfig {
            fallback_probability: 1.2,
            ..MappingConfig::default()
        }
        .validate();
    }
}
