//! The CDN proper: fleet + customers + the authoritative mapping system.

use crate::customer::Customer;
use crate::deployment::DeploymentSpec;
use crate::mapping::MappingConfig;
use crate::replica::{ReplicaId, ReplicaServer};
use crp_dns::{AuthoritativeServer, DnsResponse, DomainName, RecordData, ResourceRecord, SimIp};
use crp_netsim::{noise, HostId, Network, Region, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Reusable per-thread buffers for the answer path. The authoritative
/// answer is the CDN's per-query hot path (`cdn/authoritative_answer_warm`
/// tracks it); routing every intermediate list through these buffers
/// keeps the warm path down to the single allocation the returned
/// `DnsResponse` must own.
#[derive(Default)]
struct AnswerScratch {
    shortlist: Vec<ReplicaId>,
    ranked: Vec<(f64, ReplicaId)>,
    scattered: Vec<(f64, ReplicaId)>,
    remaining: Vec<(f64, ReplicaId)>,
    weights: Vec<f64>,
    picked: Vec<ReplicaId>,
}

thread_local! {
    static SCRATCH: RefCell<AnswerScratch> = RefCell::default();
}

/// Noise-stream tags for the mapping system.
const TAG_MEASURE: u64 = 0x31;
const TAG_PICK: u64 = 0x32;
const TAG_FALLBACK: u64 = 0x33;
const TAG_SUBSET: u64 = 0x34;
const TAG_SCATTER: u64 = 0x35;

/// Default bound on the `(resolver, customer)` remap-observer table.
/// Far above any simulated population (1,000 clients × 2 customers);
/// the cap exists so adversarial or runaway query mixes cannot grow
/// observer state without bound.
pub const DEFAULT_REMAP_OBSERVER_CAPACITY: usize = 1 << 16;

/// An outage end meaning "never recovers" — used by event scripts to
/// retire a replica permanently.
pub(crate) const FOREVER: SimTime = SimTime::from_millis(u64::MAX);

/// Aggregate counters describing the load the CDN has served.
#[derive(Clone, Debug, Default)]
pub struct CdnStats {
    /// Authoritative queries answered.
    pub queries_answered: u64,
    /// Queries answered with global fallback servers.
    pub fallback_answers: u64,
    /// Queries from poorly-covered resolvers (scattered answers).
    pub scattered_answers: u64,
    /// Detected remapping events: a `(resolver, customer)` pair whose
    /// best-measured replica changed across mapping epochs.
    pub remap_events: u64,
    /// `(resolver, customer)` pairs the remap observer refused to track
    /// because its table was at capacity. Nonzero means
    /// [`CdnStats::remap_events`] undercounts ground truth.
    pub remap_observer_dropped: u64,
}

/// The simulated CDN.
///
/// `Cdn` takes ownership of the [`Network`] at deployment time (the
/// fleet adds its replica hosts, then the host set is frozen) and exposes
/// it read-only via [`Cdn::network`]; experiments use that reference for
/// ground-truth RTT measurements.
pub struct Cdn {
    net: Network,
    cfg: MappingConfig,
    replicas: Vec<ReplicaServer>,
    fallbacks: Vec<ReplicaId>,
    customers: Vec<Customer>,
    by_domain: HashMap<DomainName, usize>,
    edge_zone: DomainName,
    shortlists: RwLock<HashMap<(HostId, u32), Vec<ReplicaId>>>,
    // Last (epoch, best replica) seen per (resolver, customer) — pure
    // observer state for remap-event detection; answers never read it.
    epoch_best: RwLock<HashMap<(HostId, u32), (u64, ReplicaId)>>,
    remap_observer_capacity: usize,
    outages: Vec<(ReplicaId, SimTime, SimTime)>,
    // Per-replica activation time: `SimTime::ZERO` for the deployed
    // fleet, `FOREVER` for dormant reserves until an event script
    // activates them.
    active_from: Vec<SimTime>,
    // Dormant reserve pools per region index, consumed by event scripts.
    reserves: Vec<Vec<ReplicaId>>,
    // Scheduled load-balance pool-width changes, in schedule order.
    lb_overrides: Vec<(SimTime, usize)>,
    // Multiplicative measurement penalties (replica, from, until,
    // factor) — the flash-crowd overload model: the mapping system sees
    // the replica as slower and routes around it.
    measure_penalties: Vec<(ReplicaId, SimTime, SimTime, f64)>,
    queries_answered: AtomicU64,
    remap_events: AtomicU64,
    remap_observer_dropped: AtomicU64,
    fallback_answers: AtomicU64,
    scattered_answers: AtomicU64,
    per_replica_answers: Vec<AtomicU64>,
}

impl std::fmt::Debug for Cdn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cdn")
            .field("replicas", &self.replicas.len())
            .field("customers", &self.customers.len())
            .field("config", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Cdn {
    /// Deploys a replica fleet on `net` per `spec` and returns the CDN.
    ///
    /// Regional replicas are placed like well-connected infrastructure
    /// hosts; fallback servers are placed in North America on CDN-owned
    /// addresses, mirroring the distant Akamai-owned answers the paper
    /// describes in §VI.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is internally inconsistent (see
    /// [`MappingConfig::validate`]).
    pub fn deploy(mut net: Network, spec: &DeploymentSpec, cfg: MappingConfig) -> Cdn {
        cfg.validate();
        let mut replicas = Vec::with_capacity(spec.total());
        for (region, count) in spec.per_region() {
            for _ in 0..*count {
                let id = ReplicaId::from_index(replicas.len() as u32);
                let host = net.add_host_with_spread(
                    *region,
                    (0.1, 0.8),
                    format!("replica-{}", replicas.len()),
                    Some(100.0),
                );
                replicas.push(ReplicaServer::new(id, host, false));
            }
        }
        let mut fallbacks = Vec::with_capacity(spec.fallback_count());
        for _ in 0..spec.fallback_count() {
            let id = ReplicaId::from_index(replicas.len() as u32);
            let host = net.add_host_with_spread(
                Region::NorthAmerica,
                (0.1, 0.8),
                format!("fallback-{}", fallbacks.len()),
                Some(100.0),
            );
            replicas.push(ReplicaServer::new(id, host, true));
            fallbacks.push(id);
        }
        let per_replica_answers = (0..replicas.len()).map(|_| AtomicU64::new(0)).collect();
        let active_from = vec![SimTime::ZERO; replicas.len()];
        Cdn {
            net,
            cfg,
            replicas,
            fallbacks,
            customers: Vec::new(),
            by_domain: HashMap::new(),
            edge_zone: "g.akamai-sim.net".parse().expect("static name is valid"), // crp-lint: allow(CRP001) — static zone name is a valid domain
            shortlists: RwLock::new(HashMap::new()),
            epoch_best: RwLock::new(HashMap::new()),
            remap_observer_capacity: DEFAULT_REMAP_OBSERVER_CAPACITY,
            outages: Vec::new(),
            active_from,
            reserves: Region::ALL.iter().map(|_| Vec::new()).collect(),
            lb_overrides: Vec::new(),
            measure_penalties: Vec::new(),
            queries_answered: AtomicU64::new(0),
            remap_events: AtomicU64::new(0),
            remap_observer_dropped: AtomicU64::new(0),
            fallback_answers: AtomicU64::new(0),
            scattered_answers: AtomicU64::new(0),
            per_replica_answers,
        }
    }

    /// Deploys `count` *dormant* reserve replicas in `region` and parks
    /// them in the region's reserve pool. Reserves join customer
    /// eligibility subsets and shortlists like any edge replica, but
    /// serve no traffic until an event script activates them (regional
    /// pool flips, footprint expansions).
    ///
    /// Must run before customers are registered so eligibility and
    /// shortlists see the full fleet.
    ///
    /// # Panics
    ///
    /// Panics if any customer is already registered.
    pub fn deploy_reserve(&mut self, region: Region, count: usize) -> Vec<ReplicaId> {
        assert!(
            self.customers.is_empty(),
            "reserves must be deployed before customers register"
        );
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = ReplicaId::from_index(self.replicas.len() as u32);
            let host = self.net.add_host_with_spread(
                region,
                (0.1, 0.8),
                format!("replica-{}", self.replicas.len()),
                Some(100.0),
            );
            self.replicas.push(ReplicaServer::new(id, host, false));
            self.active_from.push(FOREVER);
            self.per_replica_answers.push(AtomicU64::new(0));
            ids.push(id);
        }
        self.reserves[region.index() as usize].extend_from_slice(&ids); // crp-lint: allow(CRP010) — one reserve pool per Region; index < Region::ALL.len() by construction
        ids
    }

    /// Takes up to `count` dormant reserves from `region`'s pool, in
    /// deployment order.
    pub fn take_reserves(&mut self, region: Region, count: usize) -> Vec<ReplicaId> {
        let pool = &mut self.reserves[region.index() as usize]; // crp-lint: allow(CRP010) — one reserve pool per Region; index < Region::ALL.len() by construction
        let n = count.min(pool.len());
        pool.drain(..n).collect()
    }

    /// Dormant reserves remaining in `region`'s pool.
    pub fn reserve_count(&self, region: Region) -> usize {
        self.reserves[region.index() as usize].len() // crp-lint: allow(CRP010) — one reserve pool per Region; index < Region::ALL.len() by construction
    }

    /// Activates a dormant replica: it starts serving at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the replica id is unknown or already active.
    pub fn activate_replica(&mut self, replica: ReplicaId, at: SimTime) {
        assert!(replica.index() < self.replicas.len(), "unknown replica");
        assert_eq!(
            self.active_from[replica.index()], // crp-lint: allow(CRP010) — bounds asserted above; control-plane path
            FOREVER,
            "replica {replica:?} is already active"
        );
        self.active_from[replica.index()] = at; // crp-lint: allow(CRP010) — bounds asserted above; control-plane path
    }

    /// Retires a replica permanently from `at` on — a pool flip's
    /// outgoing half. Implemented as an outage that never ends.
    ///
    /// # Panics
    ///
    /// Panics if the replica id is not deployed.
    pub fn retire_replica(&mut self, replica: ReplicaId, at: SimTime) {
        self.schedule_outage(replica, at, FOREVER);
    }

    /// Schedules a load-balance pool-width change: answers for
    /// well-covered resolvers rotate among `pool` candidates from `from`
    /// on (until a later override).
    ///
    /// # Panics
    ///
    /// Panics if `pool` is zero.
    pub fn set_load_balance_pool(&mut self, from: SimTime, pool: usize) {
        assert!(pool > 0, "load-balance pool must be non-empty");
        self.lb_overrides.push((from, pool));
    }

    /// Applies a multiplicative penalty to the CDN's internal latency
    /// measurements of `replica` during `[from, until)` — the
    /// flash-crowd model: an overloaded replica measures slower, so the
    /// mapping system shifts traffic off it for the duration.
    ///
    /// # Panics
    ///
    /// Panics if the replica id is unknown, the interval is empty, or
    /// the factor is not positive.
    pub fn add_measurement_penalty(
        &mut self,
        replica: ReplicaId,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) {
        assert!(replica.index() < self.replicas.len(), "unknown replica");
        assert!(until > from, "empty penalty interval");
        assert!(
            factor.is_finite() && factor > 0.0,
            "penalty factor must be positive"
        );
        self.measure_penalties.push((replica, from, until, factor));
    }

    /// The load-balance pool width in effect at `t` (the last scheduled
    /// override at or before `t`, else the configured default).
    fn effective_lb_pool(&self, t: SimTime) -> usize {
        self.lb_overrides
            .iter()
            .filter(|(at, _)| *at <= t)
            .next_back()
            .map_or(self.cfg.load_balance_pool, |(_, pool)| *pool)
    }

    /// Non-fallback replicas homed in `region` that are serving at `t`
    /// (activated, not down), in deployment order.
    pub fn serving_region_replicas(&self, region: Region, t: SimTime) -> Vec<ReplicaId> {
        self.replicas
            .iter()
            .filter(|r| !r.is_cdn_owned())
            .filter(|r| self.net.host(r.host()).region() == region)
            .map(ReplicaServer::id)
            .filter(|id| self.replica_is_up(*id, t))
            .collect()
    }

    /// The region a replica is homed in.
    pub fn replica_region(&self, replica: ReplicaId) -> Region {
        // crp-lint: allow(CRP010) — ReplicaIds are only minted by this Cdn; always in range
        let host = self.replicas[replica.index()].host();
        self.net.host(host).region()
    }

    /// Registers a customer name served by a deterministic ~70% subset of
    /// the edge fleet, and returns the public [`DomainName`] to query.
    ///
    /// # Errors
    ///
    /// Returns [`crp_dns::ParseNameError`] if `domain` is not a valid
    /// DNS name.
    ///
    /// # Panics
    ///
    /// Panics if the domain is already registered.
    pub fn add_customer(&mut self, domain: &str) -> Result<DomainName, crp_dns::ParseNameError> {
        self.add_customer_with_share(domain, 0.7)
    }

    /// Registers a customer served by a `share` fraction of the edge
    /// fleet (fallbacks excluded; every customer can reach them).
    ///
    /// # Errors
    ///
    /// Returns [`crp_dns::ParseNameError`] if `domain` is not a valid
    /// DNS name.
    ///
    /// # Panics
    ///
    /// Panics if the domain is already registered or `share` is outside
    /// `(0, 1]`.
    pub fn add_customer_with_share(
        &mut self,
        domain: &str,
        share: f64,
    ) -> Result<DomainName, crp_dns::ParseNameError> {
        assert!(share > 0.0 && share <= 1.0, "share must be in (0, 1]");
        let name: DomainName = domain.parse()?;
        assert!(
            !self.by_domain.contains_key(&name),
            "customer already registered: {name}"
        );
        let idx = self.customers.len();
        let edge_name = self
            .edge_zone
            .prepend(&format!("a{}", 1_000 + idx))
            .expect("edge label is valid"); // crp-lint: allow(CRP001) — generated edge label is a valid DNS label
        let eligible: Vec<ReplicaId> = self
            .replicas
            .iter()
            .filter(|r| !r.is_cdn_owned())
            .map(ReplicaServer::id)
            .filter(|id| {
                noise::uniform(&[self.net.seed(), TAG_SUBSET, idx as u64, id.key()]) < share
            })
            .collect();
        self.customers
            .push(Customer::new(name.clone(), edge_name, eligible));
        self.by_domain.insert(name.clone(), idx);
        Ok(name)
    }

    /// Schedules an outage: `replica` serves no traffic during
    /// `[from, until)`. The mapping system routes around down replicas,
    /// so clients observing redirections simply see their maps shift —
    /// the failure-injection hook used by robustness tests.
    ///
    /// # Panics
    ///
    /// Panics if the replica id is not deployed or the interval is
    /// empty.
    pub fn schedule_outage(&mut self, replica: ReplicaId, from: SimTime, until: SimTime) {
        assert!(replica.index() < self.replicas.len(), "unknown replica");
        assert!(until > from, "empty outage interval");
        self.outages.push((replica, from, until));
    }

    /// Whether `replica` is serving at time `t`: activated (dormant
    /// reserves are not), and not inside a scheduled outage.
    pub fn replica_is_up(&self, replica: ReplicaId, t: SimTime) -> bool {
        t >= self.active_from[replica.index()] // crp-lint: allow(CRP010) — ReplicaIds are only minted by this Cdn; always in range
            && !self
                .outages
                .iter()
                .any(|(r, from, until)| *r == replica && t >= *from && t < *until)
    }

    /// The network the CDN (and everything else) runs on.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The mapping configuration in effect.
    pub fn config(&self) -> &MappingConfig {
        &self.cfg
    }

    /// All deployed replicas, including fallbacks.
    pub fn replicas(&self) -> &[ReplicaServer] {
        &self.replicas
    }

    /// Registered customers.
    pub fn customers(&self) -> &[Customer] {
        &self.customers
    }

    /// Looks up the replica answering from `ip`, if any.
    pub fn replica_by_ip(&self, ip: SimIp) -> Option<&ReplicaServer> {
        ReplicaId::from_ip(ip).and_then(|id| self.replicas.get(id.index()))
    }

    /// Whether `ip` belongs to the CDN's own address block — the
    /// simulation analogue of the whois check behind the paper's §VI
    /// name-filtering rule.
    pub fn ip_is_cdn_owned(&self, ip: SimIp) -> bool {
        self.replica_by_ip(ip)
            .is_some_and(ReplicaServer::is_cdn_owned)
    }

    /// Load counters accumulated so far.
    pub fn stats(&self) -> CdnStats {
        CdnStats {
            queries_answered: self.queries_answered.load(Ordering::Relaxed),
            fallback_answers: self.fallback_answers.load(Ordering::Relaxed),
            scattered_answers: self.scattered_answers.load(Ordering::Relaxed),
            remap_events: self.remap_events.load(Ordering::Relaxed),
            remap_observer_dropped: self.remap_observer_dropped.load(Ordering::Relaxed),
        }
    }

    /// `(resolver, customer)` pairs the remap observer currently tracks.
    pub fn remap_observer_len(&self) -> usize {
        self.epoch_best
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// The remap-observer table bound in effect.
    pub fn remap_observer_capacity(&self) -> usize {
        self.remap_observer_capacity
    }

    /// Overrides the remap-observer table bound (default
    /// [`DEFAULT_REMAP_OBSERVER_CAPACITY`]). Pairs beyond the bound are
    /// not tracked and count into
    /// [`CdnStats::remap_observer_dropped`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_remap_observer_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "remap observer capacity must be positive");
        self.remap_observer_capacity = capacity;
    }

    /// Deep size of the remap-observer table alone — the capacity gauge
    /// behind `mem.footprint.cdn.remap_observer`.
    pub fn remap_observer_footprint(&self) -> usize {
        let epoch_best = self
            .epoch_best
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        crp_telemetry::mem::hash_map_footprint(
            epoch_best.len(),
            std::mem::size_of::<(HostId, u32)>() + std::mem::size_of::<(u64, ReplicaId)>(),
        )
    }

    /// Answers served by each replica, indexed by replica id.
    pub fn per_replica_answers(&self) -> Vec<u64> {
        self.per_replica_answers
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Answers served per region — how CRP's probing load distributes
    /// over the fleet (the commensalism analysis of §VI).
    pub fn answers_by_region(&self) -> Vec<(Region, u64)> {
        let mut out: Vec<(Region, u64)> = Region::ALL.iter().map(|r| (*r, 0)).collect();
        for (replica, count) in self.replicas.iter().zip(&self.per_replica_answers) {
            let region = self.net.host(replica.host()).region();
            out[region.index() as usize].1 += count.load(Ordering::Relaxed);
        }
        out
    }

    /// The CDN's internal latency measurement of `replica` as seen from
    /// `resolver` during the mapping epoch containing `t`: the true RTT
    /// at the epoch start, perturbed by measurement noise.
    fn measured_ms(&self, resolver: HostId, replica: ReplicaId, t: SimTime) -> f64 {
        let epoch = t.as_millis() / self.cfg.mapping_epoch_ms;
        let epoch_start = SimTime::from_millis(epoch * self.cfg.mapping_epoch_ms);
        let truth = self
            .net
            .rtt(resolver, self.replicas[replica.index()].host(), epoch_start)
            .millis();
        let eps = noise::gaussian(&[
            self.net.seed(),
            TAG_MEASURE,
            resolver.key(),
            replica.key(),
            epoch,
        ]) * self.cfg.measurement_noise_sigma;
        let mut load = 1.0;
        for (r, from, until, factor) in &self.measure_penalties {
            if *r == replica && t >= *from && t < *until {
                load *= factor;
            }
        }
        truth * load * (1.0 + eps).max(0.1)
    }

    /// The static shortlist of candidate replicas for `(resolver,
    /// customer)`: the `shortlist_size` nearest eligible replicas by
    /// baseline RTT. Computed once and memoized; the warm path copies
    /// the memoized list into `out` instead of cloning a fresh `Vec`.
    fn shortlist_into(&self, resolver: HostId, customer_idx: usize, out: &mut Vec<ReplicaId>) {
        let key = (resolver, customer_idx as u32);
        out.clear();
        {
            let shortlists = self
                .shortlists
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(hit) = shortlists.get(&key) {
                out.extend_from_slice(hit);
                return;
            }
        }
        let customer = &self.customers[customer_idx];
        let mut scored: Vec<(f64, ReplicaId)> = customer
            .eligible()
            .iter()
            .map(|id| {
                let host = self.replicas[id.index()].host();
                (self.net.baseline_rtt(resolver, host).millis(), *id)
            })
            .collect(); // crp-lint: allow(CRP009) — one-time computation per (resolver, customer); memoized thereafter
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.truncate(self.cfg.shortlist_size);
        // crp-lint: allow(CRP009) — cold path: builds the memoized list
        let list: Vec<ReplicaId> = scored.into_iter().map(|(_, id)| id).collect();
        out.extend_from_slice(&list);
        self.shortlists
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, list);
    }

    /// Picks `count` distinct replicas from `pool` with weights that
    /// favor lower measured latency (softmax over -rtt). Results land in
    /// `picked`; `remaining` and `weights` are caller-owned scratch so
    /// the warm path allocates nothing.
    #[allow(clippy::too_many_arguments)]
    fn weighted_pick_into(
        &self,
        pool: &[(f64, ReplicaId)],
        count: usize,
        resolver: HostId,
        t: SimTime,
        remaining: &mut Vec<(f64, ReplicaId)>,
        weights: &mut Vec<f64>,
        picked: &mut Vec<ReplicaId>,
    ) {
        remaining.clear();
        remaining.extend_from_slice(pool);
        picked.clear();
        let temp = 2.0; // ms scale over which preference decays
        for draw in 0..count.min(pool.len()) {
            let best = remaining
                .iter()
                .map(|(ms, _)| *ms)
                .fold(f64::INFINITY, f64::min);
            // Floor guards exp() underflow for extreme RTT spreads, so
            // every candidate keeps a nonzero (if negligible) weight.
            weights.clear();
            weights.extend(
                remaining
                    .iter()
                    .map(|(ms, _)| (-(ms - best) / temp).exp().max(1e-300)),
            );
            let total: f64 = weights.iter().sum();
            crp_core::debug_invariant!(
                // crp-lint: allow(CRP014) — debug-assertions-only invariant check; compiled out in release
                crp_core::invariant::check_ratio_distribution(
                    weights.iter().map(|w| w / total).collect::<Vec<_>>().iter()
                ),
                "Cdn::weighted_pick softmax weights ({} candidates)",
                remaining.len()
            );
            let mut u = noise::uniform(&[
                self.net.seed(),
                TAG_PICK,
                resolver.key(),
                t.as_millis(),
                draw as u64,
            ]) * total;
            let mut chosen = remaining.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    chosen = i;
                    break;
                }
                u -= w;
            }
            picked.push(remaining.swap_remove(chosen).1);
        }
    }

    /// Observes the `(resolver, customer)` pair's best-measured replica
    /// for remap detection: when the best pick differs from the one
    /// remembered for an *earlier* mapping epoch, that is a remapping
    /// event — the mapping system moved the resolver. Emits a
    /// `cdn.remap` telemetry event and bumps [`CdnStats::remap_events`].
    ///
    /// This is observer state only: nothing on the answer path reads
    /// `epoch_best`, so detection cannot perturb which replicas are
    /// returned.
    fn note_epoch_best(
        &self,
        resolver: HostId,
        customer_idx: usize,
        best: ReplicaId,
        now: SimTime,
    ) {
        let key = (resolver, customer_idx as u32);
        let epoch = now.as_millis() / self.cfg.mapping_epoch_ms;
        {
            let seen = self
                .epoch_best
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match seen.get(&key) {
                // Same epoch: the mapping cannot have changed yet.
                Some((e, _)) if *e == epoch => return,
                Some((_, b)) if *b != best => {
                    self.remap_events.fetch_add(1, Ordering::Relaxed);
                    crp_telemetry::counter_add_at(now.as_millis(), "cdn.remap.events", 1);
                    if crp_telemetry::enabled() {
                        // crp-lint: allow(CRP014) — remap event emission behind the telemetry enabled() gate
                        crp_telemetry::event(
                            now.as_millis(),
                            "cdn.remap",
                            &[
                                ("resolver", resolver.index().into()),
                                ("from", b.index().into()),
                                ("to", best.index().into()),
                                ("epoch", epoch.into()),
                            ],
                        );
                    }
                }
                _ => {}
            }
        }
        let mut table = self
            .epoch_best
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Bounded table: known pairs always update; new pairs are only
        // admitted below capacity, so observer memory cannot grow with
        // an unbounded resolver mix. Refusals are counted — a nonzero
        // drop count flags the remap ground truth as partial.
        if table.contains_key(&key) || table.len() < self.remap_observer_capacity {
            table.insert(key, (epoch, best));
        } else {
            self.remap_observer_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn answer_records(&self, customer: &Customer, picked: &[ReplicaId]) -> Vec<ResourceRecord> {
        let mut records = Vec::with_capacity(picked.len() + 1);
        records.push(ResourceRecord::new(
            customer.domain().clone(),
            SimDuration::from_secs(self.cfg.cname_ttl_secs),
            RecordData::Cname(customer.edge_name().clone()),
        ));
        for id in picked {
            records.push(ResourceRecord::new(
                customer.edge_name().clone(),
                SimDuration::from_secs(self.cfg.answer_ttl_secs),
                RecordData::A(id.ip()),
            ));
        }
        records
    }
}

impl crp_telemetry::MemFootprint for Cdn {
    /// Deep size of the mapping tables that grow with resolver traffic:
    /// memoized shortlists and the per-(resolver, customer) remap
    /// observer state. Fleet and customer state is deployment-fixed and
    /// excluded — the gauge tracks what *accumulates*.
    fn mem_footprint(&self) -> usize {
        let shortlists = self
            .shortlists
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let lists: usize = shortlists
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<ReplicaId>())
            .sum();
        let shortlist_table = crp_telemetry::mem::hash_map_footprint(
            shortlists.len(),
            std::mem::size_of::<(HostId, u32)>() + std::mem::size_of::<Vec<ReplicaId>>(),
        );
        let epoch_best = self
            .epoch_best
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let remap_table = crp_telemetry::mem::hash_map_footprint(
            epoch_best.len(),
            std::mem::size_of::<(HostId, u32)>() + std::mem::size_of::<(u64, ReplicaId)>(),
        );
        shortlist_table + lists + remap_table
    }
}

impl AuthoritativeServer for Cdn {
    /// Redirects `resolver` for `query` at time `now`.
    ///
    /// Well-covered resolvers (best candidate within the coverage radius)
    /// get answers rotated among the `load_balance_pool` best candidates
    /// of their shortlist, ranked by the CDN's epoch measurements.
    /// Poorly-covered resolvers get either a global fallback server
    /// (CDN-owned address) or an answer scattered across a much wider
    /// pool — reproducing the behavior the paper observed for clients in
    /// regions Akamai served badly.
    fn authoritative_answer(
        &self,
        query: &DomainName,
        resolver: HostId,
        now: SimTime,
    ) -> Option<DnsResponse> {
        crp_telemetry::profile_scope!("cdn.authoritative_answer");
        crp_telemetry::mem_domain!("cdn.answer");
        let customer_idx = *self.by_domain.get(query)?;
        let customer = &self.customers[customer_idx];
        self.queries_answered.fetch_add(1, Ordering::Relaxed);
        crp_telemetry::counter_add_at(now.as_millis(), "cdn.queries", 1);
        // The redirection event is where a causal trace is born: the id
        // is a pure function of the deterministic inputs, so the same
        // seeded run mints the same ids.
        if crp_telemetry::trace::enabled() {
            let id = crp_telemetry::trace::mint(&[
                self.net.seed(),
                resolver.key(),
                now.as_millis(),
                customer_idx as u64,
            ]);
            // crp-lint: allow(CRP014) — trace mint allocates only for sampled traces, capped per trace
            crp_telemetry::trace::begin(id, now.as_millis(), "cdn.redirect");
        }

        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let AnswerScratch {
                shortlist,
                ranked,
                scattered,
                remaining,
                weights,
                picked,
            } = scratch;

            self.shortlist_into(resolver, customer_idx, shortlist);
            ranked.clear();
            ranked.extend(
                shortlist
                    .iter()
                    .filter(|id| self.replica_is_up(**id, now))
                    .map(|id| (self.measured_ms(resolver, *id, now), *id)),
            );
            ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

            let well_covered = ranked
                .first()
                .is_some_and(|(ms, _)| *ms <= self.cfg.coverage_radius_ms);
            if let Some((best_ms, best)) = ranked.first() {
                crp_telemetry::observe_at(now.as_millis(), "cdn.best_candidate_ms", *best_ms);
                self.note_epoch_best(resolver, customer_idx, *best, now);
            }

            if well_covered {
                crp_telemetry::counter_add_at(now.as_millis(), "cdn.answers.load_balanced", 1);
                let pool = &ranked[..ranked.len().min(self.effective_lb_pool(now))];
                self.weighted_pick_into(
                    pool,
                    self.cfg.answers_per_response,
                    resolver,
                    now,
                    remaining,
                    weights,
                    picked,
                );
            } else {
                let fallback_draw = noise::uniform(&[
                    self.net.seed(),
                    TAG_FALLBACK,
                    resolver.key(),
                    now.as_millis(),
                ]);
                if fallback_draw < self.cfg.fallback_probability && !self.fallbacks.is_empty() {
                    self.fallback_answers.fetch_add(1, Ordering::Relaxed);
                    crp_telemetry::counter_add_at(now.as_millis(), "cdn.answers.fallback", 1);
                    scattered.clear();
                    scattered.extend(
                        self.fallbacks
                            .iter()
                            .filter(|id| self.replica_is_up(**id, now))
                            .map(|id| (self.measured_ms(resolver, *id, now), *id)),
                    );
                    self.weighted_pick_into(
                        scattered,
                        self.cfg.answers_per_response,
                        resolver,
                        now,
                        remaining,
                        weights,
                        picked,
                    );
                } else {
                    self.scattered_answers.fetch_add(1, Ordering::Relaxed);
                    crp_telemetry::counter_add_at(now.as_millis(), "cdn.answers.scattered", 1);
                    // The CDN cannot localize this resolver: re-rank the
                    // shortlist under heavy measurement noise so answers
                    // scatter far and wide, epoch to epoch.
                    let epoch = now.as_millis() / self.cfg.mapping_epoch_ms;
                    scattered.clear();
                    scattered.extend(ranked.iter().map(|(ms, id)| {
                        let u = noise::uniform(&[
                            self.net.seed(),
                            TAG_SCATTER,
                            resolver.key(),
                            id.key(),
                            epoch,
                        ]);
                        (ms * (1.0 + self.cfg.scatter_noise * u), *id)
                    }));
                    scattered.sort_by(|a, b| a.0.total_cmp(&b.0));
                    let width = self
                        .effective_lb_pool(now)
                        .saturating_mul(self.cfg.scatter_factor)
                        .min(scattered.len());
                    self.weighted_pick_into(
                        &scattered[..width],
                        self.cfg.answers_per_response,
                        resolver,
                        now,
                        remaining,
                        weights,
                        picked,
                    );
                }
            }

            if picked.is_empty() {
                return None;
            }
            for id in picked.iter() {
                self.per_replica_answers[id.index()].fetch_add(1, Ordering::Relaxed);
            }
            Some(DnsResponse::new(
                // crp-lint: allow(CRP009) — Arc-backed name clone: a refcount bump, not a heap copy
                query.clone(),
                // crp-lint: allow(CRP014) — answer assembly allocates the response it returns, bounded by answer_count
                self.answer_records(customer, picked),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn build_cdn(seed: u64) -> (Cdn, Vec<HostId>, DomainName) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let clients = net.add_population(&PopulationSpec::dns_servers(8));
        let mut cdn = Cdn::deploy(
            net,
            &DeploymentSpec::akamai_like(0.4),
            MappingConfig::default(),
        );
        let name = cdn.add_customer("us.i1.yimg.com").unwrap();
        (cdn, clients, name)
    }

    #[test]
    fn deploy_counts_match_spec() {
        let spec = DeploymentSpec::akamai_like(0.4);
        let (cdn, _, _) = build_cdn(1);
        assert_eq!(cdn.replicas().len(), spec.total());
        let owned = cdn.replicas().iter().filter(|r| r.is_cdn_owned()).count();
        assert_eq!(owned, spec.fallback_count());
    }

    #[test]
    fn answers_have_cname_chain_and_a_records() {
        let (cdn, clients, name) = build_cdn(2);
        let resp = cdn
            .authoritative_answer(&name, clients[0], SimTime::ZERO)
            .expect("registered name resolves");
        let ips = resp.a_addresses();
        assert_eq!(ips.len(), cdn.config().answers_per_response);
        assert_eq!(resp.min_ttl(), SimDuration::from_secs(20));
        assert!(resp.records().len() > ips.len(), "missing CNAME record");
        for ip in ips {
            assert!(cdn.replica_by_ip(ip).is_some());
        }
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let (cdn, clients, _) = build_cdn(3);
        let other: DomainName = "unknown.example.org".parse().unwrap();
        assert!(cdn
            .authoritative_answer(&other, clients[0], SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn redirections_favor_nearby_replicas() {
        let (cdn, clients, name) = build_cdn(4);
        let net = cdn.network();
        for &client in &clients {
            // Collect answers over a few epochs.
            let mut seen_ms = Vec::new();
            for i in 0..20u64 {
                let t = SimTime::from_mins(i * 2);
                if let Some(resp) = cdn.authoritative_answer(&name, client, t) {
                    for ip in resp.a_addresses() {
                        let replica = cdn.replica_by_ip(ip).unwrap();
                        seen_ms.push(net.baseline_rtt(client, replica.host()).millis());
                    }
                }
            }
            let mean_seen = seen_ms.iter().sum::<f64>() / seen_ms.len() as f64;
            // Mean RTT to a random replica, for contrast.
            let mean_all: f64 = cdn
                .replicas()
                .iter()
                .map(|r| net.baseline_rtt(client, r.host()).millis())
                .sum::<f64>()
                / cdn.replicas().len() as f64;
            assert!(
                mean_seen < mean_all,
                "client {client}: redirected mean {mean_seen:.1} not better than random {mean_all:.1}"
            );
        }
    }

    #[test]
    fn load_balancing_rotates_answers() {
        let (cdn, clients, name) = build_cdn(5);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..40u64 {
            let t = SimTime::from_secs(i * 25);
            if let Some(resp) = cdn.authoritative_answer(&name, clients[0], t) {
                distinct.extend(resp.a_addresses());
            }
        }
        assert!(
            distinct.len() >= 3,
            "expected rotation among candidates, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn remap_events_are_detected_across_epochs() {
        let (cdn, clients, name) = build_cdn(8);
        assert_eq!(cdn.stats().remap_events, 0);
        // Query every client across many mapping epochs: epoch noise
        // re-ranks the shortlist, so at least one (resolver, customer)
        // pair must see its best-measured replica change.
        for i in 0..30u64 {
            let t = SimTime::from_mins(i * 2);
            for &client in &clients {
                let _ = cdn.authoritative_answer(&name, client, t);
            }
        }
        let remaps = cdn.stats().remap_events;
        assert!(remaps > 0, "no remap detected over 30 epochs");

        // Detection is a pure observer: a second identical CDN with the
        // same query schedule answers identically.
        let (other, clients_b, name_b) = build_cdn(8);
        for i in 0..30u64 {
            let t = SimTime::from_mins(i * 2);
            for (&a, &b) in clients.iter().zip(&clients_b) {
                let ra = cdn.authoritative_answer(&name, a, t);
                let rb = other.authoritative_answer(&name_b, b, t);
                assert_eq!(ra.map(|r| r.a_addresses()), rb.map(|r| r.a_addresses()));
            }
        }
    }

    #[test]
    fn same_epoch_queries_cannot_remap() {
        let (cdn, clients, name) = build_cdn(9);
        // All queries inside one mapping epoch: measured ranking is
        // fixed, so no remap can be detected.
        for i in 0..10u64 {
            let t = SimTime::from_millis(i * 100);
            let _ = cdn.authoritative_answer(&name, clients[0], t);
        }
        assert_eq!(cdn.stats().remap_events, 0);
    }

    #[test]
    fn answers_are_deterministic() {
        let (cdn_a, clients_a, name_a) = build_cdn(6);
        let (cdn_b, clients_b, name_b) = build_cdn(6);
        for i in 0..10u64 {
            let t = SimTime::from_mins(i * 7);
            let ra = cdn_a.authoritative_answer(&name_a, clients_a[2], t);
            let rb = cdn_b.authoritative_answer(&name_b, clients_b[2], t);
            assert_eq!(ra.map(|r| r.a_addresses()), rb.map(|r| r.a_addresses()));
        }
    }

    #[test]
    fn two_customers_use_different_subsets() {
        let (mut cdn, _, _) = build_cdn(7);
        let fox = cdn.add_customer("www.foxnews.com").unwrap();
        assert_ne!(fox, cdn.customers()[0].domain().clone());
        let a = cdn.customers()[0].eligible().to_vec();
        let b = cdn.customers()[1].eligible().to_vec();
        assert_ne!(a, b, "independent subsets expected");
        assert!(cdn.customers()[1]
            .edge_name()
            .to_string()
            .starts_with("a1001."));
    }

    #[test]
    fn duplicate_customer_panics() {
        let (mut cdn, _, _) = build_cdn(8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cdn.add_customer("us.i1.yimg.com");
        }));
        assert!(r.is_err());
    }

    #[test]
    fn stats_count_queries() {
        let (cdn, clients, name) = build_cdn(9);
        for _ in 0..5 {
            let _ = cdn.authoritative_answer(&name, clients[1], SimTime::ZERO);
        }
        assert_eq!(cdn.stats().queries_answered, 5);
        let per: u64 = cdn.per_replica_answers().iter().sum();
        assert_eq!(per, 5 * cdn.config().answers_per_response as u64);
    }

    #[test]
    fn cdn_owned_detection() {
        let (cdn, _, _) = build_cdn(10);
        let fallback = cdn
            .replicas()
            .iter()
            .find(|r| r.is_cdn_owned())
            .expect("fallbacks deployed");
        assert!(cdn.ip_is_cdn_owned(fallback.ip()));
        let edge = cdn
            .replicas()
            .iter()
            .find(|r| !r.is_cdn_owned())
            .expect("edge replicas deployed");
        assert!(!cdn.ip_is_cdn_owned(edge.ip()));
        assert!(!cdn.ip_is_cdn_owned(SimIp::from_index(3)));
    }

    #[test]
    fn outages_divert_traffic_and_expire() {
        let (mut cdn, clients, name) = build_cdn(20);
        // Find the replica the client is currently served by.
        let t0 = SimTime::ZERO;
        let first = cdn
            .authoritative_answer(&name, clients[0], t0)
            .expect("answered")
            .a_addresses();
        let victim = ReplicaId::from_ip(first[0]).expect("replica ip");
        cdn.schedule_outage(victim, SimTime::ZERO, SimTime::from_hours(1));
        assert!(!cdn.replica_is_up(victim, SimTime::from_mins(30)));
        assert!(cdn.replica_is_up(victim, SimTime::from_hours(2)));
        // During the outage, the victim never appears in answers.
        for i in 0..20u64 {
            let t = SimTime::from_mins(i * 3);
            if let Some(resp) = cdn.authoritative_answer(&name, clients[0], t) {
                assert!(
                    !resp.a_addresses().contains(&victim.ip()),
                    "down replica served at {t}"
                );
            }
        }
        // After the outage it may serve again (and does, for its metro).
        let after: Vec<_> = (0..40u64)
            .filter_map(|i| {
                cdn.authoritative_answer(&name, clients[0], SimTime::from_mins(60 + i * 3))
            })
            .flat_map(|r| r.a_addresses())
            .collect();
        assert!(after.contains(&victim.ip()), "replica never returned");
    }

    #[test]
    #[should_panic(expected = "empty outage interval")]
    fn outage_interval_validated() {
        let (mut cdn, _, _) = build_cdn(21);
        let id = cdn.replicas()[0].id();
        cdn.schedule_outage(id, SimTime::from_mins(5), SimTime::from_mins(5));
    }

    #[test]
    fn reserves_are_dormant_until_activated() {
        let mut net = NetworkBuilder::new(30)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let clients = net.add_population(&PopulationSpec::dns_servers(4));
        let mut cdn = Cdn::deploy(
            net,
            &DeploymentSpec::akamai_like(0.2),
            MappingConfig::default(),
        );
        let ids = cdn.deploy_reserve(Region::Europe, 3);
        assert_eq!(ids.len(), 3);
        assert_eq!(cdn.reserve_count(Region::Europe), 3);
        let name = cdn.add_customer("us.i1.yimg.com").unwrap();
        // Dormant: never up, never in answers.
        for &id in &ids {
            assert!(!cdn.replica_is_up(id, SimTime::from_hours(5)));
            assert_eq!(cdn.replica_region(id), Region::Europe);
        }
        let taken = cdn.take_reserves(Region::Europe, 2);
        assert_eq!(taken, ids[..2].to_vec());
        assert_eq!(cdn.reserve_count(Region::Europe), 1);
        let wake = SimTime::from_hours(2);
        for &id in &taken {
            cdn.activate_replica(id, wake);
            assert!(!cdn.replica_is_up(id, SimTime::from_hours(1)));
            assert!(cdn.replica_is_up(id, SimTime::from_hours(3)));
        }
        // Activated reserves can serve; dormant ones never appear.
        let dormant = ids[2];
        for i in 0..30u64 {
            if let Some(resp) = cdn.authoritative_answer(&name, clients[0], SimTime::from_mins(i)) {
                assert!(!resp.a_addresses().contains(&dormant.ip()));
            }
        }
    }

    #[test]
    fn reserves_after_customers_panic() {
        let (mut cdn, _, _) = build_cdn(31);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cdn.deploy_reserve(Region::Europe, 1);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn lb_pool_override_widens_rotation() {
        let (mut cdn, clients, name) = build_cdn(32);
        let change_at = SimTime::from_hours(2);
        cdn.set_load_balance_pool(change_at, 6);
        assert_eq!(cdn.effective_lb_pool(SimTime::from_hours(1)), 2);
        assert_eq!(cdn.effective_lb_pool(SimTime::from_hours(3)), 6);
        let distinct_in = |cdn: &Cdn, base: SimTime| {
            let mut seen = std::collections::BTreeSet::new();
            for i in 0..60u64 {
                let t = base + SimDuration::from_secs(i * 30);
                if let Some(resp) = cdn.authoritative_answer(&name, clients[0], t) {
                    seen.extend(resp.a_addresses());
                }
            }
            seen.len()
        };
        let before = distinct_in(&cdn, SimTime::ZERO);
        let after = distinct_in(&cdn, SimTime::from_hours(3));
        assert!(
            after > before,
            "wider pool should rotate more replicas: before={before} after={after}"
        );
    }

    #[test]
    fn measurement_penalty_routes_around_replica() {
        let (mut cdn, clients, name) = build_cdn(33);
        let first = cdn
            .authoritative_answer(&name, clients[0], SimTime::ZERO)
            .expect("answered")
            .a_addresses();
        let victim = ReplicaId::from_ip(first[0]).expect("replica ip");
        cdn.add_measurement_penalty(victim, SimTime::from_hours(1), SimTime::from_hours(2), 50.0);
        // During the penalty the victim measures 50x slower, so the
        // load balancer stops handing it out.
        for i in 0..20u64 {
            let t = SimTime::from_hours(1) + SimDuration::from_mins(i * 3);
            if let Some(resp) = cdn.authoritative_answer(&name, clients[0], t) {
                assert!(
                    !resp.a_addresses().contains(&victim.ip()),
                    "overloaded replica still served at {t}"
                );
            }
        }
        // After it subsides (same route epoch, so the baseline ranking
        // still holds) the replica serves again.
        let after: Vec<_> = (0..40u64)
            .filter_map(|i| {
                let t = SimTime::from_hours(2) + SimDuration::from_mins(i * 3);
                cdn.authoritative_answer(&name, clients[0], t)
            })
            .flat_map(|r| r.a_addresses())
            .collect();
        assert!(after.contains(&victim.ip()), "replica never recovered");
    }

    #[test]
    fn remap_observer_capacity_bounds_table() {
        let (mut cdn, clients, name) = build_cdn(34);
        cdn.set_remap_observer_capacity(2);
        for i in 0..4u64 {
            let t = SimTime::from_mins(i * 2);
            for &client in &clients {
                let _ = cdn.authoritative_answer(&name, client, t);
            }
        }
        assert_eq!(cdn.remap_observer_len(), 2);
        assert_eq!(cdn.remap_observer_capacity(), 2);
        let stats = cdn.stats();
        assert!(
            stats.remap_observer_dropped > 0,
            "pairs beyond capacity must be counted: {stats:?}"
        );
        assert!(cdn.remap_observer_footprint() > 0);
    }

    #[test]
    fn poorly_covered_clients_get_fallbacks_or_scatter() {
        // Deploy only in North America so other regions are badly served.
        let mut net = NetworkBuilder::new(11)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let far = net.add_population(&PopulationSpec::single_region(
            crp_netsim::HostProfile::DnsServer,
            4,
            Region::Africa,
        ));
        let spec = DeploymentSpec::custom(vec![(Region::NorthAmerica, 20)], 4);
        let mut cdn = Cdn::deploy(net, &spec, MappingConfig::default());
        let name = cdn.add_customer("us.i1.yimg.com").unwrap();
        for &client in &far {
            for i in 0..10u64 {
                let _ = cdn.authoritative_answer(&name, client, SimTime::from_mins(i * 3));
            }
        }
        let stats = cdn.stats();
        assert!(
            stats.fallback_answers + stats.scattered_answers > 0,
            "distant clients should trigger the coverage path: {stats:?}"
        );
    }
}
