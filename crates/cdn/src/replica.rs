//! Replica servers.

use crp_dns::SimIp;
use crp_netsim::HostId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base of the IP index range allocated to replica servers, so replica
/// addresses never collide with anything else in the simulation.
const REPLICA_IP_BASE: u32 = 1 << 16;

/// Identifier of a CDN replica server (dense, deployment order).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(u32);

impl ReplicaId {
    /// Creates an id from a dense index.
    pub fn from_index(index: u32) -> Self {
        ReplicaId(index)
    }

    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable 64-bit key for noise derivation.
    pub fn key(self) -> u64 {
        self.0 as u64
    }

    /// The address this replica answers from.
    pub fn ip(self) -> SimIp {
        SimIp::from_index(REPLICA_IP_BASE + self.0)
    }

    /// Recovers the replica id from an address previously produced by
    /// [`ReplicaId::ip`], or `None` if the address is not a replica
    /// address.
    pub fn from_ip(ip: SimIp) -> Option<ReplicaId> {
        ip.index().checked_sub(REPLICA_IP_BASE).map(ReplicaId)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A deployed replica server: a host in the network plus CDN metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicaServer {
    id: ReplicaId,
    host: HostId,
    cdn_owned: bool,
}

impl ReplicaServer {
    pub(crate) fn new(id: ReplicaId, host: HostId, cdn_owned: bool) -> Self {
        ReplicaServer {
            id,
            host,
            cdn_owned,
        }
    }

    /// Identifier of the replica.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The network host this replica runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The replica's address.
    pub fn ip(&self) -> SimIp {
        self.id.ip()
    }

    /// Whether the address belongs to the CDN's own block rather than a
    /// partner ISP.
    ///
    /// The paper observes that Akamai-owned addresses are typically
    /// distant fallback servers, and proposes filtering names that return
    /// them (§VI); this flag is the simulation analogue of a whois check
    /// on the returned address.
    pub fn is_cdn_owned(&self) -> bool {
        self.cdn_owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_round_trips_through_from_ip() {
        for i in [0u32, 1, 255, 4_000] {
            let id = ReplicaId::from_index(i);
            assert_eq!(ReplicaId::from_ip(id.ip()), Some(id));
        }
    }

    #[test]
    fn non_replica_ip_maps_to_none() {
        assert_eq!(ReplicaId::from_ip(SimIp::from_index(5)), None);
    }

    #[test]
    fn display_forms() {
        let id = ReplicaId::from_index(3);
        assert_eq!(id.to_string(), "r3");
        assert_eq!(id.ip().to_string(), "10.1.0.3");
    }
}
