//! Replica fleet deployment: how many replicas go where.
//!
//! Akamai's coverage is famously uneven: dense in North America, Europe
//! and parts of East Asia, thin in Oceania, South America, Africa and
//! parts of Asia. That unevenness is load-bearing for the paper — poorly
//! served clients are exactly the ones in the bad tails of Figs. 4–5 —
//! so the deployment spec makes it explicit and tunable.

use crp_netsim::Region;
use serde::{Deserialize, Serialize};

/// A deployment recipe: replicas per region, plus a handful of global
/// fallback servers on CDN-owned addresses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeploymentSpec {
    per_region: Vec<(Region, usize)>,
    fallback_count: usize,
}

impl DeploymentSpec {
    /// An Akamai-like footprint, scaled by `scale` (1.0 ≈ 730 replicas).
    ///
    /// Coverage density mirrors the deployment skew the paper describes:
    /// heavy in North America and Europe, moderate in East Asia, sparse
    /// everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite number.
    pub fn akamai_like(scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let n = |base: f64| ((base * scale).round() as usize).max(1);
        DeploymentSpec {
            per_region: vec![
                (Region::NorthAmerica, n(320.0)),
                (Region::Europe, n(230.0)),
                (Region::EastAsia, n(160.0)),
                (Region::Oceania, n(4.0)),
                (Region::SouthAmerica, n(4.0)),
                (Region::SouthAsia, n(2.0)),
                (Region::MiddleEast, n(2.0)),
                (Region::Africa, n(1.0)),
            ],
            fallback_count: 12,
        }
    }

    /// A uniform footprint (every region equally served), useful for
    /// ablating the coverage model.
    pub fn uniform(per_region: usize) -> Self {
        assert!(per_region > 0, "need at least one replica per region");
        DeploymentSpec {
            per_region: Region::ALL.iter().map(|r| (*r, per_region)).collect(),
            fallback_count: 6,
        }
    }

    /// A custom footprint.
    ///
    /// # Panics
    ///
    /// Panics if no region receives a replica.
    pub fn custom(per_region: Vec<(Region, usize)>, fallback_count: usize) -> Self {
        assert!(
            per_region.iter().any(|(_, n)| *n > 0),
            "deployment must contain at least one replica"
        );
        DeploymentSpec {
            per_region,
            fallback_count,
        }
    }

    /// Replica counts per region.
    pub fn per_region(&self) -> &[(Region, usize)] {
        &self.per_region
    }

    /// Number of global fallback servers (CDN-owned addresses).
    pub fn fallback_count(&self) -> usize {
        self.fallback_count
    }

    /// Total replica count including fallbacks.
    pub fn total(&self) -> usize {
        self.per_region.iter().map(|(_, n)| n).sum::<usize>() + self.fallback_count
    }

    /// Replicas deployed in `region` (excluding fallbacks).
    pub fn count_in(&self, region: Region) -> usize {
        self.per_region
            .iter()
            .filter(|(r, _)| *r == region)
            .map(|(_, n)| n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn akamai_like_scales() {
        let full = DeploymentSpec::akamai_like(1.0);
        let half = DeploymentSpec::akamai_like(0.5);
        assert!(full.total() > half.total());
        assert!(full.count_in(Region::NorthAmerica) > full.count_in(Region::Africa));
    }

    #[test]
    fn akamai_like_total_near_730() {
        let spec = DeploymentSpec::akamai_like(1.0);
        let t = spec.total();
        assert!((650..800).contains(&t), "total {t}");
    }

    #[test]
    fn every_region_gets_at_least_one() {
        let spec = DeploymentSpec::akamai_like(0.05);
        for r in Region::ALL {
            assert!(spec.count_in(r) >= 1, "{r} empty");
        }
    }

    #[test]
    fn uniform_is_uniform() {
        let spec = DeploymentSpec::uniform(5);
        for r in Region::ALL {
            assert_eq!(spec.count_in(r), 5);
        }
        assert_eq!(spec.total(), 5 * 8 + 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_scale() {
        let _ = DeploymentSpec::akamai_like(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn custom_rejects_empty() {
        let _ = DeploymentSpec::custom(vec![(Region::Europe, 0)], 0);
    }
}
