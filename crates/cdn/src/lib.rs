//! An Akamai-like CDN substrate for the CRP reproduction.
//!
//! The paper drives CRP with redirections observed from the Akamai CDN:
//! thousands of replica servers deployed with very uneven regional
//! density, a DNS mapping system that directs each *resolver* to nearby
//! replicas based on the CDN's own latency measurements, low answer TTLs
//! (~20 s), and load balancing that rotates answers among the top few
//! candidates. All of those properties matter to CRP:
//!
//! * latency-driven redirection is the paper's core premise ("CDN
//!   redirections are primarily driven by network conditions", their
//!   SIGCOMM'06 study);
//! * answer rotation is what makes *ratio maps* informative rather than a
//!   single constant;
//! * uneven coverage creates the poorly-served clients in the tails of
//!   Fig. 4 (e.g. the New Zealand DNS server redirected to replicas in
//!   Massachusetts, Tennessee and Japan);
//! * distant "CDN-owned" fallback answers motivate the §VI filtering
//!   rule.
//!
//! [`Cdn`] implements [`crp_dns::AuthoritativeServer`], so a
//! [`crp_dns::RecursiveResolver`] can be pointed straight at it.
//!
//! # Example
//!
//! ```
//! use crp_cdn::{Cdn, DeploymentSpec, MappingConfig};
//! use crp_dns::{AuthoritativeServer, RecursiveResolver};
//! use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
//!
//! let mut net = NetworkBuilder::new(7).build();
//! let clients = net.add_population(&PopulationSpec::dns_servers(3));
//! let mut cdn = Cdn::deploy(net, &DeploymentSpec::akamai_like(0.5), MappingConfig::default());
//! let yahoo = cdn.add_customer("us.i1.yimg.com")?;
//!
//! let mut resolver = RecursiveResolver::new(clients[0]);
//! let resp = resolver.resolve(&yahoo, &cdn, SimTime::ZERO)?;
//! assert!(!resp.a_addresses().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cdn;
pub mod customer;
pub mod deployment;
pub mod events;
pub mod mapping;
pub mod replica;

pub use cdn::{Cdn, CdnStats};
pub use customer::Customer;
pub use deployment::DeploymentSpec;
pub use events::{EventClass, EventKind, EventLog, EventRecord, EventScript, EventSpec};
pub use mapping::MappingConfig;
pub use replica::{ReplicaId, ReplicaServer};
