//! CDN customers ("CDN names" in the paper).
//!
//! A customer is a DNS name accelerated by the CDN (the paper used the
//! Yahoo image server `us.i1.yimg.com` and `www.foxnews.com`). Each
//! customer is served from its own subset of the replica fleet — real
//! CDNs partition capacity per contract — which is why probing two
//! customer names gives a CRP client a richer redirection view than one.

use crate::replica::ReplicaId;
use crp_dns::DomainName;
use serde::{Deserialize, Serialize};

/// A customer name hosted on the CDN.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Customer {
    domain: DomainName,
    edge_name: DomainName,
    eligible: Vec<ReplicaId>,
}

impl Customer {
    pub(crate) fn new(domain: DomainName, edge_name: DomainName, eligible: Vec<ReplicaId>) -> Self {
        assert!(!eligible.is_empty(), "customer needs at least one replica");
        Customer {
            domain,
            edge_name,
            eligible,
        }
    }

    /// The public name content providers hand out (`www.foxnews.com`).
    pub fn domain(&self) -> &DomainName {
        &self.domain
    }

    /// The CDN edge name the public name aliases to
    /// (`a1000.g.akamai.net`).
    pub fn edge_name(&self) -> &DomainName {
        &self.edge_name
    }

    /// The replicas eligible to serve this customer.
    pub fn eligible(&self) -> &[ReplicaId] {
        &self.eligible
    }
}
