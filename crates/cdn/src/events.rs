//! Scripted CDN infrastructure events and their ground-truth log.
//!
//! The paper reads CDN redirections as a passive lens on infrastructure;
//! YouLighter-style change detection needs that infrastructure to
//! actually *change*. An [`EventScript`] is a SimTime-ordered timeline of
//! the event kinds worth detecting — regional replica-pool flips,
//! datacenter outages and recoveries, load-balancer policy changes,
//! flash crowds, and gradual footprint expansion — applied to a [`Cdn`]
//! before a campaign runs. Applying a script emits a ground-truth
//! [`EventLog`] (when, where, which replicas) that the change-detection
//! evaluation matches detections against.
//!
//! Everything here is deterministic: victim replicas are chosen in
//! deployment order, reserves are consumed in deployment order, and the
//! log is sorted by event time.

use crate::cdn::Cdn;
use crate::replica::ReplicaId;
use crp_netsim::{Region, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The taxonomy of scripted infrastructure events. Recovery is its own
/// class: an outage ending re-maps clients a second time, and the
/// detector should account for both shifts.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventClass {
    /// A fraction of a region's pool is retired and replaced by fresh
    /// reserves.
    RegionalPoolFlip,
    /// A fraction of a region's pool goes dark for a bounded interval.
    DatacenterOutage,
    /// The outage ends; the dark replicas serve again.
    DatacenterRecovery,
    /// The global load-balance pool width changes.
    LoadBalancerPolicyChange,
    /// A fraction of a region's pool is overloaded for a bounded
    /// interval, measuring slower and shedding traffic.
    FlashCrowd,
    /// Fresh reserves come online in a region, in staggered batches.
    FootprintExpansion,
}

impl EventClass {
    /// All classes, for iteration in reports.
    pub const ALL: [EventClass; 6] = [
        EventClass::RegionalPoolFlip,
        EventClass::DatacenterOutage,
        EventClass::DatacenterRecovery,
        EventClass::LoadBalancerPolicyChange,
        EventClass::FlashCrowd,
        EventClass::FootprintExpansion,
    ];

    /// Stable lowercase label used in artifacts and tables.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::RegionalPoolFlip => "regional_pool_flip",
            EventClass::DatacenterOutage => "datacenter_outage",
            EventClass::DatacenterRecovery => "datacenter_recovery",
            EventClass::LoadBalancerPolicyChange => "load_balancer_policy_change",
            EventClass::FlashCrowd => "flash_crowd",
            EventClass::FootprintExpansion => "footprint_expansion",
        }
    }
}

/// What a scripted event does, with its parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Retire `fraction` of the region's serving pool and activate up to
    /// as many reserves in its place.
    RegionalPoolFlip {
        /// Region whose pool flips.
        region: Region,
        /// Fraction of the serving pool retired (0, 1].
        fraction: f64,
    },
    /// Take `fraction` of the region's serving pool down for
    /// `duration`; a recovery record is logged when it ends.
    DatacenterOutage {
        /// Region that goes dark.
        region: Region,
        /// Fraction of the serving pool affected (0, 1].
        fraction: f64,
        /// How long the outage lasts.
        duration: SimDuration,
    },
    /// Change the global load-balance pool width.
    LoadBalancerPolicyChange {
        /// New pool width.
        pool: usize,
    },
    /// Overload `fraction` of the region's serving pool by `factor` for
    /// `duration` — measurements inflate, traffic shifts away, then
    /// returns.
    FlashCrowd {
        /// Region under the flash crowd.
        region: Region,
        /// Fraction of the serving pool overloaded (0, 1].
        fraction: f64,
        /// Multiplicative measurement inflation (> 1 to overload).
        factor: f64,
        /// How long the overload lasts.
        duration: SimDuration,
    },
    /// Activate `replicas` reserves in `batches` staggered batches.
    FootprintExpansion {
        /// Region being built out.
        region: Region,
        /// Total reserves to activate.
        replicas: usize,
        /// Number of activation batches (>= 1).
        batches: usize,
        /// Spacing between batches.
        stagger: SimDuration,
    },
}

/// One scheduled event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventSpec {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub kind: EventKind,
}

/// A ground-truth record of one applied event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// When the event took effect (SimTime ms).
    pub at_ms: u64,
    /// When its direct effect ended (equals `at_ms` for instantaneous
    /// events; outage end, flash-crowd end, last expansion batch
    /// otherwise).
    pub until_ms: u64,
    /// Event class.
    pub class: EventClass,
    /// Region slug, or `"global"` for region-less events.
    pub region: String,
    /// Replica ids affected (empty for policy changes).
    pub replicas: Vec<u64>,
    /// Human-readable parameters.
    pub detail: String,
}

/// The ground-truth log of an applied script, sorted by `at_ms`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    /// Applied-event records in time order.
    pub records: Vec<EventRecord>,
}

impl EventLog {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one class.
    pub fn of_class(&self, class: EventClass) -> impl Iterator<Item = &EventRecord> {
        self.records.iter().filter(move |r| r.class == class)
    }
}

/// A SimTime-ordered script of infrastructure events plus the reserve
/// pools they consume.
///
/// Usage is two-phase, mirroring CDN construction: [`stage`] deploys the
/// dormant reserve pools (before customers register, so eligibility and
/// shortlists cover them), then [`apply`] fires every event into the
/// [`Cdn`] and returns the ground-truth [`EventLog`].
///
/// [`stage`]: EventScript::stage
/// [`apply`]: EventScript::apply
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventScript {
    events: Vec<EventSpec>,
    reserves: Vec<(Region, usize)>,
}

impl EventScript {
    /// An empty script.
    pub fn new() -> Self {
        EventScript::default()
    }

    /// Adds a dormant reserve pool for `region` (builder style).
    #[must_use]
    pub fn with_reserve(mut self, region: Region, count: usize) -> Self {
        self.reserves.push((region, count));
        self
    }

    /// Schedules `kind` at `at` (builder style).
    #[must_use]
    pub fn at(mut self, at: SimTime, kind: EventKind) -> Self {
        self.events.push(EventSpec { at, kind });
        self
    }

    /// The scheduled events, in schedule order.
    pub fn events(&self) -> &[EventSpec] {
        &self.events
    }

    /// The reserve pools the script will stage.
    pub fn reserves(&self) -> &[(Region, usize)] {
        &self.reserves
    }

    /// Whether the script schedules nothing and stages nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.reserves.is_empty()
    }

    /// The default change-detection suite: one event of every class,
    /// spread over `horizon` with enough quiet time between events for a
    /// detector to see each one in isolation. Event magnitudes are
    /// fractions of the (scale-dependent) serving pools, so the suite
    /// works at any deployment scale.
    pub fn standard_suite(horizon: SimTime) -> Self {
        let ms = horizon.as_millis();
        let frac = |num: u64, den: u64| SimTime::from_millis(ms * num / den);
        let dur = |num: u64, den: u64| SimDuration::from_millis(ms * num / den);
        EventScript::new()
            .with_reserve(Region::Europe, 24)
            .with_reserve(Region::Oceania, 8)
            .at(
                frac(1, 4),
                EventKind::RegionalPoolFlip {
                    region: Region::Europe,
                    fraction: 0.5,
                },
            )
            .at(
                frac(3, 8),
                EventKind::DatacenterOutage {
                    region: Region::NorthAmerica,
                    fraction: 0.6,
                    duration: dur(1, 12),
                },
            )
            .at(
                frac(9, 16),
                EventKind::LoadBalancerPolicyChange { pool: 12 },
            )
            .at(
                frac(11, 16),
                EventKind::FlashCrowd {
                    region: Region::EastAsia,
                    fraction: 0.6,
                    factor: 4.0,
                    duration: dur(1, 8),
                },
            )
            .at(
                frac(13, 16),
                EventKind::FootprintExpansion {
                    region: Region::Oceania,
                    replicas: 8,
                    batches: 2,
                    stagger: dur(1, 48),
                },
            )
    }

    /// Deploys the script's dormant reserve pools into `cdn`.
    ///
    /// # Panics
    ///
    /// Panics if customers are already registered (see
    /// [`Cdn::deploy_reserve`]).
    pub fn stage(&self, cdn: &mut Cdn) {
        for (region, count) in &self.reserves {
            let _ = cdn.deploy_reserve(*region, *count);
        }
    }

    /// Fires every scheduled event into `cdn`, in time order, and
    /// returns the ground-truth log. Requires [`stage`] to have run if
    /// the script uses reserves.
    ///
    /// [`stage`]: EventScript::stage
    ///
    /// # Panics
    ///
    /// Panics if an event's parameters are out of range (fractions
    /// outside `(0, 1]`, zero batches) or a region has no serving
    /// replicas to affect.
    pub fn apply(&self, cdn: &mut Cdn) -> EventLog {
        let mut ordered: Vec<&EventSpec> = self.events.iter().collect();
        ordered.sort_by_key(|e| e.at);
        let mut records = Vec::new();
        for spec in ordered {
            apply_event(cdn, spec, &mut records);
            if crp_telemetry::trace::enabled() {
                // Every applied event mints a causal trace so the change
                // a detector later flags can be walked back to the
                // scripted cause. Deterministic id: seed + fire time.
                let id =
                    crp_telemetry::trace::mint(&[cdn.network().seed(), 0x45, spec.at.as_millis()]);
                crp_telemetry::trace::begin(id, spec.at.as_millis(), "cdn.event");
            }
            crp_telemetry::counter_add_at(spec.at.as_millis(), "cdn.events.applied", 1);
        }
        records.sort_by_key(|r: &EventRecord| (r.at_ms, r.class));
        EventLog { records }
    }
}

/// Deterministically selects the first `fraction` of the region's
/// serving pool (deployment order) as event victims.
fn victims(cdn: &Cdn, region: Region, at: SimTime, fraction: f64) -> Vec<ReplicaId> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "event fraction must be in (0, 1]"
    );
    let pool = cdn.serving_region_replicas(region, at);
    assert!(
        !pool.is_empty(),
        "no serving replicas in {region} at {at} to affect"
    );
    let n = ((pool.len() as f64 * fraction).round() as usize).clamp(1, pool.len());
    pool[..n].to_vec() // crp-lint: allow(CRP010) — n is clamped to pool.len() on the line above
}

fn ids(replicas: &[ReplicaId]) -> Vec<u64> {
    replicas.iter().map(|r| r.index() as u64).collect()
}

fn apply_event(cdn: &mut Cdn, spec: &EventSpec, records: &mut Vec<EventRecord>) {
    let at = spec.at;
    match &spec.kind {
        EventKind::RegionalPoolFlip { region, fraction } => {
            let out = victims(cdn, *region, at, *fraction);
            for &r in &out {
                cdn.retire_replica(r, at);
            }
            let incoming = cdn.take_reserves(*region, out.len());
            for &r in &incoming {
                cdn.activate_replica(r, at);
            }
            let mut affected = ids(&out);
            affected.extend(ids(&incoming));
            records.push(EventRecord {
                at_ms: at.as_millis(),
                until_ms: at.as_millis(),
                class: EventClass::RegionalPoolFlip,
                region: region.slug().to_owned(),
                replicas: affected,
                detail: format!(
                    "retired {} replicas, activated {} reserves",
                    out.len(),
                    incoming.len()
                ),
            });
        }
        EventKind::DatacenterOutage {
            region,
            fraction,
            duration,
        } => {
            let out = victims(cdn, *region, at, *fraction);
            let until = at + *duration;
            for &r in &out {
                cdn.schedule_outage(r, at, until);
            }
            records.push(EventRecord {
                at_ms: at.as_millis(),
                until_ms: until.as_millis(),
                class: EventClass::DatacenterOutage,
                region: region.slug().to_owned(),
                replicas: ids(&out),
                detail: format!("{} replicas dark for {}", out.len(), duration),
            });
            records.push(EventRecord {
                at_ms: until.as_millis(),
                until_ms: until.as_millis(),
                class: EventClass::DatacenterRecovery,
                region: region.slug().to_owned(),
                replicas: ids(&out),
                detail: format!("{} replicas back up", out.len()),
            });
        }
        EventKind::LoadBalancerPolicyChange { pool } => {
            cdn.set_load_balance_pool(at, *pool);
            records.push(EventRecord {
                at_ms: at.as_millis(),
                until_ms: at.as_millis(),
                class: EventClass::LoadBalancerPolicyChange,
                region: "global".to_owned(),
                replicas: Vec::new(),
                detail: format!("load-balance pool -> {pool}"),
            });
        }
        EventKind::FlashCrowd {
            region,
            fraction,
            factor,
            duration,
        } => {
            let out = victims(cdn, *region, at, *fraction);
            let until = at + *duration;
            for &r in &out {
                cdn.add_measurement_penalty(r, at, until, *factor);
            }
            records.push(EventRecord {
                at_ms: at.as_millis(),
                until_ms: until.as_millis(),
                class: EventClass::FlashCrowd,
                region: region.slug().to_owned(),
                replicas: ids(&out),
                detail: format!(
                    "{} replicas overloaded {factor}x for {}",
                    out.len(),
                    duration
                ),
            });
        }
        EventKind::FootprintExpansion {
            region,
            replicas,
            batches,
            stagger,
        } => {
            assert!(*batches >= 1, "expansion needs at least one batch");
            let fresh = cdn.take_reserves(*region, *replicas);
            assert!(
                !fresh.is_empty(),
                "no reserves staged in {region} for expansion"
            );
            let per_batch = fresh.len().div_ceil(*batches);
            let mut last = at;
            for (i, chunk) in fresh.chunks(per_batch.max(1)).enumerate() {
                let when = at + SimDuration::from_millis(stagger.as_millis() * i as u64);
                for &r in chunk {
                    cdn.activate_replica(r, when);
                }
                last = when;
            }
            records.push(EventRecord {
                at_ms: at.as_millis(),
                until_ms: last.as_millis(),
                class: EventClass::FootprintExpansion,
                region: region.slug().to_owned(),
                replicas: ids(&fresh),
                detail: format!("{} reserves activated in {batches} batches", fresh.len()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentSpec;
    use crate::mapping::MappingConfig;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn staged_cdn(script: &EventScript) -> Cdn {
        let mut net = NetworkBuilder::new(50)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let _clients = net.add_population(&PopulationSpec::dns_servers(6));
        let mut cdn = Cdn::deploy(
            net,
            &DeploymentSpec::akamai_like(0.5),
            MappingConfig::default(),
        );
        script.stage(&mut cdn);
        let _ = cdn.add_customer("us.i1.yimg.com").unwrap();
        cdn
    }

    #[test]
    fn standard_suite_covers_every_class() {
        let script = EventScript::standard_suite(SimTime::from_hours(48));
        let mut cdn = staged_cdn(&script);
        let log = script.apply(&mut cdn);
        for class in EventClass::ALL {
            assert_eq!(
                log.of_class(class).count(),
                1,
                "expected exactly one {} record",
                class.label()
            );
        }
        assert_eq!(log.len(), 6);
        // Sorted by time.
        assert!(log.records.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn pool_flip_swaps_serving_set() {
        let script = EventScript::new().with_reserve(Region::Europe, 4).at(
            SimTime::from_hours(6),
            EventKind::RegionalPoolFlip {
                region: Region::Europe,
                fraction: 0.25,
            },
        );
        let mut cdn = staged_cdn(&script);
        let before = cdn.serving_region_replicas(Region::Europe, SimTime::from_hours(1));
        let log = script.apply(&mut cdn);
        let after = cdn.serving_region_replicas(Region::Europe, SimTime::from_hours(7));
        let record = &log.records[0];
        assert_eq!(record.class, EventClass::RegionalPoolFlip);
        assert_eq!(record.region, "europe");
        // Retired replicas no longer serve; activated reserves do.
        let retired = (before.len() as f64 * 0.25).round() as usize;
        for &r in &before[..retired] {
            assert!(!after.contains(&r), "retired replica {r:?} still serving");
        }
        assert_eq!(after.len(), before.len() - retired + retired.min(4));
    }

    #[test]
    fn outage_logs_recovery_record() {
        let script = EventScript::new().at(
            SimTime::from_hours(4),
            EventKind::DatacenterOutage {
                region: Region::NorthAmerica,
                fraction: 0.3,
                duration: SimDuration::from_hours(2),
            },
        );
        let mut cdn = staged_cdn(&script);
        let log = script.apply(&mut cdn);
        assert_eq!(log.len(), 2);
        let outage = &log.records[0];
        let recovery = &log.records[1];
        assert_eq!(outage.class, EventClass::DatacenterOutage);
        assert_eq!(recovery.class, EventClass::DatacenterRecovery);
        assert_eq!(recovery.at_ms, outage.until_ms);
        assert_eq!(outage.replicas, recovery.replicas);
        let victim = ReplicaId::from_index(outage.replicas[0] as u32);
        assert!(!cdn.replica_is_up(victim, SimTime::from_hours(5)));
        assert!(cdn.replica_is_up(victim, SimTime::from_hours(7)));
    }

    #[test]
    fn expansion_activates_in_batches() {
        let script = EventScript::new().with_reserve(Region::Oceania, 6).at(
            SimTime::from_hours(10),
            EventKind::FootprintExpansion {
                region: Region::Oceania,
                replicas: 6,
                batches: 3,
                stagger: SimDuration::from_hours(1),
            },
        );
        let mut cdn = staged_cdn(&script);
        let log = script.apply(&mut cdn);
        let record = &log.records[0];
        assert_eq!(record.replicas.len(), 6);
        assert_eq!(record.until_ms, SimTime::from_hours(12).as_millis());
        let first = ReplicaId::from_index(record.replicas[0] as u32);
        let last = ReplicaId::from_index(record.replicas[5] as u32);
        assert!(cdn.replica_is_up(first, SimTime::from_hours(10)));
        assert!(!cdn.replica_is_up(last, SimTime::from_hours(11)));
        assert!(cdn.replica_is_up(last, SimTime::from_hours(12)));
    }

    #[test]
    fn apply_is_deterministic() {
        let script = EventScript::standard_suite(SimTime::from_hours(48));
        let mut a = staged_cdn(&script);
        let mut b = staged_cdn(&script);
        assert_eq!(script.apply(&mut a), script.apply(&mut b));
    }

    #[test]
    fn record_round_trips_through_json() {
        let script = EventScript::standard_suite(SimTime::from_hours(48));
        let mut cdn = staged_cdn(&script);
        let log = script.apply(&mut cdn);
        let text = serde_json::to_string(&log).expect("serialize");
        let value = serde_json::parse(&text).expect("parse");
        let back = EventLog::from_value(&value).expect("shape");
        assert_eq!(back, log);
    }

    #[test]
    #[should_panic(expected = "fraction must be")]
    fn bad_fraction_rejected() {
        let script = EventScript::new().at(
            SimTime::from_hours(1),
            EventKind::FlashCrowd {
                region: Region::Europe,
                fraction: 1.5,
                factor: 2.0,
                duration: SimDuration::from_hours(1),
            },
        );
        let mut cdn = staged_cdn(&script);
        let _ = script.apply(&mut cdn);
    }
}
