//! Property-based tests for the CDN substrate.

use crp_cdn::{Cdn, DeploymentSpec, MappingConfig, ReplicaId};
use crp_dns::AuthoritativeServer;
use crp_netsim::{NetworkBuilder, PopulationSpec, Region, SimTime};
use proptest::prelude::*;

fn build_world(seed: u64, clients: usize) -> (Cdn, Vec<crp_netsim::HostId>, crp_dns::DomainName) {
    let mut net = NetworkBuilder::new(seed)
        .tier1_count(3)
        .transit_per_region(1)
        .stubs_per_region(3)
        .build();
    let hosts = net.add_population(&PopulationSpec::dns_servers(clients));
    let mut cdn = Cdn::deploy(
        net,
        &DeploymentSpec::akamai_like(0.2),
        MappingConfig::default(),
    );
    let name = cdn.add_customer("us.i1.yimg.com").expect("valid name");
    (cdn, hosts, name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn answers_are_wellformed_for_any_client_and_time(
        seed in 0u64..30,
        client_idx in 0usize..4,
        t_mins in 0u64..5_000,
    ) {
        let (cdn, hosts, name) = build_world(seed, 4);
        let t = SimTime::from_mins(t_mins);
        let resp = cdn
            .authoritative_answer(&name, hosts[client_idx], t)
            .expect("registered names always resolve");
        let ips = resp.a_addresses();
        prop_assert_eq!(ips.len(), cdn.config().answers_per_response);
        for ip in &ips {
            // Every answer is a deployed replica eligible for the
            // customer (or a fallback).
            let replica = cdn.replica_by_ip(*ip).expect("answers are replicas");
            let eligible = cdn.customers()[0]
                .eligible()
                .contains(&ReplicaId::from_ip(*ip).expect("replica ip"));
            prop_assert!(eligible || replica.is_cdn_owned());
        }
        // TTL matches the configured answer TTL.
        prop_assert_eq!(
            resp.min_ttl().as_millis(),
            cdn.config().answer_ttl_secs * 1_000
        );
    }

    #[test]
    fn answers_are_deterministic_across_rebuilds(
        seed in 0u64..20,
        t_mins in 0u64..2_000,
    ) {
        let (cdn_a, hosts_a, name_a) = build_world(seed, 2);
        let (cdn_b, hosts_b, name_b) = build_world(seed, 2);
        let t = SimTime::from_mins(t_mins);
        let ra = cdn_a.authoritative_answer(&name_a, hosts_a[0], t).map(|r| r.a_addresses());
        let rb = cdn_b.authoritative_answer(&name_b, hosts_b[0], t).map(|r| r.a_addresses());
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn redirections_prefer_nearby_replicas(seed in 0u64..12) {
        let (cdn, hosts, name) = build_world(seed, 2);
        let net = cdn.network();
        let client = hosts[0];
        // Collect answers over several epochs.
        let mut seen_ms = Vec::new();
        for i in 0..24u64 {
            if let Some(resp) = cdn.authoritative_answer(&name, client, SimTime::from_mins(i * 5)) {
                for ip in resp.a_addresses() {
                    let replica = cdn.replica_by_ip(ip).expect("replica");
                    if !replica.is_cdn_owned() {
                        seen_ms.push(net.baseline_rtt(client, replica.host()).millis());
                    }
                }
            }
        }
        prop_assume!(!seen_ms.is_empty());
        let mean_seen = seen_ms.iter().sum::<f64>() / seen_ms.len() as f64;
        let mean_all: f64 = cdn
            .replicas()
            .iter()
            .filter(|r| !r.is_cdn_owned())
            .map(|r| net.baseline_rtt(client, r.host()).millis())
            .sum::<f64>()
            / cdn.replicas().iter().filter(|r| !r.is_cdn_owned()).count() as f64;
        prop_assert!(
            mean_seen <= mean_all,
            "redirections ({mean_seen:.1}ms) no better than random ({mean_all:.1}ms)"
        );
    }

    #[test]
    fn replica_ip_mapping_is_bijective(index in 0u32..100_000) {
        let id = ReplicaId::from_index(index);
        prop_assert_eq!(ReplicaId::from_ip(id.ip()), Some(id));
    }

    // DeploymentSpec::custom is now load-bearing for event scripting
    // (reserve staging derives region pools from it), so its accounting
    // identities get property coverage: totals are sums, `count_in`
    // honors duplicate entries, and zero-fallback specs are legal.

    #[test]
    fn custom_spec_accounting_identities(
        entries in prop::collection::vec((0usize..8, 0usize..40), 1..12),
        fallback in 0usize..20,
    ) {
        let per_region: Vec<(Region, usize)> = entries
            .iter()
            .map(|(r, n)| (Region::ALL[*r], *n))
            .collect();
        let edge_total: usize = per_region.iter().map(|(_, n)| n).sum();
        prop_assume!(edge_total > 0);
        let spec = DeploymentSpec::custom(per_region.clone(), fallback);
        // Total is the sum of all entries plus fallbacks.
        prop_assert_eq!(spec.total(), edge_total + fallback);
        prop_assert_eq!(spec.fallback_count(), fallback);
        // count_in sums duplicate entries for the same region...
        for region in Region::ALL {
            let expect: usize = per_region
                .iter()
                .filter(|(r, _)| *r == region)
                .map(|(_, n)| n)
                .sum();
            prop_assert_eq!(spec.count_in(region), expect);
        }
        // ...and the per-region counts partition the edge total.
        let partition: usize = Region::ALL.iter().map(|r| spec.count_in(*r)).sum();
        prop_assert_eq!(partition, edge_total);
    }

    #[test]
    fn custom_spec_rejects_all_zero_entries(
        regions in prop::collection::vec(0usize..8, 0..6),
        fallback in 0usize..20,
    ) {
        // Any mix of zero-count entries (or none at all) must panic, no
        // matter how many fallbacks: fallbacks alone are not a fleet.
        let per_region: Vec<(Region, usize)> =
            regions.iter().map(|r| (Region::ALL[*r], 0)).collect();
        let outcome = std::panic::catch_unwind(|| DeploymentSpec::custom(per_region, fallback));
        prop_assert!(outcome.is_err());
    }

    #[test]
    fn zero_fallback_spec_deploys_and_answers(seed in 0u64..6) {
        // Edge case: no fallbacks at all. Every answer must then be an
        // edge replica, even for poorly covered clients.
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(3)
            .build();
        let hosts = net.add_population(&PopulationSpec::dns_servers(3));
        let spec = DeploymentSpec::custom(
            vec![
                (Region::NorthAmerica, 6),
                (Region::NorthAmerica, 2), // duplicate-region entry
                (Region::Europe, 4),
            ],
            0,
        );
        prop_assert_eq!(spec.count_in(Region::NorthAmerica), 8);
        prop_assert_eq!(spec.total(), 12);
        let mut cdn = Cdn::deploy(net, &spec, MappingConfig::default());
        prop_assert_eq!(cdn.replicas().len(), 12);
        prop_assert!(cdn.replicas().iter().all(|r| !r.is_cdn_owned()));
        let name = cdn.add_customer("us.i1.yimg.com").expect("valid name");
        for i in 0..6u64 {
            if let Some(resp) = cdn.authoritative_answer(&name, hosts[0], SimTime::from_mins(i * 3)) {
                for ip in resp.a_addresses() {
                    prop_assert!(!cdn.ip_is_cdn_owned(ip));
                }
            }
        }
    }
}
