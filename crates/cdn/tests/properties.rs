//! Property-based tests for the CDN substrate.

use crp_cdn::{Cdn, DeploymentSpec, MappingConfig, ReplicaId};
use crp_dns::AuthoritativeServer;
use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
use proptest::prelude::*;

fn build_world(seed: u64, clients: usize) -> (Cdn, Vec<crp_netsim::HostId>, crp_dns::DomainName) {
    let mut net = NetworkBuilder::new(seed)
        .tier1_count(3)
        .transit_per_region(1)
        .stubs_per_region(3)
        .build();
    let hosts = net.add_population(&PopulationSpec::dns_servers(clients));
    let mut cdn = Cdn::deploy(
        net,
        &DeploymentSpec::akamai_like(0.2),
        MappingConfig::default(),
    );
    let name = cdn.add_customer("us.i1.yimg.com").expect("valid name");
    (cdn, hosts, name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn answers_are_wellformed_for_any_client_and_time(
        seed in 0u64..30,
        client_idx in 0usize..4,
        t_mins in 0u64..5_000,
    ) {
        let (cdn, hosts, name) = build_world(seed, 4);
        let t = SimTime::from_mins(t_mins);
        let resp = cdn
            .authoritative_answer(&name, hosts[client_idx], t)
            .expect("registered names always resolve");
        let ips = resp.a_addresses();
        prop_assert_eq!(ips.len(), cdn.config().answers_per_response);
        for ip in &ips {
            // Every answer is a deployed replica eligible for the
            // customer (or a fallback).
            let replica = cdn.replica_by_ip(*ip).expect("answers are replicas");
            let eligible = cdn.customers()[0]
                .eligible()
                .contains(&ReplicaId::from_ip(*ip).expect("replica ip"));
            prop_assert!(eligible || replica.is_cdn_owned());
        }
        // TTL matches the configured answer TTL.
        prop_assert_eq!(
            resp.min_ttl().as_millis(),
            cdn.config().answer_ttl_secs * 1_000
        );
    }

    #[test]
    fn answers_are_deterministic_across_rebuilds(
        seed in 0u64..20,
        t_mins in 0u64..2_000,
    ) {
        let (cdn_a, hosts_a, name_a) = build_world(seed, 2);
        let (cdn_b, hosts_b, name_b) = build_world(seed, 2);
        let t = SimTime::from_mins(t_mins);
        let ra = cdn_a.authoritative_answer(&name_a, hosts_a[0], t).map(|r| r.a_addresses());
        let rb = cdn_b.authoritative_answer(&name_b, hosts_b[0], t).map(|r| r.a_addresses());
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn redirections_prefer_nearby_replicas(seed in 0u64..12) {
        let (cdn, hosts, name) = build_world(seed, 2);
        let net = cdn.network();
        let client = hosts[0];
        // Collect answers over several epochs.
        let mut seen_ms = Vec::new();
        for i in 0..24u64 {
            if let Some(resp) = cdn.authoritative_answer(&name, client, SimTime::from_mins(i * 5)) {
                for ip in resp.a_addresses() {
                    let replica = cdn.replica_by_ip(ip).expect("replica");
                    if !replica.is_cdn_owned() {
                        seen_ms.push(net.baseline_rtt(client, replica.host()).millis());
                    }
                }
            }
        }
        prop_assume!(!seen_ms.is_empty());
        let mean_seen = seen_ms.iter().sum::<f64>() / seen_ms.len() as f64;
        let mean_all: f64 = cdn
            .replicas()
            .iter()
            .filter(|r| !r.is_cdn_owned())
            .map(|r| net.baseline_rtt(client, r.host()).millis())
            .sum::<f64>()
            / cdn.replicas().iter().filter(|r| !r.is_cdn_owned()).count() as f64;
        prop_assert!(
            mean_seen <= mean_all,
            "redirections ({mean_seen:.1}ms) no better than random ({mean_all:.1}ms)"
        );
    }

    #[test]
    fn replica_ip_mapping_is_bijective(index in 0u32..100_000) {
        let id = ReplicaId::from_index(index);
        prop_assert_eq!(ReplicaId::from_ip(id.ip()), Some(id));
    }
}
