//! Property-based tests for the network substrate invariants.

use crp_netsim::{
    GeoPoint, KingConfig, KingEstimator, NetworkBuilder, PopulationSpec, Region, Rtt, SimTime,
};
use proptest::prelude::*;

fn arb_region() -> impl Strategy<Value = Region> {
    prop::sample::select(Region::ALL.to_vec())
}

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-89.0..89.0f64, -179.0..179.0f64).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn great_circle_symmetric_nonnegative(a in arb_point(), b in arb_point()) {
        let d1 = a.great_circle_km(b);
        let d2 = b.great_circle_km(a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
        // No two points on Earth are farther than half the circumference.
        prop_assert!(d1 <= 20_038.0);
    }

    #[test]
    fn great_circle_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.great_circle_km(b);
        let bc = b.great_circle_km(c);
        let ac = a.great_circle_km(c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn rtt_symmetric_positive_deterministic(
        seed in 0u64..1_000,
        t_mins in 0u64..10_000,
        region_a in arb_region(),
        region_b in arb_region(),
    ) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(2)
            .build();
        let a = net.add_host(region_a, (0.5, 3.0), "a".into());
        let b = net.add_host(region_b, (0.5, 3.0), "b".into());
        let t = SimTime::from_mins(t_mins);
        let r1 = net.rtt(a, b, t);
        let r2 = net.rtt(b, a, t);
        prop_assert_eq!(r1, r2);
        prop_assert!(r1.millis() > 0.0);
        prop_assert_eq!(r1, net.rtt(a, b, t));
        // Sanity ceiling: nothing on Earth has a 2-second floor.
        prop_assert!(r1.millis() < 2_000.0);
    }

    #[test]
    fn rtt_at_least_propagation_floor(
        seed in 0u64..200,
        t_mins in 0u64..5_000,
    ) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(2)
            .build();
        let a = net.add_host(Region::NorthAmerica, (0.5, 1.0), "a".into());
        let b = net.add_host(Region::Oceania, (0.5, 1.0), "b".into());
        let dist = net.host(a).location().great_circle_km(net.host(b).location());
        let cfg = net.latency_config().clone();
        let floor = 2.0 * dist * cfg.inflation_base / cfg.speed_km_per_ms;
        let r = net.rtt(a, b, SimTime::from_mins(t_mins));
        prop_assert!(r.millis() + 1e-9 >= floor,
            "rtt {} below propagation floor {}", r.millis(), floor);
    }

    #[test]
    fn king_estimates_track_truth(seed in 0u64..100, t_mins in 0u64..2_000) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(2)
            .build();
        let hosts = net.add_population(&PopulationSpec::dns_servers(2));
        let king = KingEstimator::new(&net, KingConfig::default());
        let t = SimTime::from_mins(t_mins);
        if let Some(est) = king.estimate(hosts[0], hosts[1], t) {
            let truth = net.rtt(hosts[0], hosts[1], t);
            let ratio = est.millis() / truth.millis();
            prop_assert!((0.15..3.0).contains(&ratio));
        }
    }

    #[test]
    fn rtt_mean_respects_endpoints(millis in 0.0f64..500.0) {
        let r = Rtt::from_millis(millis);
        let m = Rtt::mean([r, r]).unwrap();
        prop_assert!((m.millis() - millis).abs() < 1e-9);
    }

    #[test]
    fn population_counts_exact(n in 1usize..80) {
        let mut net = NetworkBuilder::new(3)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(2)
            .build();
        let ids = net.add_population(&PopulationSpec::planetlab(n));
        prop_assert_eq!(ids.len(), n);
        prop_assert_eq!(net.host_count(), n);
    }
}
