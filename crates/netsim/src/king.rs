//! The King RTT-estimation technique, as an error model.
//!
//! The paper's "ground truth" inter-host RTTs were obtained with King
//! (Gummadi et al., IMW 2002), which estimates the latency between two DNS
//! servers by issuing recursive queries through one for a name served by
//! the other. King is accurate but not exact: published error is roughly
//! ±10–20% around the direct measurement, and a small fraction of
//! measurements fail outright (non-recursive servers, timeouts).
//!
//! [`KingEstimator`] wraps a [`Network`] and reproduces those properties
//! deterministically, so experiments that rank servers by "measured" RTT
//! inherit realistic measurement fuzz instead of oracle-perfect data.

use crate::noise;
use crate::rtt::Rtt;
use crate::time::SimTime;
use crate::topology::{HostId, Network};
use serde::{Deserialize, Serialize};

/// Error-model parameters for King measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KingConfig {
    /// Standard deviation of the multiplicative error (0.12 ≈ the
    /// published median error band).
    pub rel_err_sigma: f64,
    /// Probability that a measurement fails and returns `None`.
    pub failure_rate: f64,
    /// Additive overhead of the recursive-query round trip, in ms.
    pub overhead_ms: f64,
}

impl Default for KingConfig {
    fn default() -> Self {
        KingConfig {
            rel_err_sigma: 0.12,
            failure_rate: 0.02,
            overhead_ms: 1.5,
        }
    }
}

impl KingConfig {
    /// An oracle configuration with no error or failures, for tests.
    pub fn exact() -> Self {
        KingConfig {
            rel_err_sigma: 0.0,
            failure_rate: 0.0,
            overhead_ms: 0.0,
        }
    }
}

/// Estimates inter-host RTTs the way the King technique would.
///
/// # Example
///
/// ```
/// use crp_netsim::{KingConfig, KingEstimator, NetworkBuilder, PopulationSpec, SimTime};
///
/// let mut net = NetworkBuilder::new(5).build();
/// let hosts = net.add_population(&PopulationSpec::dns_servers(4));
/// let king = KingEstimator::new(&net, KingConfig::default());
/// if let Some(est) = king.estimate(hosts[0], hosts[1], SimTime::ZERO) {
///     assert!(est.millis() > 0.0);
/// }
/// ```
#[derive(Debug)]
pub struct KingEstimator<'a> {
    net: &'a Network,
    cfg: KingConfig,
}

/// Noise-stream tags.
const TAG_KING_ERR: u64 = 0x21;
const TAG_KING_FAIL: u64 = 0x22;

impl<'a> KingEstimator<'a> {
    /// Creates an estimator over `net` with the given error model.
    ///
    /// # Panics
    ///
    /// Panics if `rel_err_sigma` is negative or `failure_rate` is outside
    /// `[0, 1]`.
    pub fn new(net: &'a Network, cfg: KingConfig) -> Self {
        assert!(cfg.rel_err_sigma >= 0.0, "sigma must be non-negative");
        assert!(
            (0.0..=1.0).contains(&cfg.failure_rate),
            "failure rate must be a probability"
        );
        KingEstimator { net, cfg }
    }

    /// The error-model parameters.
    pub fn config(&self) -> &KingConfig {
        &self.cfg
    }

    /// A single King measurement of the RTT between hosts `a` and `b` at
    /// time `t`, or `None` if the measurement fails.
    pub fn estimate(&self, a: HostId, b: HostId, t: SimTime) -> Option<Rtt> {
        let (lo, hi) = if a.key() <= b.key() { (a, b) } else { (b, a) };
        let seed = self.net.seed();
        let fail_draw = noise::uniform(&[seed, TAG_KING_FAIL, lo.key(), hi.key(), t.as_millis()]);
        if fail_draw < self.cfg.failure_rate {
            return None;
        }
        let truth = self.net.rtt(a, b, t);
        let eps = noise::gaussian(&[seed, TAG_KING_ERR, lo.key(), hi.key(), t.as_millis()])
            * self.cfg.rel_err_sigma;
        // Clamp so gross outliers cannot produce negative estimates.
        let factor = (1.0 + eps).max(0.2);
        Some(Rtt::from_millis(
            truth.millis() * factor + self.cfg.overhead_ms,
        ))
    }

    /// The median of up to `attempts` measurements spread over
    /// `[start, end)` — how the paper aggregated repeated King runs.
    /// Returns `None` if every attempt fails.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero or the interval is empty.
    pub fn median_estimate(
        &self,
        a: HostId,
        b: HostId,
        start: SimTime,
        end: SimTime,
        attempts: usize,
    ) -> Option<Rtt> {
        assert!(attempts > 0, "need at least one attempt");
        assert!(end > start, "empty measurement interval");
        let span = (end - start).as_millis();
        let step = (span / attempts as u64).max(1);
        let mut got: Vec<Rtt> = (0..attempts)
            .filter_map(|i| {
                self.estimate(
                    a,
                    b,
                    SimTime::from_millis(start.as_millis() + i as u64 * step),
                )
            })
            .collect();
        if got.is_empty() {
            return None;
        }
        got.sort();
        Some(got[got.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;
    use crate::topology::NetworkBuilder;

    fn net() -> Network {
        let mut net = NetworkBuilder::new(11)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build();
        for i in 0..6 {
            net.add_host(Region::Europe, (0.5, 4.0), format!("d{i}"));
        }
        net
    }

    #[test]
    fn exact_config_matches_truth() {
        let net = net();
        let king = KingEstimator::new(&net, KingConfig::exact());
        let a = net.hosts()[0].id();
        let b = net.hosts()[1].id();
        let t = SimTime::from_mins(10);
        assert_eq!(king.estimate(a, b, t), Some(net.rtt(a, b, t)));
    }

    #[test]
    fn errors_are_bounded_multiplicatively() {
        let net = net();
        let king = KingEstimator::new(&net, KingConfig::default());
        let a = net.hosts()[0].id();
        let b = net.hosts()[2].id();
        for i in 0..200 {
            let t = SimTime::from_mins(i);
            if let Some(est) = king.estimate(a, b, t) {
                let truth = net.rtt(a, b, t);
                let ratio = est.millis() / truth.millis();
                assert!((0.2..2.5).contains(&ratio), "ratio {ratio} implausible");
            }
        }
    }

    #[test]
    fn failures_occur_at_configured_rate() {
        let net = net();
        let king = KingEstimator::new(
            &net,
            KingConfig {
                failure_rate: 0.5,
                ..KingConfig::default()
            },
        );
        let a = net.hosts()[1].id();
        let b = net.hosts()[3].id();
        let fails = (0..1_000)
            .filter(|i| king.estimate(a, b, SimTime::from_secs(*i)).is_none())
            .count();
        assert!((350..650).contains(&fails), "got {fails} failures of 1000");
    }

    #[test]
    fn median_estimate_survives_partial_failures() {
        let net = net();
        let king = KingEstimator::new(
            &net,
            KingConfig {
                failure_rate: 0.3,
                ..KingConfig::default()
            },
        );
        let a = net.hosts()[0].id();
        let b = net.hosts()[4].id();
        let m = king.median_estimate(a, b, SimTime::ZERO, SimTime::from_hours(1), 9);
        assert!(m.is_some());
    }

    #[test]
    fn median_none_when_all_fail() {
        let net = net();
        let king = KingEstimator::new(
            &net,
            KingConfig {
                failure_rate: 1.0,
                ..KingConfig::default()
            },
        );
        let a = net.hosts()[0].id();
        let b = net.hosts()[1].id();
        assert_eq!(
            king.median_estimate(a, b, SimTime::ZERO, SimTime::from_mins(5), 4),
            None
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_failure_rate() {
        let net = net();
        let _ = KingEstimator::new(
            &net,
            KingConfig {
                failure_rate: 1.5,
                ..KingConfig::default()
            },
        );
    }

    #[test]
    fn estimate_symmetric_in_arguments() {
        let net = net();
        let king = KingEstimator::new(&net, KingConfig::default());
        let a = net.hosts()[2].id();
        let b = net.hosts()[5].id();
        let t = SimTime::from_mins(77);
        assert_eq!(king.estimate(a, b, t), king.estimate(b, a, t));
    }
}
