//! Round-trip-time values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Sub};

/// A round-trip time in milliseconds.
///
/// `Rtt` is a thin newtype over `f64` that guarantees the value is finite
/// and non-negative, and provides a total order (so RTTs can be sorted
/// without `partial_cmp().unwrap()` noise at every call site).
///
/// # Example
///
/// ```
/// use crp_netsim::Rtt;
///
/// let mut rtts = vec![Rtt::from_millis(30.0), Rtt::from_millis(12.5)];
/// rtts.sort();
/// assert_eq!(rtts[0].millis(), 12.5);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rtt(f64);

impl Rtt {
    /// The zero round-trip time.
    pub const ZERO: Rtt = Rtt(0.0);

    /// Creates an RTT from a millisecond value.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, NaN or infinite; simulated latency
    /// models must never produce such values.
    pub fn from_millis(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "RTT must be finite and non-negative, got {millis}"
        );
        Rtt(millis)
    }

    /// The RTT in milliseconds.
    pub const fn millis(self) -> f64 {
        self.0
    }

    /// The arithmetic mean of a non-empty set of RTTs, or `None` if empty.
    pub fn mean<I: IntoIterator<Item = Rtt>>(rtts: I) -> Option<Rtt> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in rtts {
            sum += r.0;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(Rtt(sum / n as f64))
        }
    }

    /// The signed difference `self - other` in milliseconds.
    ///
    /// Unlike [`Sub`], which saturates at zero (an `Rtt` cannot be
    /// negative), this exposes the sign — the paper's Fig. 5 plots signed
    /// relative errors, where negatives arise from network dynamics.
    pub fn signed_diff_millis(self, other: Rtt) -> f64 {
        self.0 - other.0
    }
}

impl Eq for Rtt {}

impl Ord for Rtt {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so total_cmp agrees with the
        // intuitive numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Rtt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for Rtt {
    type Output = Rtt;

    fn add(self, rhs: Rtt) -> Rtt {
        Rtt(self.0 + rhs.0)
    }
}

impl Sub for Rtt {
    type Output = Rtt;

    /// Saturating subtraction: the result is clamped at zero.
    fn sub(self, rhs: Rtt) -> Rtt {
        Rtt((self.0 - rhs.0).max(0.0))
    }
}

impl std::ops::Mul<f64> for Rtt {
    type Output = Rtt;

    /// # Panics
    ///
    /// Panics if `rhs` is negative or not finite.
    fn mul(self, rhs: f64) -> Rtt {
        assert!(rhs.is_finite() && rhs >= 0.0, "factor must be non-negative");
        Rtt(self.0 * rhs)
    }
}

impl Div<f64> for Rtt {
    type Output = Rtt;

    /// # Panics
    ///
    /// Panics if `rhs` is not a positive finite number.
    fn div(self, rhs: f64) -> Rtt {
        assert!(rhs.is_finite() && rhs > 0.0, "divisor must be positive");
        Rtt(self.0 / rhs)
    }
}

impl Sum for Rtt {
    fn sum<I: Iterator<Item = Rtt>>(iter: I) -> Rtt {
        Rtt(iter.map(|r| r.0).sum())
    }
}

impl fmt::Display for Rtt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let a = Rtt::from_millis(10.0);
        let b = Rtt::from_millis(20.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = Rtt::from_millis(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        let _ = Rtt::from_millis(f64::NAN);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(Rtt::mean(std::iter::empty()), None);
    }

    #[test]
    fn mean_of_values() {
        let m = Rtt::mean([Rtt::from_millis(10.0), Rtt::from_millis(30.0)]).unwrap();
        assert_eq!(m, Rtt::from_millis(20.0));
    }

    #[test]
    fn sub_saturates_and_signed_diff_does_not() {
        let a = Rtt::from_millis(10.0);
        let b = Rtt::from_millis(25.0);
        assert_eq!(a - b, Rtt::ZERO);
        assert_eq!(a.signed_diff_millis(b), -15.0);
    }

    #[test]
    fn sum_and_div() {
        let total: Rtt = [Rtt::from_millis(5.0), Rtt::from_millis(15.0)]
            .into_iter()
            .sum();
        assert_eq!(total / 2.0, Rtt::from_millis(10.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Rtt::from_millis(12.345).to_string(), "12.35ms");
    }
}
