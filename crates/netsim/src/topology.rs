//! Autonomous-system topology and host attachment.
//!
//! The synthetic Internet is a three-tier AS graph: a clique of tier-1
//! backbones, regional transit ASes multi-homed to the backbone, and stub
//! ASes hanging off regional transit. Hosts attach to stub (occasionally
//! transit) ASes at geographic locations near the AS's point of presence.
//!
//! AS-level path lengths (BFS hop counts) inflate latency beyond pure
//! propagation delay, which is what gives the model realistic structure:
//! hosts in the same region but different ASes are close-but-not-identical,
//! and some geographically close pairs are network-distant.

use crate::geo::{GeoPoint, Region};
use crate::latency::LatencyConfig;
use crate::noise;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of an autonomous system in the synthetic topology.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(u32);

impl AsId {
    /// The dense index of this AS (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A synthetic "AS number" for display, offset to look like real ASNs.
    pub fn asn(self) -> u32 {
        1_000 + self.0
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.asn())
    }
}

/// The role of an AS in the three-tier hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsTier {
    /// Global backbone; tier-1 ASes form a full mesh.
    Tier1,
    /// Regional transit, multi-homed to the backbone.
    Transit,
    /// Edge network hosting end hosts.
    Stub,
}

/// An autonomous system: a point of presence with a tier, a region and a
/// congestion scale that modulates its time-varying load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutonomousSystem {
    id: AsId,
    tier: AsTier,
    region: Region,
    pop: GeoPoint,
    congestion_scale: f64,
    reach_km: f64,
}

impl AutonomousSystem {
    /// Identifier of the AS.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// Hierarchy tier.
    pub fn tier(&self) -> AsTier {
        self.tier
    }

    /// World region of the point of presence.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Location of the point of presence.
    pub fn pop(&self) -> GeoPoint {
        self.pop
    }

    /// Multiplier on the time-varying congestion process (1.0 = typical).
    pub fn congestion_scale(&self) -> f64 {
        self.congestion_scale
    }

    /// Geographic footprint radius: hosts of this AS scatter up to this
    /// far from the point of presence. Metro ISPs are compact; national
    /// and continental carriers span much more — which is exactly why
    /// the paper finds ASN-based clustering misses nearby hosts and
    /// groups distant ones.
    pub fn reach_km(&self) -> f64 {
        self.reach_km
    }
}

/// Identifier of a host attached to the topology.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(u32);

impl HostId {
    /// The dense index of this host (0-based, in attachment order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable 64-bit key for noise derivation.
    pub fn key(self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// An end host: a machine attached to an AS at a location, with a
/// last-mile latency contribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Host {
    id: HostId,
    asn: AsId,
    region: Region,
    location: GeoPoint,
    access_ms: f64,
    label: String,
}

impl Host {
    /// Identifier of the host.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The AS the host attaches to.
    pub fn asn(&self) -> AsId {
        self.asn
    }

    /// World region of the host.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Geographic location.
    pub fn location(&self) -> GeoPoint {
        self.location
    }

    /// Round-trip last-mile latency contribution in milliseconds.
    pub fn access_ms(&self) -> f64 {
        self.access_ms
    }

    /// Human-readable label (e.g. `"dns-17"`), for experiment output.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Parameters controlling topology generation.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    seed: u64,
    tier1_count: usize,
    transit_per_region: usize,
    stubs_per_region: usize,
    latency: LatencyConfig,
}

impl NetworkBuilder {
    /// Starts a builder with the given master seed and default sizes
    /// (12 tier-1, 5 transit and 112 stub ASes per region).
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            seed,
            tier1_count: 12,
            transit_per_region: 5,
            stubs_per_region: 112,
            latency: LatencyConfig::default(),
        }
    }

    /// Number of tier-1 backbone ASes.
    pub fn tier1_count(mut self, n: usize) -> Self {
        self.tier1_count = n;
        self
    }

    /// Number of transit ASes per region.
    pub fn transit_per_region(mut self, n: usize) -> Self {
        self.transit_per_region = n;
        self
    }

    /// Number of stub ASes per region.
    pub fn stubs_per_region(mut self, n: usize) -> Self {
        self.stubs_per_region = n;
        self
    }

    /// Overrides the latency model parameters.
    pub fn latency(mut self, cfg: LatencyConfig) -> Self {
        self.latency = cfg;
        self
    }

    /// Generates the AS graph and returns a network with no hosts yet.
    ///
    /// # Panics
    ///
    /// Panics if `tier1_count`, `transit_per_region` or `stubs_per_region`
    /// is zero — the three-tier structure requires all of them.
    pub fn build(self) -> Network {
        assert!(self.tier1_count > 0, "need at least one tier-1 AS");
        assert!(self.transit_per_region > 0, "need transit ASes");
        assert!(self.stubs_per_region > 0, "need stub ASes");

        let mut rng = StdRng::seed_from_u64(noise::mix(&[self.seed, 0xA51]));
        let mut ases = Vec::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();

        // Internet infrastructure concentrates in metros: sample the
        // region's cities once, then snap AS PoPs (and later hosts) to
        // them. Co-location is what gives clustering experiments their
        // tight metro-scale clusters.
        let mut metros: Vec<Vec<GeoPoint>> = vec![Vec::new(); Region::ALL.len()];
        for region in Region::ALL {
            for _ in 0..22 {
                metros[region.index() as usize].push(region.sample_point(&mut rng));
            }
        }
        let sample_pop = |region: Region, rng: &mut StdRng| {
            let list = &metros[region.index() as usize];
            list[rng.random_range(0..list.len())].jitter_km(50.0, rng)
        };

        // Tier-1 backbones, concentrated in the well-connected regions.
        let tier1_regions = [
            Region::NorthAmerica,
            Region::Europe,
            Region::EastAsia,
            Region::NorthAmerica,
            Region::Europe,
        ];
        for i in 0..self.tier1_count {
            let region = tier1_regions[i % tier1_regions.len()];
            ases.push(AutonomousSystem {
                id: AsId(ases.len() as u32),
                tier: AsTier::Tier1,
                region,
                pop: sample_pop(region, &mut rng),
                congestion_scale: rng.random_range(0.4..0.8),
                reach_km: 2_000.0,
            });
        }
        // Full mesh among tier-1.
        for i in 0..self.tier1_count as u32 {
            for j in (i + 1)..self.tier1_count as u32 {
                edges.push((i, j));
            }
        }

        // Regional transit, multi-homed to tier-1, peered within region.
        let mut transit_by_region: Vec<Vec<u32>> = vec![Vec::new(); Region::ALL.len()];
        for region in Region::ALL {
            for _ in 0..self.transit_per_region {
                let id = ases.len() as u32;
                ases.push(AutonomousSystem {
                    id: AsId(id),
                    tier: AsTier::Transit,
                    region,
                    pop: sample_pop(region, &mut rng),
                    congestion_scale: rng.random_range(0.5..1.0),
                    reach_km: 1_200.0,
                });
                // Two uplinks to distinct tier-1 ASes.
                let mut uplinks: Vec<u32> = (0..self.tier1_count as u32).collect();
                for _ in 0..2.min(self.tier1_count) {
                    let k = rng.random_range(0..uplinks.len());
                    edges.push((uplinks.swap_remove(k), id));
                }
                transit_by_region[region.index() as usize].push(id);
            }
        }
        // Intra-region transit peering ring.
        for list in &transit_by_region {
            for w in list.windows(2) {
                edges.push((w[0], w[1]));
            }
        }

        // Stub ASes off regional transit (1–2 uplinks).
        for region in Region::ALL {
            let transits = &transit_by_region[region.index() as usize];
            for _ in 0..self.stubs_per_region {
                let id = ases.len() as u32;
                // Stub footprints: mostly metro ISPs, some national
                // carriers, a few continental ones.
                let reach_km = match rng.random_range(0..10) {
                    0..=2 => rng.random_range(60.0..180.0),
                    3..=7 => rng.random_range(400.0..1_000.0),
                    _ => rng.random_range(1_200.0..2_200.0),
                };
                ases.push(AutonomousSystem {
                    id: AsId(id),
                    tier: AsTier::Stub,
                    region,
                    pop: sample_pop(region, &mut rng),
                    congestion_scale: rng.random_range(0.5..1.2),
                    reach_km,
                });
                let primary = *transits.choose(&mut rng).expect("transit ASes exist"); // crp-lint: allow(CRP001) — transit tier is non-empty for any valid spec
                edges.push((primary, id));
                if rng.random_bool(0.35) && transits.len() > 1 {
                    let mut secondary = *transits.choose(&mut rng).expect("nonempty"); // crp-lint: allow(CRP001) — guarded by transits.len() > 1
                    while secondary == primary {
                        // crp-lint: allow(CRP001) — guarded by transits.len() > 1
                        secondary = *transits.choose(&mut rng).expect("nonempty");
                    }
                    edges.push((secondary, id));
                }
            }
        }

        let n = ases.len();
        let mut adj = vec![Vec::new(); n];
        for (a, b) in edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }

        let hop_counts = all_pairs_hops(&adj);

        Network {
            seed: self.seed,
            ases,
            adj,
            hop_counts,
            hosts: Vec::new(),
            metros,
            latency: self.latency,
            host_rng: StdRng::seed_from_u64(noise::mix(&[self.seed, 0x0457])),
        }
    }
}

/// BFS hop counts between every pair of ASes.
fn all_pairs_hops(adj: &[Vec<u32>]) -> Vec<Vec<u8>> {
    let n = adj.len();
    let mut out = vec![vec![u8::MAX; n]; n];
    for start in 0..n {
        let dist = &mut out[start];
        dist[start] = 0;
        let mut queue = VecDeque::from([start as u32]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in &adj[u as usize] {
                if dist[v as usize] == u8::MAX {
                    dist[v as usize] = du.saturating_add(1);
                    queue.push_back(v);
                }
            }
        }
    }
    out
}

/// The synthetic Internet: an immutable AS graph plus an append-only set
/// of hosts, with a pure-function latency model over them.
///
/// Hosts are added after construction (see
/// [`Network::add_population`]); the latency between any two hosts at any
/// [`crate::SimTime`] is a deterministic function of the master seed, so
/// the network never needs to be "run".
#[derive(Clone, Debug)]
pub struct Network {
    seed: u64,
    ases: Vec<AutonomousSystem>,
    adj: Vec<Vec<u32>>,
    hop_counts: Vec<Vec<u8>>,
    hosts: Vec<Host>,
    metros: Vec<Vec<GeoPoint>>,
    latency: LatencyConfig,
    host_rng: StdRng,
}

impl Network {
    /// The master seed the network was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All autonomous systems.
    pub fn ases(&self) -> &[AutonomousSystem] {
        &self.ases
    }

    /// The AS with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn as_of(&self, id: AsId) -> &AutonomousSystem {
        &self.ases[id.index()]
    }

    /// All hosts, in attachment order.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// The host with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// Number of hosts attached so far.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The latency model parameters in effect.
    pub fn latency_config(&self) -> &LatencyConfig {
        &self.latency
    }

    /// AS-level hop count between two ASes (0 for the same AS).
    ///
    /// # Panics
    ///
    /// Panics if the ASes are disconnected, which the generator never
    /// produces.
    pub fn as_hops(&self, a: AsId, b: AsId) -> u32 {
        let h = self.hop_counts[a.index()][b.index()];
        assert!(h != u8::MAX, "AS graph is connected by construction");
        h as u32
    }

    /// Direct neighbors of an AS in the graph.
    pub fn as_neighbors(&self, id: AsId) -> &[u32] {
        &self.adj[id.index()]
    }

    /// The metro locations of a region (infrastructure and most hosts
    /// concentrate at these points).
    pub fn metros_of(&self, region: Region) -> &[GeoPoint] {
        &self.metros[region.index() as usize]
    }

    /// Attaches a single host in `region` with the given last-mile
    /// latency range, preferring stub ASes (9:1 over transit).
    ///
    /// # Panics
    ///
    /// Panics if the region has no eligible AS (never true for generated
    /// topologies) or if the access range is invalid.
    pub fn add_host(
        &mut self,
        region: Region,
        access_range_ms: (f64, f64),
        label: String,
    ) -> HostId {
        self.add_host_with_spread(region, access_range_ms, label, None)
    }

    /// Attaches a host like [`Network::add_host`], but with an explicit
    /// scatter radius around the chosen AS's point of presence instead of
    /// the AS's own footprint. Infrastructure that racks at PoPs (CDN
    /// replicas) passes a small radius here.
    ///
    /// # Panics
    ///
    /// See [`Network::add_host`].
    pub fn add_host_with_spread(
        &mut self,
        region: Region,
        access_range_ms: (f64, f64),
        label: String,
        spread_km: Option<f64>,
    ) -> HostId {
        assert!(
            access_range_ms.0 >= 0.0 && access_range_ms.1 >= access_range_ms.0,
            "invalid access range"
        );
        let prefer_stub = self.host_rng.random_bool(0.9);
        let candidates: Vec<AsId> = self
            .ases
            .iter()
            .filter(|a| {
                a.region == region
                    && match a.tier {
                        AsTier::Stub => prefer_stub,
                        AsTier::Transit => !prefer_stub,
                        AsTier::Tier1 => false,
                    }
            })
            .map(|a| a.id)
            .collect();
        let pool: Vec<AsId> = if candidates.is_empty() {
            // Fall back to any non-tier1 AS of the region.
            self.ases
                .iter()
                .filter(|a| a.region == region && a.tier != AsTier::Tier1)
                .map(|a| a.id)
                .collect()
        } else {
            candidates
        };
        let asn = *pool.choose(&mut self.host_rng).expect("region has ASes"); // crp-lint: allow(CRP001) — every region receives at least one AS
        let reach = spread_km.unwrap_or(self.ases[asn.index()].reach_km);
        // Most hosts live in cities: pick a metro within the AS's reach
        // of its PoP (falling back to the nearest metro) and jitter
        // locally. A minority sit outside metros — suburban and rural
        // hosts whose redirections straddle neighboring metros, giving
        // the similarity metric its mid-range gradation.
        let pop = self.ases[asn.index()].pop;
        let metro_snap = spread_km.is_some() || self.host_rng.random_bool(0.7);
        let location = if metro_snap {
            let region_metros = &self.metros[region.index() as usize];
            let in_reach: Vec<GeoPoint> = region_metros
                .iter()
                .copied()
                .filter(|m| pop.great_circle_km(*m) <= reach)
                .collect();
            let metro = if in_reach.is_empty() {
                *region_metros
                    .iter()
                    .min_by(|a, b| {
                        pop.great_circle_km(**a)
                            .total_cmp(&pop.great_circle_km(**b))
                    })
                    .expect("regions have metros") // crp-lint: allow(CRP001) — every region has at least one metro
            } else {
                in_reach[self.host_rng.random_range(0..in_reach.len())]
            };
            metro.jitter_km(35.0, &mut self.host_rng)
        } else {
            pop.jitter_km(reach, &mut self.host_rng)
        };
        let access_ms = if access_range_ms.0 == access_range_ms.1 {
            access_range_ms.0
        } else {
            self.host_rng
                .random_range(access_range_ms.0..access_range_ms.1)
        };
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(Host {
            id,
            asn,
            region,
            location,
            access_ms,
            label,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> Network {
        NetworkBuilder::new(1)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build()
    }

    #[test]
    fn build_produces_expected_as_count() {
        let net = small_net();
        assert_eq!(net.ases().len(), 4 + 8 * 2 + 8 * 4);
    }

    #[test]
    fn as_graph_is_connected() {
        let net = small_net();
        let n = net.ases().len();
        for i in 0..n {
            for j in 0..n {
                let h = net.as_hops(net.ases()[i].id(), net.ases()[j].id());
                assert!(h < 12, "hop count {h} suspiciously large");
            }
        }
    }

    #[test]
    fn hop_counts_symmetric_and_zero_on_diagonal() {
        let net = small_net();
        for a in net.ases() {
            assert_eq!(net.as_hops(a.id(), a.id()), 0);
            for b in net.ases() {
                assert_eq!(net.as_hops(a.id(), b.id()), net.as_hops(b.id(), a.id()));
            }
        }
    }

    #[test]
    fn tier1_forms_clique() {
        let net = small_net();
        let tier1: Vec<AsId> = net
            .ases()
            .iter()
            .filter(|a| a.tier() == AsTier::Tier1)
            .map(|a| a.id())
            .collect();
        for &a in &tier1 {
            for &b in &tier1 {
                if a != b {
                    assert_eq!(net.as_hops(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn stubs_never_host_backbone_hosts() {
        let mut net = small_net();
        for i in 0..50 {
            let h = net.add_host(Region::Europe, (1.0, 5.0), format!("h{i}"));
            let tier = net.as_of(net.host(h).asn()).tier();
            assert_ne!(tier, AsTier::Tier1);
            assert_eq!(net.host(h).region(), Region::Europe);
        }
    }

    #[test]
    fn host_ids_are_dense() {
        let mut net = small_net();
        let a = net.add_host(Region::NorthAmerica, (1.0, 2.0), "a".into());
        let b = net.add_host(Region::Europe, (1.0, 2.0), "b".into());
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(net.host_count(), 2);
    }

    #[test]
    fn same_seed_same_topology() {
        let a = small_net();
        let b = small_net();
        for (x, y) in a.ases().iter().zip(b.ases()) {
            assert_eq!(x.pop(), y.pop());
            assert_eq!(x.region(), y.region());
        }
    }

    #[test]
    fn different_seed_different_topology() {
        let a = small_net();
        let b = NetworkBuilder::new(2)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build();
        let same = a
            .ases()
            .iter()
            .zip(b.ases())
            .all(|(x, y)| x.pop() == y.pop());
        assert!(!same);
    }

    #[test]
    fn fixed_access_range_is_exact() {
        let mut net = small_net();
        let h = net.add_host(Region::Oceania, (3.0, 3.0), "x".into());
        assert_eq!(net.host(h).access_ms(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid access range")]
    fn rejects_reversed_access_range() {
        let mut net = small_net();
        let _ = net.add_host(Region::Oceania, (5.0, 1.0), "x".into());
    }

    #[test]
    fn asid_display() {
        let net = small_net();
        assert_eq!(net.ases()[0].id().to_string(), "AS1000");
    }
}
