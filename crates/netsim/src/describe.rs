//! Serializable world exports.
//!
//! A [`WorldDescription`] is a complete, serializable image of a
//! generated world — ASes, adjacency, metros, hosts, and the latency
//! configuration — for external analysis (plotting topologies, feeding
//! other simulators, archiving the exact world behind a published
//! figure). It is an *export*, not a save-game: worlds are cheap to
//! regenerate from their seed, which is also the only way to preserve
//! the deterministic host-placement stream.

use crate::geo::{GeoPoint, Region};
use crate::latency::LatencyConfig;
use crate::topology::{AutonomousSystem, Host, Network};
use serde::{Deserialize, Serialize};

/// A complete structural description of a generated world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldDescription {
    /// The seed that generated (and can regenerate) the world.
    pub seed: u64,
    /// Every autonomous system.
    pub ases: Vec<AutonomousSystem>,
    /// AS adjacency lists, indexed by AS index.
    pub adjacency: Vec<Vec<u32>>,
    /// Metro locations per region, in [`Region::ALL`] order.
    pub metros: Vec<(Region, Vec<GeoPoint>)>,
    /// Every host, in attachment order.
    pub hosts: Vec<Host>,
    /// The latency model parameters.
    pub latency: LatencyConfig,
}

impl WorldDescription {
    /// Total link count in the AS graph.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }
}

impl Network {
    /// Exports the world's full structure.
    pub fn describe(&self) -> WorldDescription {
        WorldDescription {
            seed: self.seed(),
            ases: self.ases().to_vec(),
            adjacency: (0..self.ases().len())
                .map(|i| self.as_neighbors(self.ases()[i].id()).to_vec())
                .collect(),
            metros: Region::ALL
                .iter()
                .map(|r| (*r, self.metros_of(*r).to_vec()))
                .collect(),
            hosts: self.hosts().to_vec(),
            latency: self.latency_config().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationSpec;
    use crate::topology::NetworkBuilder;

    fn world() -> Network {
        let mut net = NetworkBuilder::new(81)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(3)
            .build();
        net.add_population(&PopulationSpec::dns_servers(10));
        net
    }

    #[test]
    fn description_matches_the_network() {
        let net = world();
        let d = net.describe();
        assert_eq!(d.seed, net.seed());
        assert_eq!(d.ases.len(), net.ases().len());
        assert_eq!(d.hosts.len(), net.host_count());
        assert_eq!(d.adjacency.len(), d.ases.len());
        assert!(d.link_count() > d.ases.len() - 1, "graph is connected");
        let metro_total: usize = d.metros.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(metro_total, 22 * Region::ALL.len());
    }

    #[test]
    fn description_serializes_to_json_and_back() {
        let net = world();
        let d = net.describe();
        let json = serde_json::to_string(&d).expect("serializes");
        let back: WorldDescription = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.seed, d.seed);
        assert_eq!(back.hosts.len(), d.hosts.len());
        assert_eq!(back.link_count(), d.link_count());
    }

    #[test]
    fn same_seed_gives_same_description() {
        let a = world().describe();
        let b = world().describe();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
