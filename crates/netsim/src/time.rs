//! Discrete simulation time.
//!
//! The simulation clock is integer milliseconds since an arbitrary epoch.
//! Millisecond resolution matches the quantity the paper reasons about
//! (RTTs in milliseconds, probe intervals in minutes, DNS TTLs in seconds).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in milliseconds since the epoch.
///
/// # Example
///
/// ```
/// use crp_netsim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_mins(10);
/// assert_eq!(t.as_millis(), 600_000);
/// ```
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
///
/// # Example
///
/// ```
/// use crp_netsim::SimDuration;
///
/// assert_eq!(SimDuration::from_secs(90), SimDuration::from_millis(90_000));
/// ```
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Creates an instant `mins` minutes after the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000)
    }

    /// Creates an instant `hours` hours after the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Walks the half-open interval `[self, end)` in steps of `step`.
    ///
    /// This is the canonical way to drive periodic activity (DNS probes,
    /// gossip rounds) in the experiment harnesses.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn iter_until(self, end: SimTime, step: SimDuration) -> impl Iterator<Item = SimTime> {
        assert!(step.0 > 0, "step must be non-zero");
        let mut cur = self;
        std::iter::from_fn(move || {
            if cur < end {
                let out = cur;
                cur += step;
                Some(out)
            } else {
                None
            }
        })
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// The span in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul(self, factor: u64) -> Self {
        SimDuration(self.0 * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(60_000) && self.0 > 0 {
            write!(f, "{}min", self.0 / 60_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
    }

    #[test]
    fn arithmetic_round_trips() {
        let t0 = SimTime::from_mins(5);
        let d = SimDuration::from_secs(30);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.saturating_since(t0), d);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn iter_until_covers_half_open_interval() {
        let steps: Vec<_> = SimTime::ZERO
            .iter_until(SimTime::from_mins(30), SimDuration::from_mins(10))
            .collect();
        assert_eq!(
            steps,
            vec![
                SimTime::ZERO,
                SimTime::from_mins(10),
                SimTime::from_mins(20)
            ]
        );
    }

    #[test]
    fn iter_until_empty_when_start_at_end() {
        let steps: Vec<_> = SimTime::from_mins(1)
            .iter_until(SimTime::from_mins(1), SimDuration::from_secs(1))
            .collect();
        assert!(steps.is_empty());
    }

    #[test]
    #[should_panic(expected = "step must be non-zero")]
    fn iter_until_rejects_zero_step() {
        let _ = SimTime::ZERO.iter_until(SimTime::from_mins(1), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(SimTime::from_millis(5).to_string(), "t+5ms");
        assert_eq!(SimDuration::from_mins(100).to_string(), "100min");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1500ms");
    }

    #[test]
    fn duration_mul() {
        assert_eq!(
            SimDuration::from_mins(10).mul(6),
            SimDuration::from_hours(1)
        );
    }
}
