//! Deterministic noise primitives.
//!
//! Every stochastic quantity in the substrate (congestion level, jitter,
//! measurement error) is a *pure function* of a seed and the identities
//! involved, built on SplitMix64. This makes RTTs queryable at arbitrary
//! simulated times with no hidden state, which in turn makes the whole
//! evaluation reproducible and order-independent.

/// Advances a SplitMix64 state and returns the next 64-bit output.
///
/// # Example
///
/// ```
/// let a = crp_netsim::noise::splitmix64(42);
/// let b = crp_netsim::noise::splitmix64(42);
/// assert_eq!(a, b);
/// ```
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes an arbitrary list of 64-bit words into a single hash.
///
/// Used to derive independent noise streams for tuples such as
/// `(seed, link_a, link_b, time_bucket)`.
pub fn mix(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi fractional bits
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    splitmix64(acc)
}

/// A uniform sample in `[0, 1)` derived from the given words.
pub fn uniform(words: &[u64]) -> f64 {
    // 53 high bits -> uniform double in [0,1).
    (mix(words) >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard-normal sample derived from the given words (Box–Muller).
pub fn gaussian(words: &[u64]) -> f64 {
    let u1 = uniform(&[mix(words), 0x1]).max(f64::MIN_POSITIVE);
    let u2 = uniform(&[mix(words), 0x2]);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Smooth noise in `[0, 1]`: piecewise-linear interpolation of per-bucket
/// uniform samples over time.
///
/// `t_millis` is the query time, `bucket_millis` the knot spacing. Adjacent
/// queries inside a bucket see a continuous ramp rather than a jump, which
/// models slowly-drifting congestion rather than white noise.
///
/// # Panics
///
/// Panics if `bucket_millis` is zero.
pub fn smooth(words: &[u64], t_millis: u64, bucket_millis: u64) -> f64 {
    assert!(bucket_millis > 0, "bucket_millis must be non-zero");
    let bucket = t_millis / bucket_millis;
    let frac = (t_millis % bucket_millis) as f64 / bucket_millis as f64;
    let base = mix(words);
    let v0 = uniform(&[base, bucket]);
    let v1 = uniform(&[base, bucket + 1]);
    v0 + (v1 - v0) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
    }

    #[test]
    fn uniform_in_unit_interval() {
        for i in 0..1_000u64 {
            let v = uniform(&[i, 7]);
            assert!((0.0..1.0).contains(&v), "sample {v} out of range");
        }
    }

    #[test]
    fn uniform_has_reasonable_mean() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| uniform(&[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let n = 10_000u64;
        let samples: Vec<f64> = (0..n).map(|i| gaussian(&[i, 99])).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} far from 1");
    }

    #[test]
    fn smooth_is_continuous_within_bucket() {
        let words = [5u64, 6u64];
        let a = smooth(&words, 1_000, 10_000);
        let b = smooth(&words, 1_001, 10_000);
        assert!((a - b).abs() < 0.01, "adjacent samples jumped: {a} vs {b}");
    }

    #[test]
    fn smooth_interpolates_between_knots() {
        let words = [9u64];
        let start = smooth(&words, 0, 1_000);
        let end = smooth(&words, 999, 1_000);
        let mid = smooth(&words, 500, 1_000);
        // Mid-point of a linear ramp lies between (or at) the endpoints.
        let (lo, hi) = if start <= end {
            (start, end)
        } else {
            (end, start)
        };
        assert!(mid >= lo - 1e-9 && mid <= hi + 1e-9);
    }

    #[test]
    #[should_panic(expected = "bucket_millis must be non-zero")]
    fn smooth_rejects_zero_bucket() {
        let _ = smooth(&[1], 0, 0);
    }
}
