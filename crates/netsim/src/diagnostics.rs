//! Diagnostics: summaries and path reconstruction for synthetic worlds.
//!
//! The experiment binaries print model summaries so a reader can judge
//! what world produced the numbers, and AS-level path reconstruction
//! makes individual RTTs explainable ("why is this pair 180 ms apart?").

use crate::geo::Region;
use crate::rtt::Rtt;
use crate::time::SimTime;
use crate::topology::{AsId, AsTier, HostId, Network};
use std::collections::VecDeque;
use std::fmt;

/// Per-region composition of a network.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionSummary {
    /// Stub + transit ASes in the region.
    pub ases: usize,
    /// Hosts attached in the region.
    pub hosts: usize,
}

/// A structural summary of the synthetic world.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldSummary {
    /// Total autonomous systems.
    pub as_count: usize,
    /// Total hosts.
    pub host_count: usize,
    /// Composition per region, in [`Region::ALL`] order.
    pub regions: Vec<(Region, RegionSummary)>,
    /// Sampled RTT quantiles (p10, p50, p90) across random host pairs,
    /// in milliseconds.
    pub rtt_quantiles_ms: (f64, f64, f64),
}

impl fmt::Display for WorldSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ASes, {} hosts", self.as_count, self.host_count)?;
        for (region, s) in &self.regions {
            writeln!(f, "  {region}: {} ASes, {} hosts", s.ases, s.hosts)?;
        }
        let (p10, p50, p90) = self.rtt_quantiles_ms;
        write!(
            f,
            "  pairwise RTT p10/p50/p90: {p10:.0}/{p50:.0}/{p90:.0} ms"
        )
    }
}

impl Network {
    /// Summarizes the world's structure, sampling up to `samples` host
    /// pairs for the RTT quantiles at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the network has fewer than two hosts.
    pub fn summarize(&self, samples: usize, t: SimTime) -> WorldSummary {
        assert!(
            self.host_count() >= 2,
            "need at least two hosts to sample RTTs"
        );
        let mut regions: Vec<(Region, RegionSummary)> = Region::ALL
            .iter()
            .map(|r| (*r, RegionSummary::default()))
            .collect();
        for a in self.ases() {
            regions[a.region().index() as usize].1.ases += 1;
        }
        for h in self.hosts() {
            regions[h.region().index() as usize].1.hosts += 1;
        }
        let n = self.host_count();
        let mut rtts: Vec<f64> = Vec::with_capacity(samples);
        for i in 0..samples {
            let a = self.hosts()
                [(crate::noise::mix(&[self.seed(), 0xD1A6, i as u64]) % n as u64) as usize]
                .id();
            let b = self.hosts()
                [(crate::noise::mix(&[self.seed(), 0xD1A7, i as u64]) % n as u64) as usize]
                .id();
            if a == b {
                continue;
            }
            rtts.push(self.rtt(a, b, t).millis());
        }
        rtts.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            if rtts.is_empty() {
                0.0
            } else {
                rtts[((rtts.len() - 1) as f64 * p).round() as usize]
            }
        };
        WorldSummary {
            as_count: self.ases().len(),
            host_count: n,
            regions,
            rtt_quantiles_ms: (q(0.1), q(0.5), q(0.9)),
        }
    }

    /// The shortest AS-level path between two ASes (inclusive of both
    /// endpoints), reconstructed by BFS.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this network.
    pub fn as_path(&self, from: AsId, to: AsId) -> Vec<AsId> {
        if from == to {
            return vec![from];
        }
        let n = self.ases().len();
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut queue = VecDeque::from([from.index() as u32]);
        parent[from.index()] = Some(from.index() as u32);
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in self.as_neighbors(self.ases()[u as usize].id()) {
                if parent[v as usize].is_none() {
                    parent[v as usize] = Some(u);
                    if v as usize == to.index() {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        let mut path = vec![to];
        let mut cur = to.index() as u32;
        while cur != from.index() as u32 {
            cur = parent[cur as usize].expect("graph is connected"); // crp-lint: allow(CRP001) — BFS parents cover every AS: topology is connected by construction
            path.push(self.ases()[cur as usize].id());
        }
        path.reverse();
        path
    }

    /// A human-readable explanation of one host pair's RTT at `t`:
    /// the AS path, distance, and per-component contributions.
    pub fn explain_rtt(&self, a: HostId, b: HostId, t: SimTime) -> RttExplanation {
        let ha = self.host(a);
        let hb = self.host(b);
        let path = self.as_path(ha.asn(), hb.asn());
        RttExplanation {
            total: self.rtt(a, b, t),
            baseline: self.baseline_rtt(a, b),
            distance_km: ha.location().great_circle_km(hb.location()),
            as_path: path,
            access_ms: ha.access_ms() + hb.access_ms(),
        }
    }
}

/// Decomposition of one pair's RTT.
#[derive(Clone, Debug, PartialEq)]
pub struct RttExplanation {
    /// The RTT at the queried instant.
    pub total: Rtt,
    /// The static floor (propagation + hops + access).
    pub baseline: Rtt,
    /// Great-circle distance between the hosts.
    pub distance_km: f64,
    /// AS-level path, endpoints inclusive.
    pub as_path: Vec<AsId>,
    /// Combined last-mile contribution.
    pub access_ms: f64,
}

impl fmt::Display for RttExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path: Vec<String> = self.as_path.iter().map(AsId::to_string).collect();
        write!(
            f,
            "{} ({}km, baseline {}, access {:.1}ms, path {})",
            self.total,
            self.distance_km.round(),
            self.baseline,
            self.access_ms,
            path.join(" -> ")
        )
    }
}

/// Tier of an AS along a path, for display/debug.
pub fn tier_label(tier: AsTier) -> &'static str {
    match tier {
        AsTier::Tier1 => "tier1",
        AsTier::Transit => "transit",
        AsTier::Stub => "stub",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationSpec;
    use crate::topology::NetworkBuilder;

    fn world() -> Network {
        let mut net = NetworkBuilder::new(51)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(4)
            .build();
        net.add_population(&PopulationSpec::dns_servers(20));
        net
    }

    #[test]
    fn summary_accounts_for_everything() {
        let net = world();
        let s = net.summarize(200, SimTime::ZERO);
        assert_eq!(s.as_count, net.ases().len());
        assert_eq!(s.host_count, 20);
        let region_hosts: usize = s.regions.iter().map(|(_, r)| r.hosts).sum();
        assert_eq!(region_hosts, 20);
        let (p10, p50, p90) = s.rtt_quantiles_ms;
        assert!(p10 <= p50 && p50 <= p90);
        assert!(p90 < 1_000.0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn as_path_endpoints_and_adjacency() {
        let net = world();
        let a = net.ases()[5].id();
        let b = net.ases().last().expect("ases exist").id();
        let path = net.as_path(a, b);
        assert_eq!(*path.first().expect("non-empty"), a);
        assert_eq!(*path.last().expect("non-empty"), b);
        // Path length matches the hop-count table.
        assert_eq!(path.len() as u32 - 1, net.as_hops(a, b));
        // Consecutive entries are graph neighbors.
        for w in path.windows(2) {
            assert!(net.as_neighbors(w[0]).contains(&(w[1].index() as u32)));
        }
    }

    #[test]
    fn as_path_to_self_is_singleton() {
        let net = world();
        let a = net.ases()[0].id();
        assert_eq!(net.as_path(a, a), vec![a]);
    }

    #[test]
    fn explanation_is_consistent() {
        let net = world();
        let a = net.hosts()[0].id();
        let b = net.hosts()[7].id();
        let e = net.explain_rtt(a, b, SimTime::from_mins(30));
        assert_eq!(e.total, net.rtt(a, b, SimTime::from_mins(30)));
        assert!(e.total >= e.baseline * 0.9);
        assert!(!e.to_string().is_empty());
        assert_eq!(
            e.as_path.len() as u32 - 1,
            net.as_hops(net.host(a).asn(), net.host(b).asn())
        );
    }
}
