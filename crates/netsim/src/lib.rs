//! Synthetic wide-area network substrate for the CRP reproduction.
//!
//! The ICDCS 2008 evaluation of CRP ran against the live Internet:
//! PlanetLab nodes, ~1,000 DNS servers drawn from the King data set, and
//! the Akamai CDN. This crate replaces the Internet with a deterministic,
//! seedable model that preserves the properties CRP depends on:
//!
//! * **Geography + AS structure** — hosts live at geographic locations and
//!   attach to autonomous systems; AS-level paths inflate latency, so
//!   "network distance" correlates with, but is not identical to,
//!   geographic distance (triangle-inequality violations included).
//! * **Time-varying latency** — diurnal congestion, slow random drift and
//!   route-change epochs make old observations go stale, which drives the
//!   probe-interval and window-size experiments (Figs. 8–9 of the paper).
//! * **Measurement error** — the paper's "ground truth" RTTs came from the
//!   King technique, which has a documented error distribution; the
//!   [`king`] module models it.
//!
//! Everything in this crate is a pure function of `(seed, entities, time)`
//! so experiments are reproducible bit-for-bit and RTTs can be queried at
//! arbitrary simulated times without running a global event loop.
//!
//! # Example
//!
//! ```
//! use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
//!
//! let mut net = NetworkBuilder::new(42).build();
//! let hosts = net.add_population(&PopulationSpec::dns_servers(10));
//! let rtt = net.rtt(hosts[0], hosts[1], SimTime::ZERO);
//! assert!(rtt.millis() > 0.0);
//! ```

pub mod describe;
pub mod diagnostics;
pub mod geo;
pub mod king;
pub mod latency;
pub mod noise;
pub mod population;
pub mod rtt;
pub mod time;
pub mod topology;

pub use describe::WorldDescription;
pub use diagnostics::{RttExplanation, WorldSummary};
pub use geo::{GeoPoint, Region};
pub use king::{KingConfig, KingEstimator};
pub use latency::LatencyConfig;
pub use population::{HostProfile, PopulationSpec};
pub use rtt::Rtt;
pub use time::{SimDuration, SimTime};
pub use topology::{AsId, AsTier, AutonomousSystem, Host, HostId, Network, NetworkBuilder};
