//! The time-varying latency model.
//!
//! `rtt(a, b, t)` is a deterministic function of the master seed, the pair
//! of hosts and the simulated time. The components are:
//!
//! * **Propagation** — great-circle distance at ~200 km/ms one way, scaled
//!   by a per-pair *path inflation* factor. Inflation is re-drawn at route
//!   epochs (default 6 h, per-pair phase), which models route changes and
//!   produces triangle-inequality violations.
//! * **AS-path processing** — a per-hop cost from BFS hop counts.
//! * **Last mile** — each host's access latency.
//! * **Congestion** — per-AS diurnal swing plus a slow smooth drift,
//!   scaled by the AS's congestion scale (stubs are noisier than
//!   backbones).
//! * **Jitter** — small per-query noise.
//!
//! The congestion and route-epoch terms are what make long observation
//! histories go stale, reproducing the paper's Fig. 9 finding that "all
//! probes" underperforms a bounded window for a third of hosts.

use crate::noise;
use crate::rtt::Rtt;
use crate::time::SimTime;
use crate::topology::{HostId, Network};
use serde::{Deserialize, Serialize};

/// Parameters of the latency model. The defaults target realistic
/// wide-area magnitudes (intra-metro ~5 ms, transcontinental ~80 ms,
/// transoceanic 120–250 ms).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// One-way propagation speed in km per millisecond (fiber ≈ 200).
    pub speed_km_per_ms: f64,
    /// Baseline multiplicative path inflation (≥ 1).
    pub inflation_base: f64,
    /// Maximum extra inflation on top of the base. The inflation drawn
    /// for a host pair mixes a static AS-pair term (peering quality —
    /// the dominant component), a static host-pair term, and a
    /// route-epoch wobble.
    pub inflation_spread: f64,
    /// Length of a route epoch in milliseconds.
    pub route_epoch_ms: u64,
    /// Round-trip processing cost per AS-level hop, in milliseconds.
    pub per_hop_ms: f64,
    /// Peak-to-trough diurnal congestion amplitude, in milliseconds,
    /// before the per-AS scale is applied.
    pub diurnal_amplitude_ms: f64,
    /// Amplitude of the slow random congestion drift, in milliseconds.
    pub drift_amplitude_ms: f64,
    /// Knot spacing of the drift process, in milliseconds.
    pub drift_bucket_ms: u64,
    /// Additive route-change wobble: every host pair gains up to this
    /// many milliseconds, re-drawn each route epoch. Unlike the
    /// multiplicative inflation wobble this matters even at metro
    /// distances, so "which nearby server is best" genuinely changes
    /// when routes change.
    pub route_wobble_ms: f64,
    /// Standard deviation of per-query jitter, in milliseconds.
    pub jitter_sigma_ms: f64,
    /// Floor applied to every distinct-host RTT, in milliseconds.
    pub min_rtt_ms: f64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            speed_km_per_ms: 200.0,
            inflation_base: 1.15,
            inflation_spread: 0.85,
            route_epoch_ms: 6 * 3_600_000,
            per_hop_ms: 1.2,
            diurnal_amplitude_ms: 3.5,
            drift_amplitude_ms: 4.5,
            drift_bucket_ms: 45 * 60_000,
            route_wobble_ms: 6.0,
            jitter_sigma_ms: 0.8,
            min_rtt_ms: 0.3,
        }
    }
}

impl LatencyConfig {
    /// A configuration with all time-varying terms disabled, useful for
    /// tests that need a static metric space.
    pub fn static_network() -> Self {
        LatencyConfig {
            diurnal_amplitude_ms: 0.0,
            drift_amplitude_ms: 0.0,
            jitter_sigma_ms: 0.0,
            inflation_spread: 0.0,
            route_wobble_ms: 0.0,
            ..LatencyConfig::default()
        }
    }
}

/// Noise-stream tags, kept distinct so the streams are independent.
const TAG_INFLATION: u64 = 0x11;
const TAG_INFLATION_STATIC: u64 = 0x17;
const TAG_INFLATION_AS: u64 = 0x18;
const TAG_ROUTE_WOBBLE: u64 = 0x19;
const TAG_EPOCH_PHASE: u64 = 0x12;
const TAG_DIURNAL_PHASE: u64 = 0x13;
const TAG_DRIFT: u64 = 0x14;
const TAG_JITTER: u64 = 0x15;
const TAG_SELF: u64 = 0x16;

impl Network {
    /// The round-trip time between two hosts at simulated time `t`.
    ///
    /// The result is symmetric in `a` and `b`, strictly positive, and
    /// deterministic for a given network seed.
    ///
    /// # Panics
    ///
    /// Panics if either host id does not belong to this network.
    pub fn rtt(&self, a: HostId, b: HostId, t: SimTime) -> Rtt {
        let cfg = self.latency_config();
        if a == b {
            let jitter = noise::uniform(&[self.seed(), TAG_SELF, a.key(), t.as_millis()]) * 0.2;
            return Rtt::from_millis(cfg.min_rtt_ms + jitter);
        }
        self.count_rtt_sample(a);
        // Order the pair so every noise stream is symmetric.
        let (lo, hi) = if a.key() <= b.key() { (a, b) } else { (b, a) };
        let ha = self.host(lo);
        let hb = self.host(hi);
        let seed = self.seed();

        // Propagation with per-pair, per-route-epoch inflation.
        let dist_km = ha.location().great_circle_km(hb.location());
        let phase =
            noise::mix(&[seed, TAG_EPOCH_PHASE, lo.key(), hi.key()]) % cfg.route_epoch_ms.max(1);
        let epoch = (t.as_millis() + phase) / cfg.route_epoch_ms.max(1);
        // Inflation mixes peering quality between the two ASes (static,
        // dominant), a static host-pair term, and a route-epoch wobble.
        let inflation =
            cfg.inflation_base + cfg.inflation_spread * self.inflation_mix(lo, hi, Some(epoch));
        let prop_ms = 2.0 * dist_km * inflation / cfg.speed_km_per_ms;
        let wobble_ms = cfg.route_wobble_ms
            * noise::uniform(&[seed, TAG_ROUTE_WOBBLE, lo.key(), hi.key(), epoch]);

        // AS-path processing.
        let hops = self.as_hops(ha.asn(), hb.asn()) as f64;
        let hop_ms = hops * cfg.per_hop_ms;

        // Last mile.
        let access_ms = ha.access_ms() + hb.access_ms();

        // Congestion at both endpoint ASes.
        let congestion_ms = self.as_congestion_ms(ha.asn().index() as u64, t)
            + self.as_congestion_ms(hb.asn().index() as u64, t);

        // Per-query jitter (folded to non-negative).
        let jitter_ms = noise::gaussian(&[seed, TAG_JITTER, lo.key(), hi.key(), t.as_millis()])
            .abs()
            * cfg.jitter_sigma_ms;

        let total = (prop_ms + wobble_ms + hop_ms + access_ms + congestion_ms + jitter_ms)
            .max(cfg.min_rtt_ms);
        Rtt::from_millis(total)
    }

    /// Telemetry accounting for one distinct-host RTT sample, keyed by
    /// the querying endpoint's region and AS tier. A single disabled
    /// check up front keeps the hot path at one relaxed atomic load.
    fn count_rtt_sample(&self, a: HostId) {
        if !crp_telemetry::enabled() {
            return;
        }
        crp_telemetry::counter_add("netsim.rtt_samples", 1);
        let host = self.host(a);
        let region = host.region().slug();
        // crp-lint: allow(CRP014) — region-keyed counter name, built only when telemetry is enabled
        crp_telemetry::counter_add(&format!("netsim.rtt_samples.region.{region}"), 1);
        let tier = match self.ases()[host.asn().index() as usize].tier() {
            crate::topology::AsTier::Tier1 => "tier1",
            crate::topology::AsTier::Transit => "transit",
            crate::topology::AsTier::Stub => "stub",
        };
        // crp-lint: allow(CRP014) — tier-keyed counter name, built only when telemetry is enabled
        crp_telemetry::counter_add(&format!("netsim.rtt_samples.tier.{tier}"), 1);
    }

    /// The normalized inflation mix for a host pair: 45% AS-pair peering
    /// quality, 20% host-pair specifics, 35% route-epoch wobble (replaced
    /// by its expectation when `epoch` is `None`, as in `baseline_rtt`).
    fn inflation_mix(&self, lo: HostId, hi: HostId, epoch: Option<u64>) -> f64 {
        let seed = self.seed();
        let (as_lo, as_hi) = {
            let a = self.host(lo).asn().index() as u64;
            let b = self.host(hi).asn().index() as u64;
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        };
        let u_as = noise::uniform(&[seed, TAG_INFLATION_AS, as_lo, as_hi]);
        let u_host = noise::uniform(&[seed, TAG_INFLATION_STATIC, lo.key(), hi.key()]);
        let u_epoch = match epoch {
            Some(e) => noise::uniform(&[seed, TAG_INFLATION, lo.key(), hi.key(), e]),
            None => 0.5,
        };
        0.45 * u_as + 0.20 * u_host + 0.35 * u_epoch
    }

    /// The congestion contribution of one AS at time `t`, in ms.
    fn as_congestion_ms(&self, as_index: u64, t: SimTime) -> f64 {
        let cfg = self.latency_config();
        let seed = self.seed();
        let scale = self.ases()[as_index as usize].congestion_scale();

        let day_ms = 24.0 * 3_600_000.0;
        let phase = noise::uniform(&[seed, TAG_DIURNAL_PHASE, as_index]);
        let diurnal = 0.5
            * cfg.diurnal_amplitude_ms
            * (1.0 + (std::f64::consts::TAU * (t.as_millis() as f64 / day_ms + phase)).sin());

        let drift = if cfg.drift_amplitude_ms > 0.0 {
            cfg.drift_amplitude_ms
                * noise::smooth(
                    &[seed, TAG_DRIFT, as_index],
                    t.as_millis(),
                    cfg.drift_bucket_ms,
                )
        } else {
            0.0
        };

        scale * (diurnal + drift)
    }

    /// The RTT with all time-varying terms at their expectation removed —
    /// a static "distance" used by tests and cluster-quality baselines.
    ///
    /// This is the model's propagation + hops + access floor; it ignores
    /// congestion, drift and jitter, and fixes path inflation at its mean.
    pub fn baseline_rtt(&self, a: HostId, b: HostId) -> Rtt {
        let cfg = self.latency_config();
        if a == b {
            return Rtt::from_millis(cfg.min_rtt_ms);
        }
        let (lo, hi) = if a.key() <= b.key() { (a, b) } else { (b, a) };
        let ha = self.host(lo);
        let hb = self.host(hi);
        let dist_km = ha.location().great_circle_km(hb.location());
        let inflation =
            cfg.inflation_base + cfg.inflation_spread * self.inflation_mix(lo, hi, None);
        let prop_ms = 2.0 * dist_km * inflation / cfg.speed_km_per_ms;
        let wobble_ms = cfg.route_wobble_ms * 0.5;
        let hop_ms = self.as_hops(ha.asn(), hb.asn()) as f64 * cfg.per_hop_ms;
        let total =
            (prop_ms + wobble_ms + hop_ms + ha.access_ms() + hb.access_ms()).max(cfg.min_rtt_ms);
        Rtt::from_millis(total)
    }

    /// Mean RTT over `samples` instants evenly spaced in `[start, end)` —
    /// the simulation analogue of "we measured RTT repeatedly during the
    /// experiment and averaged".
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero or `end <= start`.
    pub fn mean_rtt(
        &self,
        a: HostId,
        b: HostId,
        start: SimTime,
        end: SimTime,
        samples: usize,
    ) -> Rtt {
        assert!(samples > 0, "need at least one sample");
        assert!(end > start, "empty sampling interval");
        let span = (end - start).as_millis();
        let step = (span / samples as u64).max(1);
        let rtts = (0..samples).map(|i| {
            self.rtt(
                a,
                b,
                SimTime::from_millis(start.as_millis() + i as u64 * step),
            )
        });
        Rtt::mean(rtts).expect("samples > 0") // crp-lint: allow(CRP001) — samples >= 1, so the mean exists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;
    use crate::topology::NetworkBuilder;

    fn net_with_hosts() -> (Network, Vec<HostId>) {
        let mut net = NetworkBuilder::new(7)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let mut hosts = Vec::new();
        for (i, region) in [
            Region::NorthAmerica,
            Region::NorthAmerica,
            Region::Europe,
            Region::EastAsia,
            Region::Oceania,
            Region::Africa,
        ]
        .into_iter()
        .enumerate()
        {
            hosts.push(net.add_host(region, (0.5, 3.0), format!("h{i}")));
        }
        (net, hosts)
    }

    #[test]
    fn rtt_is_symmetric() {
        let (net, hosts) = net_with_hosts();
        let t = SimTime::from_mins(90);
        for &a in &hosts {
            for &b in &hosts {
                assert_eq!(net.rtt(a, b, t), net.rtt(b, a, t));
            }
        }
    }

    #[test]
    fn rtt_is_positive_and_bounded() {
        let (net, hosts) = net_with_hosts();
        for &a in &hosts {
            for &b in &hosts {
                let r = net.rtt(a, b, SimTime::from_hours(5));
                assert!(r.millis() > 0.0);
                assert!(r.millis() < 600.0, "implausible RTT {r}");
            }
        }
    }

    #[test]
    fn self_rtt_is_tiny() {
        let (net, hosts) = net_with_hosts();
        let r = net.rtt(hosts[0], hosts[0], SimTime::from_mins(3));
        assert!(r.millis() < 1.0);
    }

    #[test]
    fn same_region_closer_than_cross_ocean() {
        let (net, hosts) = net_with_hosts();
        let t = SimTime::from_hours(1);
        // Two North-America hosts vs NA ↔ Oceania.
        let near = net.rtt(hosts[0], hosts[1], t);
        let far = net.rtt(hosts[0], hosts[4], t);
        assert!(
            near < far,
            "intra-region {near} should beat trans-pacific {far}"
        );
    }

    #[test]
    fn rtt_varies_over_time() {
        let (net, hosts) = net_with_hosts();
        let r1 = net.rtt(hosts[0], hosts[2], SimTime::ZERO);
        let r2 = net.rtt(hosts[0], hosts[2], SimTime::from_hours(12));
        assert_ne!(r1, r2);
    }

    #[test]
    fn rtt_is_deterministic() {
        let (net, hosts) = net_with_hosts();
        let t = SimTime::from_mins(1234);
        assert_eq!(
            net.rtt(hosts[1], hosts[3], t),
            net.rtt(hosts[1], hosts[3], t)
        );
    }

    #[test]
    fn static_config_removes_time_variation_except_route_epochs() {
        let mut net = NetworkBuilder::new(9)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(3)
            .latency(LatencyConfig::static_network())
            .build();
        let a = net.add_host(Region::Europe, (1.0, 1.0), "a".into());
        let b = net.add_host(Region::Europe, (1.0, 1.0), "b".into());
        let r1 = net.rtt(a, b, SimTime::ZERO);
        let r2 = net.rtt(a, b, SimTime::from_mins(5));
        assert_eq!(r1, r2);
    }

    #[test]
    fn baseline_close_to_time_mean() {
        let (net, hosts) = net_with_hosts();
        let base = net.baseline_rtt(hosts[0], hosts[2]);
        let mean = net.mean_rtt(
            hosts[0],
            hosts[2],
            SimTime::ZERO,
            SimTime::from_hours(24),
            48,
        );
        // The mean includes congestion; it should exceed the floor but not
        // by an implausible margin.
        assert!(mean >= base * 0.8);
        assert!(mean.millis() < base.millis() + 80.0);
    }

    #[test]
    fn mean_rtt_single_sample_matches_point_query() {
        let (net, hosts) = net_with_hosts();
        let m = net.mean_rtt(hosts[0], hosts[1], SimTime::ZERO, SimTime::from_mins(1), 1);
        assert_eq!(m, net.rtt(hosts[0], hosts[1], SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "empty sampling interval")]
    fn mean_rtt_rejects_empty_interval() {
        let (net, hosts) = net_with_hosts();
        let _ = net.mean_rtt(
            hosts[0],
            hosts[1],
            SimTime::from_mins(1),
            SimTime::from_mins(1),
            3,
        );
    }
}
