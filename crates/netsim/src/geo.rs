//! Geography: points on the globe and the world regions used to place
//! autonomous systems, hosts and CDN replicas.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the globe, in degrees.
///
/// # Example
///
/// ```
/// use crp_netsim::GeoPoint;
///
/// let chicago = GeoPoint::new(41.9, -87.6);
/// let boston = GeoPoint::new(42.4, -71.1);
/// let d = chicago.great_circle_km(boston);
/// assert!((1_350.0..1_450.0).contains(&d), "got {d}");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    ///
    /// # Panics
    ///
    /// Panics if the latitude is outside `[-90, 90]` or either coordinate
    /// is not finite. Longitude is normalized into `(-180, 180]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            lat_deg.is_finite() && lon_deg.is_finite(),
            "coordinates must be finite"
        );
        assert!(
            (-90.0..=90.0).contains(&lat_deg),
            "latitude {lat_deg} out of range"
        );
        let mut lon = lon_deg % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon <= -180.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat_deg,
            lon_deg: lon,
        }
    }

    /// Latitude in degrees.
    pub fn lat_deg(self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub fn lon_deg(self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn great_circle_km(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// A point jittered uniformly within a disc of `radius_km` around
    /// `self` (approximate for small radii; adequate for metro spread).
    pub fn jitter_km<R: Rng + ?Sized>(self, radius_km: f64, rng: &mut R) -> GeoPoint {
        assert!(radius_km >= 0.0, "radius must be non-negative");
        let angle = rng.random::<f64>() * std::f64::consts::TAU;
        // sqrt for uniform density over the disc area.
        let r = radius_km * rng.random::<f64>().sqrt();
        let dlat = (r * angle.sin()) / 111.0; // km per degree latitude
        let coslat = self.lat_deg.to_radians().cos().abs().max(0.05);
        let dlon = (r * angle.cos()) / (111.0 * coslat);
        GeoPoint::new(
            (self.lat_deg + dlat).clamp(-89.9, 89.9),
            self.lon_deg + dlon,
        )
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.lat_deg, self.lon_deg)
    }
}

/// The world regions used to structure the synthetic topology.
///
/// Regions control where autonomous systems and hosts are placed and how
/// densely the simulated CDN deploys replicas (the paper's Fig. 4 tails
/// come from clients in regions poorly served by Akamai).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    NorthAmerica,
    SouthAmerica,
    Europe,
    Africa,
    MiddleEast,
    SouthAsia,
    EastAsia,
    Oceania,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 8] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Africa,
        Region::MiddleEast,
        Region::SouthAsia,
        Region::EastAsia,
        Region::Oceania,
    ];

    /// A representative central point for the region.
    pub fn center(self) -> GeoPoint {
        match self {
            Region::NorthAmerica => GeoPoint::new(39.5, -95.0),
            Region::SouthAmerica => GeoPoint::new(-15.0, -58.0),
            Region::Europe => GeoPoint::new(50.0, 10.0),
            Region::Africa => GeoPoint::new(2.0, 20.0),
            Region::MiddleEast => GeoPoint::new(28.0, 45.0),
            Region::SouthAsia => GeoPoint::new(21.0, 78.0),
            Region::EastAsia => GeoPoint::new(34.0, 115.0),
            Region::Oceania => GeoPoint::new(-28.0, 145.0),
        }
    }

    /// The half-width (km) of the disc in which entities of this region
    /// are scattered.
    pub fn spread_km(self) -> f64 {
        match self {
            Region::NorthAmerica => 2_200.0,
            Region::SouthAmerica => 1_900.0,
            Region::Europe => 1_300.0,
            Region::Africa => 2_400.0,
            Region::MiddleEast => 1_200.0,
            Region::SouthAsia => 1_400.0,
            Region::EastAsia => 1_800.0,
            Region::Oceania => 1_700.0,
        }
    }

    /// Samples a location within the region.
    pub fn sample_point<R: Rng + ?Sized>(self, rng: &mut R) -> GeoPoint {
        self.center().jitter_km(self.spread_km(), rng)
    }

    /// Stable kebab-case identifier, used in metric names and file
    /// columns where the display name's spaces would be awkward.
    pub fn slug(self) -> &'static str {
        match self {
            Region::NorthAmerica => "north-america",
            Region::SouthAmerica => "south-america",
            Region::Europe => "europe",
            Region::Africa => "africa",
            Region::MiddleEast => "middle-east",
            Region::SouthAsia => "south-asia",
            Region::EastAsia => "east-asia",
            Region::Oceania => "oceania",
        }
    }

    /// Stable small integer used to derive noise streams.
    pub fn index(self) -> u64 {
        Region::ALL
            .iter()
            .position(|r| *r == self)
            .expect("region in ALL") as u64 // crp-lint: allow(CRP001) — every Region variant appears in Region::ALL
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Europe => "Europe",
            Region::Africa => "Africa",
            Region::MiddleEast => "Middle East",
            Region::SouthAsia => "South Asia",
            Region::EastAsia => "East Asia",
            Region::Oceania => "Oceania",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(10.0, 20.0);
        assert!(p.great_circle_km(p) < 1e-6);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(40.0, -74.0);
        let b = GeoPoint::new(51.5, 0.0);
        assert!((a.great_circle_km(b) - b.great_circle_km(a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_new_york_london() {
        let nyc = GeoPoint::new(40.71, -74.01);
        let london = GeoPoint::new(51.51, -0.13);
        let d = nyc.great_circle_km(london);
        assert!((5_500.0..5_650.0).contains(&d), "got {d}");
    }

    #[test]
    fn longitude_normalizes() {
        let p = GeoPoint::new(0.0, 190.0);
        assert!((p.lon_deg() + 170.0).abs() < 1e-9);
        let q = GeoPoint::new(0.0, -190.0);
        assert!((q.lon_deg() - 170.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_out_of_range_latitude() {
        let _ = GeoPoint::new(91.0, 0.0);
    }

    #[test]
    fn jitter_stays_roughly_within_radius() {
        let mut rng = StdRng::seed_from_u64(7);
        let center = GeoPoint::new(45.0, 7.0);
        for _ in 0..200 {
            let p = center.jitter_km(500.0, &mut rng);
            // Allow slack for the flat-earth approximation.
            assert!(center.great_circle_km(p) < 650.0);
        }
    }

    #[test]
    fn regions_have_distinct_centers() {
        for (i, a) in Region::ALL.iter().enumerate() {
            for b in &Region::ALL[i + 1..] {
                assert!(a.center().great_circle_km(b.center()) > 1_000.0);
            }
        }
    }

    #[test]
    fn region_indexes_are_unique() {
        let mut seen: Vec<u64> = Region::ALL.iter().map(|r| r.index()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), Region::ALL.len());
    }

    #[test]
    fn sample_point_in_region_disc() {
        let mut rng = StdRng::seed_from_u64(3);
        for region in Region::ALL {
            for _ in 0..50 {
                let p = region.sample_point(&mut rng);
                assert!(region.center().great_circle_km(p) < region.spread_km() * 1.4);
            }
        }
    }
}
