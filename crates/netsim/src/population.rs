//! Host populations matching the paper's experimental cohorts.
//!
//! The evaluation used three host populations: PlanetLab nodes (candidate
//! servers — academically hosted, concentrated in North America, Europe
//! and East Asia), DNS servers from the King data set (clients — spread
//! worldwide), and Akamai replica servers (deployed by the CDN crate).
//! [`PopulationSpec`] encodes the first two as regional weight profiles.

use crate::geo::Region;
use crate::topology::{HostId, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The flavor of host being attached; controls last-mile latency.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostProfile {
    /// Academic/research node on a high-quality uplink.
    PlanetLab,
    /// A recursive DNS server, typically inside an ISP.
    DnsServer,
    /// An unremarkable end host (used by examples).
    Generic,
}

impl HostProfile {
    /// The last-mile latency range for the profile, in milliseconds.
    pub fn access_range_ms(self) -> (f64, f64) {
        match self {
            HostProfile::PlanetLab => (0.3, 2.0),
            HostProfile::DnsServer => (0.5, 5.0),
            HostProfile::Generic => (1.0, 18.0),
        }
    }

    /// The label prefix used for hosts of this profile.
    pub fn label_prefix(self) -> &'static str {
        match self {
            HostProfile::PlanetLab => "pl",
            HostProfile::DnsServer => "dns",
            HostProfile::Generic => "host",
        }
    }
}

/// A recipe for attaching `count` hosts with a regional weight profile.
///
/// # Example
///
/// ```
/// use crp_netsim::{NetworkBuilder, PopulationSpec};
///
/// let mut net = NetworkBuilder::new(1).build();
/// let servers = net.add_population(&PopulationSpec::planetlab(24));
/// assert_eq!(servers.len(), 24);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationSpec {
    profile: HostProfile,
    count: usize,
    weights: Vec<(Region, f64)>,
}

impl PopulationSpec {
    /// A PlanetLab-like cohort: heavy in North America and Europe, a
    /// meaningful East-Asia presence, thin elsewhere.
    pub fn planetlab(count: usize) -> Self {
        PopulationSpec {
            profile: HostProfile::PlanetLab,
            count,
            weights: vec![
                (Region::NorthAmerica, 0.44),
                (Region::Europe, 0.30),
                (Region::EastAsia, 0.15),
                (Region::Oceania, 0.04),
                (Region::SouthAmerica, 0.03),
                (Region::SouthAsia, 0.02),
                (Region::MiddleEast, 0.01),
                (Region::Africa, 0.01),
            ],
        }
    }

    /// A King-data-set-like cohort of DNS servers spread worldwide.
    pub fn dns_servers(count: usize) -> Self {
        PopulationSpec {
            profile: HostProfile::DnsServer,
            count,
            weights: vec![
                (Region::NorthAmerica, 0.30),
                (Region::Europe, 0.25),
                (Region::EastAsia, 0.15),
                (Region::SouthAsia, 0.08),
                (Region::SouthAmerica, 0.08),
                (Region::Oceania, 0.05),
                (Region::MiddleEast, 0.05),
                (Region::Africa, 0.04),
            ],
        }
    }

    /// A deliberately broadly-distributed DNS-server cohort — the paper's
    /// clustering data set was hand-picked for broad distribution, with a
    /// much larger share of hosts in sparsely-served regions than the raw
    /// King data set.
    pub fn broad_dns_servers(count: usize) -> Self {
        PopulationSpec {
            profile: HostProfile::DnsServer,
            count,
            weights: vec![
                (Region::NorthAmerica, 0.18),
                (Region::Europe, 0.16),
                (Region::EastAsia, 0.13),
                (Region::SouthAsia, 0.12),
                (Region::SouthAmerica, 0.12),
                (Region::Oceania, 0.10),
                (Region::MiddleEast, 0.10),
                (Region::Africa, 0.09),
            ],
        }
    }

    /// A custom cohort.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a negative weight, or if
    /// all weights are zero.
    pub fn custom(profile: HostProfile, count: usize, weights: Vec<(Region, f64)>) -> Self {
        assert!(!weights.is_empty(), "need at least one region weight");
        assert!(
            weights.iter().all(|(_, w)| *w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().map(|(_, w)| w).sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        PopulationSpec {
            profile,
            count,
            weights,
        }
    }

    /// A cohort confined to a single region.
    pub fn single_region(profile: HostProfile, count: usize, region: Region) -> Self {
        PopulationSpec::custom(profile, count, vec![(region, 1.0)])
    }

    /// The host profile of the cohort.
    pub fn profile(&self) -> HostProfile {
        self.profile
    }

    /// The number of hosts to attach.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The regional weights.
    pub fn weights(&self) -> &[(Region, f64)] {
        &self.weights
    }

    fn sample_region<R: Rng + ?Sized>(&self, rng: &mut R) -> Region {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut draw = rng.random::<f64>() * total;
        for (region, w) in &self.weights {
            if draw < *w {
                return *region;
            }
            draw -= w;
        }
        self.weights.last().expect("weights non-empty").0 // crp-lint: allow(CRP001) — weights are validated non-empty at construction
    }
}

impl Network {
    /// Attaches a population of hosts per `spec` and returns their ids in
    /// attachment order. Placement is deterministic given the network
    /// seed, the spec, and the number of hosts already attached.
    pub fn add_population(&mut self, spec: &PopulationSpec) -> Vec<HostId> {
        let mut rng = StdRng::seed_from_u64(crate::noise::mix(&[
            self.seed(),
            0x90_90,
            self.host_count() as u64,
            spec.count as u64,
        ]));
        let mut out = Vec::with_capacity(spec.count);
        for i in 0..spec.count {
            let region = spec.sample_region(&mut rng);
            let label = format!("{}-{}", spec.profile.label_prefix(), self.host_count());
            let _ = i;
            out.push(self.add_host(region, spec.profile.access_range_ms(), label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NetworkBuilder;
    use std::collections::BTreeMap;

    fn net() -> Network {
        NetworkBuilder::new(21)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(5)
            .build()
    }

    #[test]
    fn population_count_and_labels() {
        let mut net = net();
        let ids = net.add_population(&PopulationSpec::dns_servers(30));
        assert_eq!(ids.len(), 30);
        assert!(net.host(ids[0]).label().starts_with("dns-"));
    }

    #[test]
    fn planetlab_skews_to_north_america_and_europe() {
        let mut net = net();
        let ids = net.add_population(&PopulationSpec::planetlab(400));
        let mut counts: BTreeMap<Region, usize> = BTreeMap::new();
        for id in ids {
            *counts.entry(net.host(id).region()).or_default() += 1;
        }
        let na_eu = counts.get(&Region::NorthAmerica).copied().unwrap_or(0)
            + counts.get(&Region::Europe).copied().unwrap_or(0);
        assert!(na_eu > 240, "NA+EU share {na_eu}/400 too small");
    }

    #[test]
    fn dns_servers_cover_most_regions() {
        let mut net = net();
        let ids = net.add_population(&PopulationSpec::dns_servers(400));
        let mut regions: Vec<Region> = ids.iter().map(|id| net.host(*id).region()).collect();
        regions.sort();
        regions.dedup();
        assert!(regions.len() >= 7, "only {} regions covered", regions.len());
    }

    #[test]
    fn single_region_stays_put() {
        let mut net = net();
        let ids = net.add_population(&PopulationSpec::single_region(
            HostProfile::Generic,
            20,
            Region::SouthAmerica,
        ));
        assert!(ids
            .iter()
            .all(|id| net.host(*id).region() == Region::SouthAmerica));
    }

    #[test]
    fn placement_is_deterministic() {
        let mut a = net();
        let mut b = net();
        let ia = a.add_population(&PopulationSpec::planetlab(50));
        let ib = b.add_population(&PopulationSpec::planetlab(50));
        for (x, y) in ia.iter().zip(&ib) {
            assert_eq!(a.host(*x).location(), b.host(*y).location());
            assert_eq!(a.host(*x).asn(), b.host(*y).asn());
        }
    }

    #[test]
    fn sequential_populations_do_not_collide() {
        let mut net = net();
        let first = net.add_population(&PopulationSpec::planetlab(10));
        let second = net.add_population(&PopulationSpec::dns_servers(10));
        assert_eq!(first.len() + second.len(), net.host_count());
        assert_ne!(first[9], second[0]);
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn custom_rejects_empty_weights() {
        let _ = PopulationSpec::custom(HostProfile::Generic, 5, vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn custom_rejects_negative_weights() {
        let _ = PopulationSpec::custom(HostProfile::Generic, 5, vec![(Region::Europe, -1.0)]);
    }

    #[test]
    fn access_ranges_respect_profile() {
        let mut net = net();
        let ids = net.add_population(&PopulationSpec::planetlab(40));
        let (lo, hi) = HostProfile::PlanetLab.access_range_ms();
        for id in ids {
            let a = net.host(id).access_ms();
            assert!(a >= lo && a <= hi, "access {a} outside [{lo}, {hi}]");
        }
    }
}
