//! Resource records and responses.

use crate::name::DomainName;
use crp_netsim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A synthetic IPv4-like address identifying a server in the simulation.
///
/// Addresses are allocated from a dense index space and rendered in the
/// `10.x.y.z` private range, which keeps experiment output readable
/// without pretending to be real Internet addresses.
///
/// # Example
///
/// ```
/// use crp_dns::SimIp;
///
/// let ip = SimIp::from_index(65_795);
/// assert_eq!(ip.to_string(), "10.1.1.3");
/// assert_eq!(ip.index(), 65_795);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimIp(u32);

impl SimIp {
    /// The address for the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` needs more than 24 bits (the simulation never
    /// allocates that many servers).
    pub fn from_index(index: u32) -> Self {
        assert!(index < (1 << 24), "address space exhausted");
        SimIp(index)
    }

    /// The dense index this address was allocated from.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SimIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "10.{}.{}.{}",
            (self.0 >> 16) & 0xFF,
            (self.0 >> 8) & 0xFF,
            self.0 & 0xFF
        )
    }
}

/// The payload of a resource record.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// An address record.
    A(SimIp),
    /// An alias to another name (Akamai-style CNAME chains).
    Cname(DomainName),
}

/// A DNS resource record: a name, a time-to-live and a payload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    name: DomainName,
    ttl: SimDuration,
    data: RecordData,
}

impl ResourceRecord {
    /// Creates a record.
    pub fn new(name: DomainName, ttl: SimDuration, data: RecordData) -> Self {
        ResourceRecord { name, ttl, data }
    }

    /// The record's owner name.
    pub fn name(&self) -> &DomainName {
        &self.name
    }

    /// The record's time to live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// The record payload.
    pub fn data(&self) -> &RecordData {
        &self.data
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.data {
            RecordData::A(ip) => write!(f, "{} {} A {}", self.name, self.ttl, ip),
            RecordData::Cname(target) => {
                write!(f, "{} {} CNAME {}", self.name, self.ttl, target)
            }
        }
    }
}

/// An authoritative answer to a query: the question plus the full record
/// set (CNAME chain and terminal A records, like a `dig` answer section).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsResponse {
    question: DomainName,
    records: Vec<ResourceRecord>,
}

impl DnsResponse {
    /// Creates a response for `question` carrying `records`.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty — NXDOMAIN is represented by the
    /// resolver's error type, not by an empty response.
    pub fn new(question: DomainName, records: Vec<ResourceRecord>) -> Self {
        assert!(!records.is_empty(), "a response must carry records");
        DnsResponse { question, records }
    }

    /// The name that was asked.
    pub fn question(&self) -> &DomainName {
        &self.question
    }

    /// All records in the answer section.
    pub fn records(&self) -> &[ResourceRecord] {
        &self.records
    }

    /// The terminal A-record addresses, in answer order.
    ///
    /// # Example
    ///
    /// ```
    /// use crp_dns::{DnsResponse, DomainName, RecordData, ResourceRecord, SimIp};
    /// use crp_netsim::SimDuration;
    ///
    /// let q: DomainName = "www.foxnews.com".parse()?;
    /// let alias: DomainName = "a20.g.akamai.net".parse()?;
    /// let resp = DnsResponse::new(q.clone(), vec![
    ///     ResourceRecord::new(q, SimDuration::from_secs(300), RecordData::Cname(alias.clone())),
    ///     ResourceRecord::new(alias, SimDuration::from_secs(20), RecordData::A(SimIp::from_index(9))),
    /// ]);
    /// assert_eq!(resp.a_addresses(), vec![SimIp::from_index(9)]);
    /// # Ok::<(), crp_dns::ParseNameError>(())
    /// ```
    pub fn a_addresses(&self) -> Vec<SimIp> {
        self.records
            .iter()
            .filter_map(|r| match r.data() {
                RecordData::A(ip) => Some(*ip),
                RecordData::Cname(_) => None,
            })
            .collect()
    }

    /// The smallest TTL in the record set — the effective cache lifetime
    /// of the whole answer. An (unconstructible) empty response reports
    /// a zero TTL rather than panicking on the serving path.
    pub fn min_ttl(&self) -> SimDuration {
        self.records
            .iter()
            .map(ResourceRecord::ttl)
            .min()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn sim_ip_display_encodes_octets() {
        assert_eq!(SimIp::from_index(0).to_string(), "10.0.0.0");
        assert_eq!(SimIp::from_index(256).to_string(), "10.0.1.0");
        assert_eq!(SimIp::from_index(1 << 16).to_string(), "10.1.0.0");
    }

    #[test]
    #[should_panic(expected = "address space exhausted")]
    fn sim_ip_rejects_huge_index() {
        let _ = SimIp::from_index(1 << 24);
    }

    #[test]
    fn response_extracts_a_addresses_in_order() {
        let q = name("cdn.example.com");
        let resp = DnsResponse::new(
            q.clone(),
            vec![
                ResourceRecord::new(
                    q.clone(),
                    SimDuration::from_secs(20),
                    RecordData::A(SimIp::from_index(3)),
                ),
                ResourceRecord::new(
                    q,
                    SimDuration::from_secs(20),
                    RecordData::A(SimIp::from_index(1)),
                ),
            ],
        );
        assert_eq!(
            resp.a_addresses(),
            vec![SimIp::from_index(3), SimIp::from_index(1)]
        );
    }

    #[test]
    fn min_ttl_takes_cname_chain_into_account() {
        let q = name("www.foxnews.com");
        let alias = name("a20.g.akamai.net");
        let resp = DnsResponse::new(
            q.clone(),
            vec![
                ResourceRecord::new(
                    q,
                    SimDuration::from_mins(5),
                    RecordData::Cname(alias.clone()),
                ),
                ResourceRecord::new(
                    alias,
                    SimDuration::from_secs(20),
                    RecordData::A(SimIp::from_index(0)),
                ),
            ],
        );
        assert_eq!(resp.min_ttl(), SimDuration::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "must carry records")]
    fn response_rejects_empty_record_set() {
        let _ = DnsResponse::new(name("x.com"), vec![]);
    }

    #[test]
    fn record_display_mentions_type() {
        let rr = ResourceRecord::new(
            name("a.b.c"),
            SimDuration::from_secs(20),
            RecordData::A(SimIp::from_index(5)),
        );
        let s = rr.to_string();
        assert!(s.contains(" A "));
        assert!(s.contains("10.0.0.5"));
    }
}
