//! Zone delegation and iterative resolution.
//!
//! The [`crate::RecursiveResolver`] models the resolver-to-CDN hop that
//! CRP actually exercises; this module models the rest of the DNS tree —
//! a registry of zones with delegations (root → TLD → authoritative) —
//! so the *cost* of resolution can be accounted: an uncached lookup of
//! `www.foxnews.com` walks root, `com`, and the CDN's nameserver, and
//! each hop is a round trip from the resolver.
//!
//! The CDN plugs into a [`ZoneRegistry`] as the authoritative server for
//! its customers' zones, which lets experiments charge DNS latency to
//! probing (the overhead analysis of §VI) without changing the CRP code
//! paths.

use crate::name::DomainName;
use crate::record::DnsResponse;
use crate::resolver::AuthoritativeServer;
use crp_netsim::{HostId, Network, Rtt, SimTime};

/// A delegation: the most-specific zone suffix wins (longest match), so
/// `g.akamai-sim.net` shadows `net`.
struct Zone<'a> {
    suffix: DomainName,
    nameserver: HostId,
    authority: &'a dyn AuthoritativeServer,
}

/// A registry of delegated zones plus a root server, supporting
/// iterative resolution with per-hop latency accounting.
pub struct ZoneRegistry<'a> {
    root: HostId,
    zones: Vec<Zone<'a>>,
}

impl std::fmt::Debug for ZoneRegistry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZoneRegistry")
            .field("root", &self.root)
            .field("zones", &self.zones.len())
            .finish()
    }
}

/// Outcome of an iterative resolution.
#[derive(Clone, Debug, PartialEq)]
pub struct IterativeOutcome {
    /// The authoritative answer, or `None` for NXDOMAIN.
    pub response: Option<DnsResponse>,
    /// Hops walked (root and each delegation, including the final
    /// authoritative query).
    pub hops: u32,
    /// Total resolver-side latency spent on the walk.
    pub latency: Rtt,
}

impl<'a> ZoneRegistry<'a> {
    /// Creates a registry whose root server runs on `root`.
    pub fn new(root: HostId) -> Self {
        ZoneRegistry {
            root,
            zones: Vec::new(),
        }
    }

    /// Delegates `suffix` to `authority`, served from `nameserver`.
    ///
    /// # Panics
    ///
    /// Panics if the exact suffix is already delegated.
    pub fn delegate(
        &mut self,
        suffix: DomainName,
        nameserver: HostId,
        authority: &'a dyn AuthoritativeServer,
    ) {
        assert!(
            !self.zones.iter().any(|z| z.suffix == suffix),
            "zone {suffix} already delegated"
        );
        self.zones.push(Zone {
            suffix,
            nameserver,
            authority,
        });
    }

    /// Number of delegated zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// The most-specific delegated zone for `name`, if any.
    fn best_zone(&self, name: &DomainName) -> Option<&Zone<'a>> {
        self.zones
            .iter()
            .filter(|z| name.is_subdomain_of(&z.suffix))
            .max_by_key(|z| z.suffix.label_count())
    }

    /// Resolves `query` iteratively from `resolver` at time `now`:
    /// one round trip to the root (referral), then — label by label
    /// through the delegation chain — a round trip per referral, and a
    /// final round trip to the authoritative nameserver.
    ///
    /// The simplified chain is root → delegated zone (real resolvers walk
    /// every label; CDN zones are delegated directly from the root's
    /// referral here, matching how a warmed resolver behaves with TLD
    /// referrals cached).
    pub fn resolve_iteratively(
        &self,
        net: &Network,
        resolver: HostId,
        query: &DomainName,
        now: SimTime,
    ) -> IterativeOutcome {
        // Hop 1: referral from the root.
        let mut latency = net.rtt(resolver, self.root, now);
        let mut hops = 1;
        let Some(zone) = self.best_zone(query) else {
            return IterativeOutcome {
                response: None,
                hops,
                latency,
            };
        };
        // Hop 2: the zone's nameserver answers authoritatively.
        let t2 = SimTime::from_millis(now.as_millis() + latency.millis().ceil() as u64);
        latency = latency + net.rtt(resolver, zone.nameserver, t2);
        hops += 1;
        IterativeOutcome {
            response: zone.authority.authoritative_answer(query, resolver, t2),
            hops,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, ResourceRecord, SimIp};
    use crp_netsim::{NetworkBuilder, PopulationSpec, SimDuration};

    struct Fixed(u32);

    impl AuthoritativeServer for Fixed {
        fn authoritative_answer(
            &self,
            q: &DomainName,
            _resolver: HostId,
            _now: SimTime,
        ) -> Option<DnsResponse> {
            Some(DnsResponse::new(
                q.clone(),
                vec![ResourceRecord::new(
                    q.clone(),
                    SimDuration::from_secs(20),
                    RecordData::A(SimIp::from_index(self.0)),
                )],
            ))
        }
    }

    fn hosts(n: usize) -> (Network, Vec<HostId>) {
        let mut net = NetworkBuilder::new(61)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(3)
            .build();
        let hosts = net.add_population(&PopulationSpec::dns_servers(n));
        (net, hosts)
    }

    #[test]
    fn walks_root_then_zone_and_accounts_latency() {
        let (net, h) = hosts(3);
        let auth = Fixed(7);
        let mut reg = ZoneRegistry::new(h[0]);
        reg.delegate("g.akamai-sim.net".parse().unwrap(), h[1], &auth);
        let q: DomainName = "a1000.g.akamai-sim.net".parse().unwrap();
        let out = reg.resolve_iteratively(&net, h[2], &q, SimTime::ZERO);
        assert_eq!(out.hops, 2);
        let resp = out.response.expect("zone answers");
        assert_eq!(resp.a_addresses(), vec![SimIp::from_index(7)]);
        // Latency is at least both individual round trips.
        let to_root = net.rtt(h[2], h[0], SimTime::ZERO);
        assert!(out.latency > to_root);
    }

    #[test]
    fn longest_suffix_wins() {
        let (net, h) = hosts(4);
        let coarse = Fixed(1);
        let fine = Fixed(2);
        let mut reg = ZoneRegistry::new(h[0]);
        reg.delegate("net".parse().unwrap(), h[1], &coarse);
        reg.delegate("g.akamai-sim.net".parse().unwrap(), h[2], &fine);
        let q: DomainName = "a9.g.akamai-sim.net".parse().unwrap();
        let out = reg.resolve_iteratively(&net, h[3], &q, SimTime::ZERO);
        assert_eq!(
            out.response.unwrap().a_addresses(),
            vec![SimIp::from_index(2)]
        );
        // A name only under `net` goes to the coarse zone.
        let q2: DomainName = "example.net".parse().unwrap();
        let out2 = reg.resolve_iteratively(&net, h[3], &q2, SimTime::ZERO);
        assert_eq!(
            out2.response.unwrap().a_addresses(),
            vec![SimIp::from_index(1)]
        );
    }

    #[test]
    fn undelegated_name_is_nxdomain_after_root_hop() {
        let (net, h) = hosts(2);
        let reg = ZoneRegistry::new(h[0]);
        let q: DomainName = "nowhere.example".parse().unwrap();
        let out = reg.resolve_iteratively(&net, h[1], &q, SimTime::ZERO);
        assert_eq!(out.response, None);
        assert_eq!(out.hops, 1);
        assert!(out.latency.millis() > 0.0);
    }

    #[test]
    #[should_panic(expected = "already delegated")]
    fn duplicate_delegation_rejected() {
        let (_net, h) = hosts(2);
        let auth = Fixed(0);
        let mut reg = ZoneRegistry::new(h[0]);
        reg.delegate("com".parse().unwrap(), h[1], &auth);
        reg.delegate("com".parse().unwrap(), h[1], &auth);
    }
}
