//! Recursive resolution.
//!
//! A [`RecursiveResolver`] is a DNS server attached to a network host (the
//! clients in the paper's evaluation *are* recursive DNS servers from the
//! King data set). It answers lookups from its cache when possible and
//! otherwise consults an [`AuthoritativeServer`] — in this reproduction,
//! the CDN's mapping system.
//!
//! The resolver's host identity is forwarded with every upstream query
//! because that is the defining quirk of CDN DNS redirection: the
//! authoritative side localizes the *resolver*, not the end user.

use crate::name::DomainName;
use crate::record::DnsResponse;
use crate::TtlCache;
use crp_netsim::{HostId, SimTime};
use std::error::Error;
use std::fmt;

/// An authoritative DNS server whose answers may depend on who asks and
/// when — the interface a CDN mapping system exposes to the world.
pub trait AuthoritativeServer {
    /// Answers `query` for a resolver located at `resolver`, at simulated
    /// time `now`. Returns `None` for names outside the server's zones
    /// (NXDOMAIN).
    fn authoritative_answer(
        &self,
        query: &DomainName,
        resolver: HostId,
        now: SimTime,
    ) -> Option<DnsResponse>;
}

/// Blanket impl so `&T` works wherever an authoritative server is needed.
impl<T: AuthoritativeServer + ?Sized> AuthoritativeServer for &T {
    fn authoritative_answer(
        &self,
        query: &DomainName,
        resolver: HostId,
        now: SimTime,
    ) -> Option<DnsResponse> {
        (**self).authoritative_answer(query, resolver, now)
    }
}

/// Resolution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// The authoritative side does not know the name.
    NxDomain {
        /// The name that failed to resolve.
        name: DomainName,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain { name } => write!(f, "no such domain: {name}"),
        }
    }
}

impl Error for ResolveError {}

/// Counters describing a resolver's behavior, for overhead accounting
/// (the paper argues CRP's load on the CDN is commensalistic; these
/// counters are how the reproduction quantifies that claim).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Lookups answered from cache.
    pub cache_hits: u64,
    /// Lookups forwarded upstream.
    pub upstream_queries: u64,
    /// Lookups that ended in NXDOMAIN.
    pub failures: u64,
}

/// A caching recursive resolver attached to a simulated host.
///
/// # Example
///
/// ```
/// use crp_dns::{AuthoritativeServer, DnsResponse, DomainName, RecordData,
///               RecursiveResolver, ResourceRecord, SimIp};
/// use crp_netsim::{HostId, NetworkBuilder, PopulationSpec, SimDuration, SimTime};
///
/// struct Fixed;
/// impl AuthoritativeServer for Fixed {
///     fn authoritative_answer(&self, q: &DomainName, _r: HostId, _t: SimTime)
///         -> Option<DnsResponse>
///     {
///         Some(DnsResponse::new(q.clone(), vec![ResourceRecord::new(
///             q.clone(), SimDuration::from_secs(20), RecordData::A(SimIp::from_index(1)),
///         )]))
///     }
/// }
///
/// let mut net = NetworkBuilder::new(1).build();
/// let host = net.add_population(&PopulationSpec::dns_servers(1))[0];
/// let mut resolver = RecursiveResolver::new(host);
/// let name: DomainName = "cdn.example.com".parse()?;
/// let resp = resolver.resolve(&name, &Fixed, SimTime::ZERO)?;
/// assert_eq!(resp.a_addresses(), vec![SimIp::from_index(1)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RecursiveResolver {
    host: HostId,
    cache: TtlCache,
    stats: ResolverStats,
}

impl RecursiveResolver {
    /// Creates a resolver running on the given host.
    pub fn new(host: HostId) -> Self {
        RecursiveResolver {
            host,
            cache: TtlCache::new(),
            stats: ResolverStats::default(),
        }
    }

    /// The host this resolver runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Read access to the resolver's cache.
    pub fn cache(&self) -> &TtlCache {
        &self.cache
    }

    /// Resolves `name`, serving from cache when the cached answer is
    /// still fresh at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::NxDomain`] when the authoritative server
    /// does not know the name.
    pub fn resolve<A: AuthoritativeServer>(
        &mut self,
        name: &DomainName,
        upstream: A,
        now: SimTime,
    ) -> Result<DnsResponse, ResolveError> {
        if let Some(hit) = self.cache.get(name, now) {
            self.stats.cache_hits += 1;
            return Ok(hit.clone());
        }
        self.resolve_uncached(name, upstream, now)
    }

    /// Resolves `name`, always consulting the authoritative server — the
    /// behavior of `dig +norecurse`-style probing used by CRP clients
    /// that want a fresh redirection sample.
    ///
    /// The answer still populates the cache so subsequent [`resolve`]
    /// calls benefit.
    ///
    /// # Errors
    ///
    /// Returns [`ResolveError::NxDomain`] when the authoritative server
    /// does not know the name.
    ///
    /// [`resolve`]: RecursiveResolver::resolve
    pub fn resolve_uncached<A: AuthoritativeServer>(
        &mut self,
        name: &DomainName,
        upstream: A,
        now: SimTime,
    ) -> Result<DnsResponse, ResolveError> {
        self.stats.upstream_queries += 1;
        match upstream.authoritative_answer(name, self.host, now) {
            Some(resp) => {
                self.cache.insert(resp.clone(), now);
                Ok(resp)
            }
            None => {
                self.stats.failures += 1;
                Err(ResolveError::NxDomain { name: name.clone() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, ResourceRecord, SimIp};
    use crp_netsim::{NetworkBuilder, PopulationSpec, SimDuration};
    use std::cell::Cell;

    /// An authoritative server that changes its answer every call and
    /// counts how often it is consulted.
    struct Counting {
        calls: Cell<u32>,
        ttl: SimDuration,
    }

    impl AuthoritativeServer for Counting {
        fn authoritative_answer(
            &self,
            q: &DomainName,
            _resolver: HostId,
            _now: SimTime,
        ) -> Option<DnsResponse> {
            let n = self.calls.get();
            self.calls.set(n + 1);
            Some(DnsResponse::new(
                q.clone(),
                vec![ResourceRecord::new(
                    q.clone(),
                    self.ttl,
                    RecordData::A(SimIp::from_index(n)),
                )],
            ))
        }
    }

    struct NxOnly;

    impl AuthoritativeServer for NxOnly {
        fn authoritative_answer(
            &self,
            _q: &DomainName,
            _resolver: HostId,
            _now: SimTime,
        ) -> Option<DnsResponse> {
            None
        }
    }

    fn resolver() -> RecursiveResolver {
        let mut net = NetworkBuilder::new(1)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(2)
            .build();
        let host = net.add_population(&PopulationSpec::dns_servers(1))[0];
        RecursiveResolver::new(host)
    }

    #[test]
    fn cache_prevents_upstream_queries_within_ttl() {
        let mut r = resolver();
        let auth = Counting {
            calls: Cell::new(0),
            ttl: SimDuration::from_secs(20),
        };
        let name: DomainName = "cdn.example.com".parse().unwrap();
        let _ = r.resolve(&name, &auth, SimTime::ZERO).unwrap();
        let _ = r.resolve(&name, &auth, SimTime::from_secs(10)).unwrap();
        assert_eq!(auth.calls.get(), 1);
        assert_eq!(r.stats().cache_hits, 1);
        assert_eq!(r.stats().upstream_queries, 1);
    }

    #[test]
    fn ttl_expiry_forces_refetch() {
        let mut r = resolver();
        let auth = Counting {
            calls: Cell::new(0),
            ttl: SimDuration::from_secs(20),
        };
        let name: DomainName = "cdn.example.com".parse().unwrap();
        let first = r.resolve(&name, &auth, SimTime::ZERO).unwrap();
        let second = r.resolve(&name, &auth, SimTime::from_secs(25)).unwrap();
        assert_eq!(auth.calls.get(), 2);
        assert_ne!(first.a_addresses(), second.a_addresses());
    }

    #[test]
    fn resolve_uncached_bypasses_cache_but_populates_it() {
        let mut r = resolver();
        let auth = Counting {
            calls: Cell::new(0),
            ttl: SimDuration::from_secs(1_000),
        };
        let name: DomainName = "cdn.example.com".parse().unwrap();
        let _ = r.resolve_uncached(&name, &auth, SimTime::ZERO).unwrap();
        let _ = r
            .resolve_uncached(&name, &auth, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(auth.calls.get(), 2);
        // Cached copy from the second fetch serves a plain resolve.
        let resp = r.resolve(&name, &auth, SimTime::from_secs(2)).unwrap();
        assert_eq!(auth.calls.get(), 2);
        assert_eq!(resp.a_addresses(), vec![SimIp::from_index(1)]);
    }

    #[test]
    fn nxdomain_is_an_error_and_counted() {
        let mut r = resolver();
        let name: DomainName = "nope.example.com".parse().unwrap();
        let err = r.resolve(&name, &NxOnly, SimTime::ZERO).unwrap_err();
        assert_eq!(err, ResolveError::NxDomain { name: name.clone() });
        assert_eq!(r.stats().failures, 1);
        let msg = err.to_string();
        assert!(msg.contains("nope.example.com"));
    }

    #[test]
    fn trait_object_upstream_works() {
        let mut r = resolver();
        let auth = Counting {
            calls: Cell::new(0),
            ttl: SimDuration::from_secs(20),
        };
        let dyn_auth: &dyn AuthoritativeServer = &auth;
        let name: DomainName = "cdn.example.com".parse().unwrap();
        assert!(r.resolve(&name, dyn_auth, SimTime::ZERO).is_ok());
    }
}
