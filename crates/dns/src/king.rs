//! The King measurement technique over the DNS substrate.
//!
//! King (Gummadi, Saroiu & Gribble, IMW 2002) estimates the RTT between
//! two *DNS servers* A and B without controlling either:
//!
//! 1. measure the RTT from the measurement host to A directly (one
//!    iterative query answered by A itself);
//! 2. issue a *recursive* query to A for a name that only B can answer
//!    (a random, cache-busting label under B's zone): the response time
//!    is ≈ RTT(me → A) + RTT(A → B);
//! 3. subtract (1) from (2).
//!
//! The paper used King for all its ground-truth RTTs. `crp-netsim`
//! provides a statistical error model ([`crp_netsim::KingEstimator`])
//! for bulk use; this module walks the actual query path over the DNS
//! machinery, which is where King's characteristic error comes from —
//! the estimate is made of two separate measurements taken milliseconds
//! apart on a jittery network.

use crate::name::DomainName;
use crp_netsim::{HostId, Network, Rtt, SimTime};

/// One King measurement session from a measurement host.
///
/// # Example
///
/// ```
/// use crp_dns::king::DnsKing;
/// use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
///
/// let mut net = NetworkBuilder::new(3).build();
/// let hosts = net.add_population(&PopulationSpec::dns_servers(3));
/// let king = DnsKing::new(&net, hosts[0]);
/// let est = king.estimate(hosts[1], hosts[2], SimTime::ZERO);
/// let truth = net.rtt(hosts[1], hosts[2], SimTime::ZERO);
/// assert!((est.millis() - truth.millis()).abs() < truth.millis());
/// ```
#[derive(Debug)]
pub struct DnsKing<'a> {
    net: &'a Network,
    vantage: HostId,
}

impl<'a> DnsKing<'a> {
    /// Creates a session measuring from `vantage`.
    pub fn new(net: &'a Network, vantage: HostId) -> Self {
        DnsKing { net, vantage }
    }

    /// The measurement host.
    pub fn vantage(&self) -> HostId {
        self.vantage
    }

    /// The cache-busting query name King would send through `a` for a
    /// zone hosted at `b` — a random label under the target's zone so no
    /// cache can answer it.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ParseNameError`] if the generated name is not a
    /// valid domain (cannot happen for in-range host indices, but the
    /// serving path refuses to panic on principle).
    pub fn probe_name(&self, b: HostId, t: SimTime) -> Result<DomainName, crate::ParseNameError> {
        format!(
            "king-{}-{}.ns{}.kingprobe.example",
            self.vantage.index(),
            t.as_millis(),
            b.index()
        )
        .parse()
    }

    /// One King estimate of RTT(a, b) at time `t`.
    ///
    /// Walks the two measurements explicitly: the direct round trip to
    /// `a`, then the recursive round trip through `a` to `b`. The two
    /// legs sample the network a few hundred milliseconds apart, which
    /// is exactly how real King picks up jitter-driven error.
    pub fn estimate(&self, a: HostId, b: HostId, t: SimTime) -> Rtt {
        // Step 1: iterative query answered by `a` itself.
        let direct = self.net.rtt(self.vantage, a, t);
        // Step 2: recursive query; `a` forwards to `b` and relays the
        // answer. The forward leg happens after the first leg has
        // completed, so it samples a slightly later instant.
        let t2 = SimTime::from_millis(t.as_millis() + direct.millis().ceil() as u64 + 50);
        let me_to_a = self.net.rtt(self.vantage, a, t2);
        let a_to_b = self.net.rtt(a, b, t2);
        let recursive = me_to_a + a_to_b;
        // Step 3: the difference is the estimate.
        recursive - direct
    }

    /// The median of `attempts` estimates spread over `[start, end)` —
    /// how King is used in practice.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero or the interval is empty.
    pub fn median_estimate(
        &self,
        a: HostId,
        b: HostId,
        start: SimTime,
        end: SimTime,
        attempts: usize,
    ) -> Rtt {
        assert!(attempts > 0, "need at least one attempt");
        assert!(end > start, "empty measurement interval");
        let span = (end - start).as_millis();
        let step = (span / attempts as u64).max(1);
        let mut samples: Vec<Rtt> = (0..attempts)
            .map(|i| {
                self.estimate(
                    a,
                    b,
                    SimTime::from_millis(start.as_millis() + i as u64 * step),
                )
            })
            .collect();
        samples.sort();
        let mid = samples.len() / 2;
        samples.get(mid).copied().unwrap_or(Rtt::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn world() -> (Network, Vec<HostId>) {
        let mut net = NetworkBuilder::new(19)
            .tier1_count(3)
            .transit_per_region(2)
            .stubs_per_region(5)
            .build();
        let hosts = net.add_population(&PopulationSpec::dns_servers(8));
        (net, hosts)
    }

    #[test]
    fn estimates_track_truth_within_king_error() {
        let (net, hosts) = world();
        let king = DnsKing::new(&net, hosts[0]);
        let mut rel_errs = Vec::new();
        for (i, &a) in hosts[1..].iter().enumerate() {
            for &b in &hosts[i + 2..] {
                let t = SimTime::from_mins(30);
                let est = king.median_estimate(a, b, t, SimTime::from_mins(90), 5);
                let truth = net.mean_rtt(a, b, t, SimTime::from_mins(90), 5);
                rel_errs.push((est.millis() - truth.millis()).abs() / truth.millis());
            }
        }
        rel_errs.sort_by(f64::total_cmp);
        let median = rel_errs[rel_errs.len() / 2];
        // Published King error: roughly 10-20% median.
        assert!(median < 0.25, "median relative error {median:.3}");
    }

    #[test]
    fn estimate_is_positive_and_finite() {
        let (net, hosts) = world();
        let king = DnsKing::new(&net, hosts[2]);
        for i in 0..20u64 {
            let est = king.estimate(hosts[3], hosts[4], SimTime::from_mins(i * 7));
            assert!(est.millis() >= 0.0);
            assert!(est.millis() < 2_000.0);
        }
    }

    #[test]
    fn probe_names_are_cache_busting() {
        let (net, hosts) = world();
        let king = DnsKing::new(&net, hosts[0]);
        let n1 = king.probe_name(hosts[1], SimTime::from_millis(1)).unwrap();
        let n2 = king.probe_name(hosts[1], SimTime::from_millis(2)).unwrap();
        assert_ne!(n1, n2, "each probe must miss every cache");
        let other_target = king.probe_name(hosts[2], SimTime::from_millis(1)).unwrap();
        assert_ne!(n1, other_target);
    }

    #[test]
    fn vantage_position_affects_error_not_sign() {
        // Two vantages should both produce usable estimates of the same
        // pair.
        let (net, hosts) = world();
        let t = SimTime::from_mins(5);
        let truth = net.rtt(hosts[4], hosts[5], t).millis();
        for &vantage in &[hosts[0], hosts[7]] {
            let king = DnsKing::new(&net, vantage);
            let est = king.estimate(hosts[4], hosts[5], t).millis();
            assert!(
                (est - truth).abs() / truth < 0.8,
                "vantage {vantage}: est {est:.1} truth {truth:.1}"
            );
        }
    }
}
