//! A TTL-respecting record cache.

use crate::name::DomainName;
use crate::record::DnsResponse;
use crp_netsim::SimTime;
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct Entry {
    response: DnsResponse,
    expires_at: SimTime,
}

/// A cache of DNS responses keyed by question name, with expiry driven by
/// the smallest TTL in each answer.
///
/// Akamai-style CDNs keep edge-name TTLs tiny (~20 s) precisely so caches
/// like this one re-ask frequently; the cache is what turns a CDN's TTL
/// choice into the client's effective observation rate.
///
/// # Example
///
/// ```
/// use crp_dns::{DnsResponse, DomainName, RecordData, ResourceRecord, SimIp, TtlCache};
/// use crp_netsim::{SimDuration, SimTime};
///
/// let mut cache = TtlCache::new();
/// let q: DomainName = "cdn.example.com".parse()?;
/// let resp = DnsResponse::new(q.clone(), vec![ResourceRecord::new(
///     q.clone(), SimDuration::from_secs(20), RecordData::A(SimIp::from_index(1)),
/// )]);
/// cache.insert(resp, SimTime::ZERO);
/// assert!(cache.get(&q, SimTime::from_secs(10)).is_some());
/// assert!(cache.get(&q, SimTime::from_secs(30)).is_none());
/// # Ok::<(), crp_dns::ParseNameError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TtlCache {
    entries: HashMap<DomainName, Entry>,
}

impl TtlCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TtlCache::default()
    }

    /// Stores a response, timestamped `now`. Replaces any previous entry
    /// for the same question.
    pub fn insert(&mut self, response: DnsResponse, now: SimTime) {
        let expires_at = now + response.min_ttl();
        self.entries.insert(
            response.question().clone(),
            Entry {
                response,
                expires_at,
            },
        );
    }

    /// Returns the cached response for `name` if it has not expired at
    /// `now`. An entry whose expiry equals `now` is already stale.
    pub fn get(&self, name: &DomainName, now: SimTime) -> Option<&DnsResponse> {
        self.entries
            .get(name)
            .filter(|e| e.expires_at > now)
            .map(|e| &e.response)
    }

    /// Drops every entry that has expired at `now` and returns how many
    /// were removed.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    /// Number of entries currently stored (including expired ones not yet
    /// purged).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, ResourceRecord, SimIp};
    use crp_netsim::SimDuration;

    fn response(name: &str, ttl_secs: u64, ip: u32) -> DnsResponse {
        let q: DomainName = name.parse().unwrap();
        DnsResponse::new(
            q.clone(),
            vec![ResourceRecord::new(
                q,
                SimDuration::from_secs(ttl_secs),
                RecordData::A(SimIp::from_index(ip)),
            )],
        )
    }

    #[test]
    fn fresh_entries_hit() {
        let mut cache = TtlCache::new();
        cache.insert(response("a.com", 20, 1), SimTime::ZERO);
        let hit = cache.get(&"a.com".parse().unwrap(), SimTime::from_secs(19));
        assert_eq!(hit.unwrap().a_addresses(), vec![SimIp::from_index(1)]);
    }

    #[test]
    fn expiry_is_exclusive_at_boundary() {
        let mut cache = TtlCache::new();
        cache.insert(response("a.com", 20, 1), SimTime::ZERO);
        assert!(cache
            .get(&"a.com".parse().unwrap(), SimTime::from_secs(20))
            .is_none());
    }

    #[test]
    fn insert_replaces_previous_answer() {
        let mut cache = TtlCache::new();
        cache.insert(response("a.com", 20, 1), SimTime::ZERO);
        cache.insert(response("a.com", 20, 2), SimTime::from_secs(5));
        let hit = cache
            .get(&"a.com".parse().unwrap(), SimTime::from_secs(10))
            .unwrap();
        assert_eq!(hit.a_addresses(), vec![SimIp::from_index(2)]);
    }

    #[test]
    fn purge_removes_only_expired() {
        let mut cache = TtlCache::new();
        cache.insert(response("a.com", 10, 1), SimTime::ZERO);
        cache.insert(response("b.com", 100, 2), SimTime::ZERO);
        let removed = cache.purge_expired(SimTime::from_secs(50));
        assert_eq!(removed, 1);
        assert_eq!(cache.len(), 1);
        assert!(cache
            .get(&"b.com".parse().unwrap(), SimTime::from_secs(50))
            .is_some());
    }

    #[test]
    fn names_are_case_insensitive_keys() {
        let mut cache = TtlCache::new();
        cache.insert(response("CDN.Example.com", 20, 7), SimTime::ZERO);
        assert!(cache
            .get(&"cdn.example.COM".parse().unwrap(), SimTime::from_secs(1))
            .is_some());
    }

    #[test]
    fn clear_empties() {
        let mut cache = TtlCache::new();
        cache.insert(response("a.com", 20, 1), SimTime::ZERO);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
