//! Domain names.

use serde::{Deserialize, Serialize, Value};
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A validated, case-normalized DNS domain name.
///
/// Labels are stored lowercase; comparison and hashing are therefore
/// case-insensitive, matching DNS semantics.
///
/// Labels live behind an `Arc`, so cloning a name — which the CDN
/// answer path does several times per DNS response — is a reference
/// count bump, not a per-label heap copy. Names are immutable after
/// parsing, so the sharing is invisible.
///
/// # Example
///
/// ```
/// use crp_dns::DomainName;
///
/// let a: DomainName = "WWW.FoxNews.COM".parse()?;
/// let b: DomainName = "www.foxnews.com".parse()?;
/// assert_eq!(a, b);
/// assert_eq!(a.to_string(), "www.foxnews.com");
/// # Ok::<(), crp_dns::ParseNameError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainName {
    labels: Arc<[String]>,
}

impl Serialize for DomainName {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for DomainName {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::String(s) => s
                .parse()
                .map_err(|e: ParseNameError| serde::Error::custom(e.to_string())),
            other => Err(serde::Error::custom(format!(
                "expected domain name string, got {other:?}"
            ))),
        }
    }
}

impl DomainName {
    /// Maximum length of a single label.
    pub const MAX_LABEL_LEN: usize = 63;
    /// Maximum length of the full name (dotted form).
    pub const MAX_NAME_LEN: usize = 253;

    /// The labels of the name, most-significant last
    /// (`["www", "foxnews", "com"]`).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether `self` is a subdomain of (or equal to) `suffix`.
    ///
    /// # Example
    ///
    /// ```
    /// use crp_dns::DomainName;
    ///
    /// let host: DomainName = "a1105.g.akamai.net".parse()?;
    /// let zone: DomainName = "akamai.net".parse()?;
    /// assert!(host.is_subdomain_of(&zone));
    /// assert!(!zone.is_subdomain_of(&host));
    /// # Ok::<(), crp_dns::ParseNameError>(())
    /// ```
    pub fn is_subdomain_of(&self, suffix: &DomainName) -> bool {
        self.labels.ends_with(&suffix.labels)
    }

    /// Prepends a label, producing `label.self`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the label is invalid or the result
    /// would exceed the maximum name length.
    pub fn prepend(&self, label: &str) -> Result<DomainName, ParseNameError> {
        let mut s = String::with_capacity(label.len() + 1 + self.to_string().len());
        s.push_str(label);
        s.push('.');
        s.push_str(&self.to_string());
        s.parse()
    }
}

impl FromStr for DomainName {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Err(ParseNameError::Empty);
        }
        if trimmed.len() > Self::MAX_NAME_LEN {
            return Err(ParseNameError::TooLong { len: trimmed.len() });
        }
        let mut labels = Vec::new();
        for raw in trimmed.split('.') {
            if raw.is_empty() {
                return Err(ParseNameError::EmptyLabel);
            }
            if raw.len() > Self::MAX_LABEL_LEN {
                return Err(ParseNameError::LabelTooLong {
                    label: raw.to_owned(),
                });
            }
            if !raw
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(ParseNameError::BadCharacter {
                    label: raw.to_owned(),
                });
            }
            if raw.starts_with('-') || raw.ends_with('-') {
                return Err(ParseNameError::BadHyphen {
                    label: raw.to_owned(),
                });
            }
            labels.push(raw.to_ascii_lowercase());
        }
        Ok(DomainName {
            labels: labels.into(),
        })
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.labels.join("."))
    }
}

/// Error parsing a [`DomainName`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseNameError {
    /// The input was empty.
    Empty,
    /// The dotted form exceeds [`DomainName::MAX_NAME_LEN`].
    TooLong {
        /// Actual length seen.
        len: usize,
    },
    /// A label between dots was empty.
    EmptyLabel,
    /// A label exceeds [`DomainName::MAX_LABEL_LEN`].
    LabelTooLong {
        /// The offending label.
        label: String,
    },
    /// A label contains a character outside `[a-zA-Z0-9_-]`.
    BadCharacter {
        /// The offending label.
        label: String,
    },
    /// A label starts or ends with a hyphen.
    BadHyphen {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::Empty => write!(f, "domain name is empty"),
            ParseNameError::TooLong { len } => {
                write!(
                    f,
                    "domain name is {len} bytes, maximum is {}",
                    DomainName::MAX_NAME_LEN
                )
            }
            ParseNameError::EmptyLabel => write!(f, "domain name contains an empty label"),
            ParseNameError::LabelTooLong { label } => {
                write!(
                    f,
                    "label `{label}` exceeds {} bytes",
                    DomainName::MAX_LABEL_LEN
                )
            }
            ParseNameError::BadCharacter { label } => {
                write!(f, "label `{label}` contains an invalid character")
            }
            ParseNameError::BadHyphen { label } => {
                write!(f, "label `{label}` starts or ends with a hyphen")
            }
        }
    }
}

impl Error for ParseNameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes_case() {
        let n: DomainName = "Us.I1.Yimg.COM".parse().unwrap();
        assert_eq!(n.to_string(), "us.i1.yimg.com");
        assert_eq!(n.label_count(), 4);
    }

    #[test]
    fn trailing_dot_is_accepted() {
        let a: DomainName = "example.com.".parse().unwrap();
        let b: DomainName = "example.com".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_empty_and_empty_labels() {
        assert_eq!("".parse::<DomainName>(), Err(ParseNameError::Empty));
        assert_eq!(
            "a..b".parse::<DomainName>(),
            Err(ParseNameError::EmptyLabel)
        );
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(matches!(
            "exa mple.com".parse::<DomainName>(),
            Err(ParseNameError::BadCharacter { .. })
        ));
        assert!(matches!(
            "exa!mple.com".parse::<DomainName>(),
            Err(ParseNameError::BadCharacter { .. })
        ));
    }

    #[test]
    fn rejects_leading_trailing_hyphen() {
        assert!(matches!(
            "-bad.com".parse::<DomainName>(),
            Err(ParseNameError::BadHyphen { .. })
        ));
        assert!(matches!(
            "bad-.com".parse::<DomainName>(),
            Err(ParseNameError::BadHyphen { .. })
        ));
        // Interior hyphens are fine.
        assert!("foo-bar.com".parse::<DomainName>().is_ok());
    }

    #[test]
    fn rejects_over_long_label() {
        let label = "a".repeat(64);
        assert!(matches!(
            format!("{label}.com").parse::<DomainName>(),
            Err(ParseNameError::LabelTooLong { .. })
        ));
    }

    #[test]
    fn rejects_over_long_name() {
        let name = ["abcdefgh"; 32].join(".");
        assert!(matches!(
            name.parse::<DomainName>(),
            Err(ParseNameError::TooLong { .. })
        ));
    }

    #[test]
    fn subdomain_relation() {
        let host: DomainName = "a1105.g.akamai.net".parse().unwrap();
        let zone: DomainName = "g.akamai.net".parse().unwrap();
        let other: DomainName = "akamaiedge.net".parse().unwrap();
        assert!(host.is_subdomain_of(&zone));
        assert!(host.is_subdomain_of(&host));
        assert!(!host.is_subdomain_of(&other));
    }

    #[test]
    fn prepend_builds_subdomain() {
        let zone: DomainName = "g.akamai.net".parse().unwrap();
        let host = zone.prepend("a42").unwrap();
        assert_eq!(host.to_string(), "a42.g.akamai.net");
        assert!(host.is_subdomain_of(&zone));
    }

    #[test]
    fn error_messages_are_lowercase_nonempty() {
        let errs = [
            ParseNameError::Empty,
            ParseNameError::EmptyLabel,
            ParseNameError::TooLong { len: 300 },
            ParseNameError::LabelTooLong { label: "x".into() },
            ParseNameError::BadCharacter { label: "x".into() },
            ParseNameError::BadHyphen { label: "x".into() },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }
}
