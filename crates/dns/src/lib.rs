//! Simplified DNS substrate for the CRP reproduction.
//!
//! CRP's only interface to the CDN is DNS: a host issues a recursive
//! lookup for a CDN-accelerated name (the paper used the Yahoo image
//! server and `www.foxnews.com`) and records which replica-server
//! addresses come back. This crate models exactly that interface —
//! domain names, resource records with TTLs, a TTL-respecting cache, and
//! a recursive resolver that consults an authoritative server — without
//! wire-format packets (the paper's measurement client used `dig`; it
//! never parsed raw DNS either).
//!
//! The essential Akamai behavior is captured by the
//! [`resolver::AuthoritativeServer`] trait: answers may depend on *which
//! resolver is asking* (LDNS-based redirection) and on *when* (mapping
//! updates, low TTLs).
//!
//! # Example
//!
//! ```
//! use crp_dns::{DomainName, RecordData, ResourceRecord, SimIp};
//! use crp_netsim::SimDuration;
//!
//! let name: DomainName = "us.i1.yimg.com".parse()?;
//! let rr = ResourceRecord::new(name, SimDuration::from_secs(20), RecordData::A(SimIp::from_index(7)));
//! assert_eq!(rr.ttl(), SimDuration::from_secs(20));
//! # Ok::<(), crp_dns::ParseNameError>(())
//! ```

pub mod cache;
pub mod king;
pub mod name;
pub mod record;
pub mod resolver;
pub mod zones;

pub use cache::TtlCache;
pub use king::DnsKing;
pub use name::{DomainName, ParseNameError};
pub use record::{DnsResponse, RecordData, ResourceRecord, SimIp};
pub use resolver::{AuthoritativeServer, RecursiveResolver, ResolveError};
pub use zones::{IterativeOutcome, ZoneRegistry};
