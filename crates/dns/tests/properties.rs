//! Property-based tests for the DNS substrate.

use crp_dns::{DnsResponse, DomainName, RecordData, ResourceRecord, SimIp, TtlCache};
use crp_netsim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Strategy for syntactically valid domain-name labels.
fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}(-[a-z0-9]{1,6})?"
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("labels are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_display_round_trips(name in arb_name()) {
        let text = name.to_string();
        let back: DomainName = text.parse().expect("display form re-parses");
        prop_assert_eq!(name, back);
    }

    #[test]
    fn parsing_is_case_insensitive(name in arb_name()) {
        let upper = name.to_string().to_ascii_uppercase();
        let back: DomainName = upper.parse().expect("uppercase form parses");
        prop_assert_eq!(name, back);
    }

    #[test]
    fn subdomain_relation_is_reflexive_and_antisymmetric(
        a in arb_name(),
        suffix_labels in prop::collection::vec(arb_label(), 1..3),
    ) {
        prop_assert!(a.is_subdomain_of(&a));
        let extended: DomainName = format!("{}.{}", suffix_labels.join("."), a)
            .parse()
            .expect("prepending labels is valid");
        prop_assert!(extended.is_subdomain_of(&a));
        // A strictly longer name is never a suffix of a shorter one.
        prop_assert!(!a.is_subdomain_of(&extended));
    }

    #[test]
    fn cache_never_serves_expired_records(
        name in arb_name(),
        ttl_secs in 1u64..600,
        insert_mins in 0u64..100,
        probe_offset_secs in 0u64..1_200,
    ) {
        let mut cache = TtlCache::new();
        let inserted_at = SimTime::from_mins(insert_mins);
        let resp = DnsResponse::new(
            name.clone(),
            vec![ResourceRecord::new(
                name.clone(),
                SimDuration::from_secs(ttl_secs),
                RecordData::A(SimIp::from_index(1)),
            )],
        );
        cache.insert(resp, inserted_at);
        let probe = SimTime::from_millis(inserted_at.as_millis() + probe_offset_secs * 1_000);
        let hit = cache.get(&name, probe).is_some();
        let fresh = probe_offset_secs < ttl_secs;
        prop_assert_eq!(hit, fresh, "ttl {}s offset {}s", ttl_secs, probe_offset_secs);
    }

    #[test]
    fn min_ttl_is_the_minimum(ttls in prop::collection::vec(1u64..10_000, 1..6)) {
        let name: DomainName = "x.example".parse().expect("valid");
        let records: Vec<ResourceRecord> = ttls
            .iter()
            .map(|t| {
                ResourceRecord::new(
                    name.clone(),
                    SimDuration::from_secs(*t),
                    RecordData::A(SimIp::from_index(0)),
                )
            })
            .collect();
        let resp = DnsResponse::new(name, records);
        prop_assert_eq!(
            resp.min_ttl(),
            SimDuration::from_secs(*ttls.iter().min().expect("non-empty"))
        );
    }

    #[test]
    fn a_addresses_preserve_count_and_order(indices in prop::collection::vec(0u32..1_000, 1..8)) {
        let name: DomainName = "cdn.example".parse().expect("valid");
        let records: Vec<ResourceRecord> = indices
            .iter()
            .map(|i| {
                ResourceRecord::new(
                    name.clone(),
                    SimDuration::from_secs(20),
                    RecordData::A(SimIp::from_index(*i)),
                )
            })
            .collect();
        let resp = DnsResponse::new(name, records);
        let ips = resp.a_addresses();
        prop_assert_eq!(ips.len(), indices.len());
        for (ip, idx) in ips.iter().zip(&indices) {
            prop_assert_eq!(ip.index(), *idx);
        }
    }
}
