//! The lint rules and the file/workspace scanners.

use crate::scrub::scrub;
use std::fmt;
use std::path::{Path, PathBuf};

/// How a finding affects the lint exit status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Error,
    /// Reported but does not fail the run.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// What part of the workspace a rule applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Library sources only: `crates/*/src` and the root `src/`,
    /// excluding binaries, examples, benches, integration tests, and
    /// `#[cfg(test)]` regions.
    Library,
    /// All of `crates/*/src` and the root `src/`, including test
    /// modules and binaries (rules about determinism apply to tests
    /// too).
    CrateSources,
    /// Library sources of the simulation crates (`crp-netsim`,
    /// `crp-cdn`, `crp-core`, `crp-telemetry`) plus their test modules —
    /// simulated time must never mix with wall-clock time, even in
    /// tests.
    SimCrates,
    /// Library and binary sources of every crate *except* the
    /// sanctioned wall-clock users: `crp-bench`, `crp-eval`, and the
    /// `telemetry::profile` module. Wall-clock reads anywhere else are
    /// a determinism leak waiting to happen.
    WallClock,
    /// Library and binary sources outside the sanctioned provenance
    /// call sites ([`PROVENANCE_FILES`]) and test regions. Every
    /// `explain::record_*` hook must sit behind an `explain::enabled()`
    /// gate in a reviewed location — scattering record calls through
    /// hot paths erodes the zero-cost-when-disabled contract.
    Provenance,
}

/// A static-analysis rule: an ID, the substring patterns that trigger
/// it, and where it applies.
pub struct Rule {
    /// Stable identifier, `CRP001`..`CRP008`.
    pub id: &'static str,
    /// Substring patterns (matched against scrubbed source).
    pub patterns: &'static [&'static str],
    /// Which files/regions the rule scans.
    pub scope: Scope,
    /// Default severity.
    pub severity: Severity,
    /// One-line explanation shown with each finding.
    pub message: &'static str,
}

/// The rule set, in ID order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "CRP001",
        patterns: &[".unwrap()", ".expect("],
        scope: Scope::Library,
        severity: Severity::Error,
        message: "panicking unwrap/expect in library code; return a Result \
                  or document the invariant with crp-lint: allow(CRP001)",
    },
    Rule {
        id: "CRP002",
        patterns: &["thread_rng", "from_entropy", "rand::random"],
        scope: Scope::CrateSources,
        severity: Severity::Error,
        message: "nondeterministic RNG source; all randomness must flow from \
                  an explicit seed (StdRng::seed_from_u64 or noise::mix)",
    },
    Rule {
        id: "CRP003",
        patterns: &[".partial_cmp("],
        scope: Scope::Library,
        severity: Severity::Error,
        message: "NaN-unsafe float ordering; use f64::total_cmp for \
                  similarity scores and latencies",
    },
    Rule {
        id: "CRP004",
        patterns: &[
            "std::time::Instant",
            "std::time::SystemTime",
            "Instant::now",
            "SystemTime::now",
        ],
        scope: Scope::SimCrates,
        severity: Severity::Error,
        message: "wall-clock time in a simulation crate; simulated code must \
                  use crp_netsim::SimTime exclusively",
    },
    Rule {
        id: "CRP005",
        patterns: &["println!", "eprintln!"],
        scope: Scope::Library,
        severity: Severity::Warning,
        message: "stdout/stderr printing from a library crate; output is \
                  reserved for crp-eval binaries and examples",
    },
    Rule {
        id: "CRP006",
        patterns: &["File::create(", "OpenOptions::new(", "fs::write("],
        scope: Scope::Library,
        severity: Severity::Error,
        message: "direct file I/O from library code; telemetry flows through \
                  crp-telemetry sinks, experiment output through crp-eval",
    },
    Rule {
        id: "CRP007",
        patterns: &[
            "std::time::Instant",
            "std::time::SystemTime",
            "Instant::now",
            "SystemTime::now",
        ],
        scope: Scope::WallClock,
        severity: Severity::Error,
        message: "wall-clock time outside the sanctioned perf layer; only \
                  crp-bench, crp-eval, and telemetry::profile may read \
                  Instant/SystemTime",
    },
    Rule {
        id: "CRP008",
        patterns: &["explain::record_"],
        scope: Scope::Provenance,
        severity: Severity::Error,
        message: "provenance record call outside the sanctioned sites; \
                  explain hooks live only in the reviewed core decision \
                  points and the crp-eval audit layer, each behind an \
                  explain::enabled() gate",
    },
];

/// Crates whose library code is a simulation path (CRP004). The
/// telemetry crate is included because its records are keyed on
/// simulated time — mixing in the wall clock would break determinism —
/// and the audit crate because its drift scans re-interpret SimTime
/// history and must stay on simulated time exclusively.
const SIM_CRATES: &[&str] = &["netsim", "cdn", "core", "telemetry", "audit"];

/// Crates allowed to print from library code (CRP005 exemption).
const OUTPUT_CRATES: &[&str] = &["eval"];

/// Crates whose purpose *is* file I/O (CRP006 exemption): the telemetry
/// sink layer, the experiment-output helpers, and the dev tooling.
const FILE_IO_CRATES: &[&str] = &["telemetry", "eval", "xtask"];

/// Crates sanctioned to read the wall clock (CRP007 exemption): the
/// benchmark harness and the experiment runner.
const WALL_CLOCK_CRATES: &[&str] = &["bench", "eval"];

/// Individual files sanctioned to read the wall clock even though their
/// crate is not: the profiler is wall-clock by definition, and lives in
/// the telemetry crate only to share the atomic-gate pattern. Exempt
/// from both CRP004 and CRP007.
const WALL_CLOCK_FILES: &[&str] = &["crates/telemetry/src/profile.rs"];

/// The sanctioned provenance call sites (CRP008 exemption): the core
/// decision points whose hooks were reviewed to sit behind the
/// `explain::enabled()` gate, the explain module itself, and the
/// crp-eval audit layer that records ground-truth inversions.
const PROVENANCE_FILES: &[&str] = &[
    "crates/core/src/explain.rs",
    "crates/core/src/similarity.rs",
    "crates/core/src/select.rs",
    "crates/core/src/cluster.rs",
    "crates/eval/src/audit.rs",
    "crates/eval/src/telemetry.rs",
];

/// A single lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as reported (relative to the linted root).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule ID (`CRP001`..).
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// The matched pattern.
    pub pattern: &'static str,
    /// Rule explanation.
    pub message: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: `{}` — {}",
            self.file.display(),
            self.line,
            self.severity,
            self.rule,
            self.pattern,
            self.message
        )
    }
}

/// How a file is classified for rule scoping.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum FileKind {
    /// `crates/<name>/src` or root `src/` non-binary code.
    Library,
    /// `src/bin/**` under a crate — an executable entry point.
    Binary,
    /// Integration tests, benches, examples, build scripts.
    Harness,
}

struct FileClass {
    kind: FileKind,
    /// Short crate name (`core`, `cdn`, ... or `crp` for the root).
    crate_name: String,
    /// Whether the file is on the [`WALL_CLOCK_FILES`] exemption list.
    wall_clock_exempt: bool,
    /// Whether the file is on the [`PROVENANCE_FILES`] exemption list.
    provenance_exempt: bool,
}

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    let joined = parts.join("/");
    let wall_clock_exempt = WALL_CLOCK_FILES.contains(&joined.as_str());
    let provenance_exempt = PROVENANCE_FILES.contains(&joined.as_str());
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        || parts.last().is_some_and(|f| *f == "build.rs")
    {
        let crate_name = if parts.first() == Some(&"crates") {
            parts.get(1).unwrap_or(&"crp").to_string()
        } else {
            "crp".to_string()
        };
        return Some(FileClass {
            kind: FileKind::Harness,
            crate_name,
            wall_clock_exempt,
            provenance_exempt,
        });
    }
    if parts.first() == Some(&"crates") {
        let crate_name = (*parts.get(1)?).to_string();
        if parts.get(2) != Some(&"src") {
            return None;
        }
        let kind = if parts.get(3) == Some(&"bin") || parts.get(3) == Some(&"main.rs") {
            FileKind::Binary
        } else {
            FileKind::Library
        };
        return Some(FileClass {
            kind,
            crate_name,
            wall_clock_exempt,
            provenance_exempt,
        });
    }
    if parts.first() == Some(&"src") {
        return Some(FileClass {
            kind: FileKind::Library,
            crate_name: "crp".to_string(),
            wall_clock_exempt,
            provenance_exempt,
        });
    }
    None
}

fn rule_applies(rule: &Rule, class: &FileClass, in_test_region: bool) -> bool {
    match rule.scope {
        Scope::Library => {
            if class.kind != FileKind::Library || in_test_region {
                return false;
            }
            // crp-eval's library exists to produce experiment output.
            if rule.id == "CRP005" && OUTPUT_CRATES.contains(&class.crate_name.as_str()) {
                return false;
            }
            // Sink/output/tooling crates are the sanctioned I/O paths.
            !(rule.id == "CRP006" && FILE_IO_CRATES.contains(&class.crate_name.as_str()))
        }
        Scope::CrateSources => class.kind != FileKind::Harness,
        Scope::SimCrates => {
            class.kind == FileKind::Library
                && SIM_CRATES.contains(&class.crate_name.as_str())
                && !class.wall_clock_exempt
        }
        Scope::WallClock => {
            class.kind != FileKind::Harness
                && !WALL_CLOCK_CRATES.contains(&class.crate_name.as_str())
                && !class.wall_clock_exempt
        }
        Scope::Provenance => {
            class.kind != FileKind::Harness && !in_test_region && !class.provenance_exempt
        }
    }
}

/// Byte ranges covered by `#[cfg(test)]` items, found by brace matching
/// on scrubbed source.
fn test_regions(scrubbed: &str) -> Vec<(usize, usize)> {
    let bytes = scrubbed.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(found) = scrubbed[search..].find("#[cfg(test)]") {
        let attr_start = search + found;
        let mut i = attr_start + "#[cfg(test)]".len();
        // Find the item's opening brace; stop at `;` (e.g. `mod tests;`
        // — the out-of-line file is classified separately).
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(open) = open else {
            search = i.max(attr_start + 1);
            continue;
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((attr_start, j));
        search = j.max(attr_start + 1);
    }
    regions
}

/// Lints one file's source text. `rel` is the path used in diagnostics
/// and for scope classification; `demoted` lists rule IDs reduced to
/// warnings.
pub fn lint_source(rel: &Path, source: &str, demoted: &[String]) -> Vec<Diagnostic> {
    let Some(class) = classify(rel) else {
        return Vec::new();
    };
    let scrubbed = scrub(source);
    let regions = test_regions(&scrubbed);
    let mut diagnostics = Vec::new();

    let mut offset = 0usize;
    let original_lines: Vec<&str> = source.lines().collect();
    for (line_idx, line) in scrubbed.lines().enumerate() {
        let line_start = offset;
        offset += line.len() + 1;
        let in_test = regions
            .iter()
            .any(|&(start, end)| line_start >= start && line_start <= end);
        for rule in RULES {
            if !rule_applies(rule, &class, in_test) {
                continue;
            }
            for pattern in rule.patterns {
                if !line.contains(pattern) {
                    continue;
                }
                if allowed(&original_lines, line_idx, rule.id) {
                    continue;
                }
                let severity = if demoted.iter().any(|d| d == rule.id) {
                    Severity::Warning
                } else {
                    rule.severity
                };
                diagnostics.push(Diagnostic {
                    file: rel.to_path_buf(),
                    line: line_idx + 1,
                    rule: rule.id,
                    severity,
                    pattern,
                    message: rule.message,
                });
            }
        }
    }
    diagnostics
}

/// Whether line `line_idx` (0-based) carries or inherits a
/// `crp-lint: allow(<rule>)` comment: same line, or the directly
/// preceding line when that line is only a comment.
fn allowed(original_lines: &[&str], line_idx: usize, rule_id: &str) -> bool {
    let marker_here = original_lines
        .get(line_idx)
        .is_some_and(|l| has_allow(l, rule_id));
    if marker_here {
        return true;
    }
    line_idx > 0
        && original_lines
            .get(line_idx - 1)
            .is_some_and(|l| l.trim_start().starts_with("//") && has_allow(l, rule_id))
}

fn has_allow(line: &str, rule_id: &str) -> bool {
    let Some(pos) = line.find("crp-lint:") else {
        return false;
    };
    let rest = &line[pos + "crp-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return false;
    };
    let Some(close) = rest[open..].find(')') else {
        return false;
    };
    rest[open + "allow(".len()..open + close]
        .split(',')
        .any(|r| r.trim() == rule_id)
}

/// Recursively lints every `.rs` file under `root`, skipping
/// `target/`, `vendor/`, `.git/`, and `fixtures/` directories.
/// Diagnostics are sorted by path, then line.
///
/// # Errors
///
/// Returns an error when a directory or file cannot be read.
pub fn lint_root(root: &Path, demoted: &[String]) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        diagnostics.extend(lint_source(&rel, &source, demoted));
    }
    Ok(diagnostics)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_path() -> PathBuf {
        PathBuf::from("crates/core/src/demo.rs")
    }

    #[test]
    fn unwrap_in_library_is_flagged() {
        let diags = lint_source(&lib_path(), "fn f() { x.unwrap(); }\n", &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "CRP001");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn unwrap_after_test_region_is_flagged() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn allow_comment_suppresses() {
        let same = "fn f() { x.unwrap(); } // crp-lint: allow(CRP001)\n";
        assert!(lint_source(&lib_path(), same, &[]).is_empty());
        let above = "// safe: crp-lint: allow(CRP001)\nfn f() { x.unwrap(); }\n";
        assert!(lint_source(&lib_path(), above, &[]).is_empty());
        let wrong_rule = "fn f() { x.unwrap(); } // crp-lint: allow(CRP002)\n";
        assert_eq!(lint_source(&lib_path(), wrong_rule, &[]).len(), 1);
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "// mentions .unwrap()\nlet s = \".unwrap()\";\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn rng_rule_applies_even_in_tests_and_bins() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let r = thread_rng(); }\n}\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "CRP002");
        let bin = PathBuf::from("crates/eval/src/bin/tool.rs");
        let diags = lint_source(&bin, "fn main() { rand::random::<u8>(); }\n", &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "CRP002");
    }

    #[test]
    fn wall_clock_only_flagged_in_sim_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let sim = lint_source(&PathBuf::from("crates/netsim/src/clock.rs"), src, &[]);
        assert!(sim.iter().any(|d| d.rule == "CRP004"));
        let nonsim = lint_source(&PathBuf::from("crates/eval/src/timing.rs"), src, &[]);
        assert!(nonsim.iter().all(|d| d.rule != "CRP004"));
    }

    #[test]
    fn wall_clock_flagged_everywhere_except_sanctioned_perf_layer() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        // A non-sim library crate: CRP007 fires (CRP004 does not).
        let meridian = lint_source(&PathBuf::from("crates/meridian/src/overlay.rs"), src, &[]);
        assert!(meridian.iter().any(|d| d.rule == "CRP007"));
        assert!(meridian.iter().all(|d| d.rule != "CRP004"));
        // Binaries of non-sanctioned crates are covered too.
        let bin = lint_source(&PathBuf::from("crates/core/src/bin/tool.rs"), src, &[]);
        assert!(bin.iter().any(|d| d.rule == "CRP007"));
        // The sanctioned wall-clock users are exempt.
        for sanctioned in [
            "crates/bench/src/harness.rs",
            "crates/eval/src/bin/run_all.rs",
            "crates/telemetry/src/profile.rs",
        ] {
            let diags = lint_source(&PathBuf::from(sanctioned), src, &[]);
            assert!(
                diags
                    .iter()
                    .all(|d| d.rule != "CRP007" && d.rule != "CRP004"),
                "{sanctioned} should be wall-clock-sanctioned, got {diags:?}"
            );
        }
        // Harness code (tests/benches/examples) stays exempt.
        let harness = lint_source(&PathBuf::from("crates/core/tests/perf.rs"), src, &[]);
        assert!(harness.is_empty());
    }

    #[test]
    fn profile_module_is_the_only_sim_crate_wall_clock_exception() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        // Elsewhere in the telemetry crate both rules still fire.
        let lib = lint_source(&PathBuf::from("crates/telemetry/src/lib.rs"), src, &[]);
        assert!(lib.iter().any(|d| d.rule == "CRP004"));
        assert!(lib.iter().any(|d| d.rule == "CRP007"));
    }

    #[test]
    fn println_warned_in_libraries_but_not_eval_or_bins() {
        let src = "fn f() { println!(\"x\"); }\n";
        let lib = lint_source(&lib_path(), src, &[]);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, "CRP005");
        assert_eq!(lib[0].severity, Severity::Warning);
        assert!(lint_source(&PathBuf::from("crates/eval/src/output.rs"), src, &[]).is_empty());
        assert!(lint_source(&PathBuf::from("crates/eval/src/bin/fig4.rs"), src, &[]).is_empty());
    }

    #[test]
    fn harness_code_is_exempt_from_library_rules() {
        let src = "fn f() { x.unwrap(); a.partial_cmp(&b); }\n";
        for p in [
            "crates/core/tests/properties.rs",
            "crates/bench/benches/similarity.rs",
            "examples/quickstart.rs",
            "tests/extensions.rs",
        ] {
            assert!(
                lint_source(&PathBuf::from(p), src, &[]).is_empty(),
                "{p} should be exempt"
            );
        }
    }

    #[test]
    fn demotion_turns_errors_into_warnings() {
        let diags = lint_source(
            &lib_path(),
            "fn f() { x.unwrap(); }\n",
            &["CRP001".to_string()],
        );
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn partial_cmp_is_flagged() {
        let diags = lint_source(
            &lib_path(),
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
            &[],
        );
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"CRP003"));
        assert!(rules.contains(&"CRP001"));
    }

    #[test]
    fn file_io_flagged_outside_sanctioned_crates() {
        let src = "fn f() { let _ = std::fs::File::create(\"x\"); }\n";
        let lib = lint_source(&lib_path(), src, &[]);
        assert!(lib.iter().any(|d| d.rule == "CRP006"));
        assert_eq!(lib[0].severity, Severity::Error);
        for sanctioned in [
            "crates/telemetry/src/sink.rs",
            "crates/eval/src/output.rs",
            "crates/xtask/src/lint.rs",
        ] {
            assert!(
                lint_source(&PathBuf::from(sanctioned), src, &[]).is_empty(),
                "{sanctioned} should be exempt from CRP006"
            );
        }
        let write = "fn f() { std::fs::write(\"x\", \"y\").ok(); }\n";
        assert!(lint_source(&lib_path(), write, &[])
            .iter()
            .any(|d| d.rule == "CRP006"));
    }

    #[test]
    fn wall_clock_flagged_in_telemetry_crate() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let diags = lint_source(&PathBuf::from("crates/telemetry/src/lib.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP004"));
    }

    #[test]
    fn non_workspace_paths_are_ignored() {
        assert!(lint_source(&PathBuf::from("README.rs"), "x.unwrap();", &[]).is_empty());
    }

    #[test]
    fn provenance_calls_flagged_outside_sanctioned_sites() {
        let src = "fn f() { crate::explain::record_ranking(&entries); }\n";
        // An unsanctioned core module: CRP008 fires.
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP008"), "{diags:?}");
        // Binaries are covered too — recording belongs in the audit layer.
        let bin = lint_source(&PathBuf::from("crates/eval/src/bin/fig4.rs"), src, &[]);
        assert!(bin.iter().any(|d| d.rule == "CRP008"));
        // The reviewed call sites are exempt.
        for sanctioned in [
            "crates/core/src/similarity.rs",
            "crates/core/src/select.rs",
            "crates/core/src/cluster.rs",
            "crates/core/src/explain.rs",
            "crates/eval/src/audit.rs",
            "crates/eval/src/telemetry.rs",
        ] {
            let diags = lint_source(&PathBuf::from(sanctioned), src, &[]);
            assert!(
                diags.iter().all(|d| d.rule != "CRP008"),
                "{sanctioned} should be provenance-sanctioned, got {diags:?}"
            );
        }
        // Test regions and harness code stay exempt.
        let test_region = "#[cfg(test)]\nmod tests {\n    fn t() { \
                           crate::explain::record_inversion(r); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), test_region, &[]);
        assert!(diags.iter().all(|d| d.rule != "CRP008"), "{diags:?}");
        assert!(lint_source(&PathBuf::from("tests/determinism.rs"), src, &[]).is_empty());
    }

    #[test]
    fn audit_crate_is_a_sim_crate_for_wall_clock_purposes() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let diags = lint_source(&PathBuf::from("crates/audit/src/drift.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP004"), "{diags:?}");
    }
}
