//! The lint rules and the file/workspace scanners, built on the
//! token-level engine in [`crate::engine`].
//!
//! Rules no longer match substrings against scrubbed lines: each file
//! is lexed once, annotated with scope context (enclosing `fn` items,
//! `#[cfg(test)]` regions), and the rules run over that token stream.
//! Comments and string literals therefore can never false-positive,
//! and rules can be scope-aware — "no allocation inside *this*
//! function" (CRP009) or "this `HashMap` is iterated without sorting"
//! (CRP011) are token/scope questions, not line questions.

use crate::callgraph::CallGraph;
use crate::engine::{self, ScopedFile};
use crate::lexer::{self, TokenKind};
use crate::symbols::{SourceFile, SymbolTable};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// How a finding affects the lint exit status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run.
    Error,
    /// Reported but does not fail the run.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// What part of the workspace a rule applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Library sources only: `crates/*/src` and the root `src/`,
    /// excluding binaries, examples, benches, integration tests, and
    /// `#[cfg(test)]` regions.
    Library,
    /// All of `crates/*/src` and the root `src/`, including test
    /// modules and binaries (rules about determinism apply to tests
    /// too).
    CrateSources,
    /// Library sources of the simulation crates (`crp-netsim`,
    /// `crp-cdn`, `crp-core`, `crp-telemetry`, `crp-audit`) plus their
    /// test modules — simulated time must never mix with wall-clock
    /// time, even in tests.
    SimCrates,
    /// Library and binary sources of every crate *except* the
    /// sanctioned wall-clock users: `crp-bench`, `crp-eval`, and the
    /// `telemetry::profile` module. Wall-clock reads anywhere else are
    /// a determinism leak waiting to happen.
    WallClock,
    /// Library and binary sources outside the sanctioned provenance
    /// call sites ([`PROVENANCE_FILES`]) and test regions. Every
    /// `explain::record_*` hook must sit behind an `explain::enabled()`
    /// gate in a reviewed location — scattering record calls through
    /// hot paths erodes the zero-cost-when-disabled contract.
    Provenance,
    /// The declared hot-path functions ([`HOT_PATHS`]): the crp-core
    /// ratio/similarity/select kernels and the tracker ingest path,
    /// where per-call allocation is a scaling bug (ROADMAP item 1).
    HotPath,
    /// Library sources of the crates destined for the serving path
    /// ([`SERVING_CRATES`]), where a panic is an outage, excluding test
    /// regions.
    Serving,
    /// Every classified non-harness file outside test regions —
    /// `crp-lint: allow` markers are audited wherever they appear.
    AllowMarkers,
    /// Library and binary sources outside the sanctioned memory-domain
    /// call sites ([`MEM_DOMAIN_FILES`]) and test regions. Allocation
    /// attribution boundaries (`mem_domain!`) are reviewed subsystem
    /// borders, not ad-hoc annotations.
    MemDomain,
}

/// How a rule finds its violations.
pub enum Check {
    /// Token-sequence patterns (lexed with the same lexer as the
    /// source; a trailing `_` makes the final token a prefix match).
    Patterns(&'static [&'static str]),
    /// Token-sequence patterns plus the bracket-indexing detector —
    /// `m[k]` panics where `m.get(k)` would not.
    PanicFree(&'static [&'static str]),
    /// The `HashMap`/`HashSet` iteration-order heuristic.
    UnorderedIteration,
    /// `crp-lint: allow` markers that no longer suppress anything.
    StaleAllow,
    /// Transitive reachability over the workspace call graph: the rule
    /// fires when a root function *reaches* a sink through one or more
    /// call edges, with the offending chain printed. Body-local sinks
    /// in the roots themselves stay the business of the corresponding
    /// body-local rule (CRP009/CRP010/CRP007).
    Reachability(Reach),
}

/// What a reachability rule taints on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Reach {
    /// Allocation sinks reached from the declared hot paths (CRP014).
    Alloc,
    /// Panic-capable sinks reached from serving entry points (CRP015).
    Panic,
    /// Wall-clock reads reached from outside the sanctioned perf layer
    /// (CRP016).
    Clock,
}

/// A static-analysis rule: an ID, how it detects violations, and where
/// it applies.
pub struct Rule {
    /// Stable identifier, `CRP001`..`CRP012`.
    pub id: &'static str,
    /// The detection strategy.
    pub check: Check,
    /// Which files/regions the rule scans.
    pub scope: Scope,
    /// Default severity.
    pub severity: Severity,
    /// One-line explanation shown with each finding.
    pub message: &'static str,
}

/// Pattern label used for bracket-indexing findings (CRP010).
const INDEXING_PATTERN: &str = "[...]";

/// Pattern label used for hash-iteration findings (CRP011).
const HASH_ITER_PATTERN: &str = "HashMap/HashSet iteration";

/// Pattern label used for stale-marker findings (CRP012).
const STALE_ALLOW_PATTERN: &str = "crp-lint: allow";

/// The rule set, in ID order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "CRP001",
        check: Check::Patterns(&[".unwrap()", ".expect("]),
        scope: Scope::Library,
        severity: Severity::Error,
        message: "panicking unwrap/expect in library code; return a Result \
                  or document the invariant with crp-lint: allow(CRP001)",
    },
    Rule {
        id: "CRP002",
        check: Check::Patterns(&["thread_rng", "from_entropy", "rand::random"]),
        scope: Scope::CrateSources,
        severity: Severity::Error,
        message: "nondeterministic RNG source; all randomness must flow from \
                  an explicit seed (StdRng::seed_from_u64 or noise::mix)",
    },
    Rule {
        id: "CRP003",
        check: Check::Patterns(&[".partial_cmp("]),
        scope: Scope::Library,
        severity: Severity::Error,
        message: "NaN-unsafe float ordering; use f64::total_cmp for \
                  similarity scores and latencies",
    },
    Rule {
        id: "CRP004",
        check: Check::Patterns(&[
            "std::time::Instant",
            "std::time::SystemTime",
            "Instant::now",
            "SystemTime::now",
        ]),
        scope: Scope::SimCrates,
        severity: Severity::Error,
        message: "wall-clock time in a simulation crate; simulated code must \
                  use crp_netsim::SimTime exclusively",
    },
    Rule {
        id: "CRP005",
        check: Check::Patterns(&["println!", "eprintln!"]),
        scope: Scope::Library,
        severity: Severity::Warning,
        message: "stdout/stderr printing from a library crate; output is \
                  reserved for crp-eval binaries and examples",
    },
    Rule {
        id: "CRP006",
        check: Check::Patterns(&["File::create(", "OpenOptions::new(", "fs::write("]),
        scope: Scope::Library,
        severity: Severity::Error,
        message: "direct file I/O from library code; telemetry flows through \
                  crp-telemetry sinks, experiment output through crp-eval",
    },
    Rule {
        id: "CRP007",
        check: Check::Patterns(&[
            "std::time::Instant",
            "std::time::SystemTime",
            "Instant::now",
            "SystemTime::now",
        ]),
        scope: Scope::WallClock,
        severity: Severity::Error,
        message: "wall-clock time outside the sanctioned perf layer; only \
                  crp-bench, crp-eval, and telemetry::profile may read \
                  Instant/SystemTime",
    },
    Rule {
        id: "CRP008",
        check: Check::Patterns(&[
            "explain::record_",
            "trace::mint",
            "trace::begin",
            "trace::begin_",
            "trace::stage_",
            "trace::resume",
            "trace::query_stage",
            "trace::current_raw",
        ]),
        scope: Scope::Provenance,
        severity: Severity::Error,
        message: "provenance or trace hook outside the sanctioned sites; \
                  explain hooks and causal-trace spans live only in the \
                  reviewed decision points (core kernels, the CDN mint \
                  site, the crp-eval audit layer), each behind an \
                  enabled() gate",
    },
    Rule {
        id: "CRP009",
        check: Check::Patterns(&[
            ".clone()",
            ".cloned()",
            ".to_vec()",
            ".to_owned()",
            ".to_string()",
            ".collect(",
            "format!",
            "vec!",
            "String::from",
            "String::new",
            "Box::new",
            "Vec::new",
            "VecDeque::new",
            "HashMap::new",
            "HashSet::new",
            "BTreeMap::new",
            "BTreeSet::new",
        ]),
        scope: Scope::HotPath,
        severity: Severity::Error,
        message: "allocation in a declared hot-path function; hoist it out, \
                  reuse a scratch buffer, or justify with \
                  crp-lint: allow(CRP009)",
    },
    Rule {
        id: "CRP010",
        check: Check::PanicFree(&[".unwrap()", ".expect(", "panic!"]),
        scope: Scope::Serving,
        severity: Severity::Error,
        message: "panic-capable construct in a serving-path crate; use \
                  get()/checked APIs and propagate errors, or justify with \
                  crp-lint: allow(CRP010)",
    },
    Rule {
        id: "CRP011",
        check: Check::UnorderedIteration,
        scope: Scope::SimCrates,
        severity: Severity::Error,
        message: "HashMap/HashSet iteration without an ordering step in a \
                  sim crate; sort the stream or collect into a BTree \
                  container before anything depends on its order",
    },
    Rule {
        id: "CRP012",
        check: Check::StaleAllow,
        scope: Scope::AllowMarkers,
        severity: Severity::Error,
        message: "stale crp-lint allow marker: it suppresses no finding on \
                  the lines it covers; delete it or correct its rule list",
    },
    Rule {
        id: "CRP013",
        check: Check::Patterns(&["mem_domain!"]),
        scope: Scope::MemDomain,
        severity: Severity::Error,
        message: "memory-attribution domain opened outside the sanctioned \
                  sites; mem_domain! boundaries are reviewed subsystem \
                  borders (core kernels, the CDN answer path, the eval \
                  experiment drivers) — add the file to MEM_DOMAIN_FILES \
                  after review instead of scattering domains",
    },
    Rule {
        id: "CRP014",
        check: Check::Reachability(Reach::Alloc),
        scope: Scope::HotPath,
        severity: Severity::Error,
        message: "declared hot-path function reaches an allocating helper \
                  through the call graph; hoist the allocation, pass a \
                  scratch buffer down the chain, or justify with \
                  crp-lint: allow(CRP014)",
    },
    Rule {
        id: "CRP015",
        check: Check::Reachability(Reach::Panic),
        scope: Scope::Serving,
        severity: Severity::Error,
        message: "serving entry point reaches a panic-capable construct \
                  through the call graph; convert the chain to Result/get \
                  variants or justify with crp-lint: allow(CRP015)",
    },
    Rule {
        id: "CRP016",
        check: Check::Reachability(Reach::Clock),
        scope: Scope::WallClock,
        severity: Severity::Error,
        message: "function outside the sanctioned wall-clock set reaches \
                  Instant::now/SystemTime::now through the call graph; keep \
                  timing inside crp-bench/crp-eval/telemetry::profile or \
                  justify with crp-lint: allow(CRP016)",
    },
];

/// Pattern labels for the reachability findings; the concrete chain is
/// carried in [`Diagnostic::chain`].
const ALLOC_REACH_PATTERN: &str = "alloc-reachable";
const PANIC_REACH_PATTERN: &str = "panic-reachable";
const CLOCK_REACH_PATTERN: &str = "clock-reachable";

/// Allocation sinks for CRP014: the CRP009 pattern list plus the
/// growth calls a body-local rule cannot see behind (`push`, `extend`,
/// `resize`, ...). Like CRP009, turbofish spellings
/// (`collect::<Vec<_>>()`) are not matched — a documented miss.
const ALLOC_SINK_PATTERNS: &[&str] = &[
    ".clone()",
    ".cloned()",
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    ".collect(",
    "format!",
    "vec!",
    "String::from",
    "String::new",
    "String::with_capacity",
    "Box::new",
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "BTreeSet::new",
    ".push(",
    ".push_back(",
    ".extend(",
    ".extend_from_slice(",
    ".resize(",
    ".reserve(",
    ".to_path_buf(",
];

/// Panic-capable sinks for CRP015 (bracket-indexing is detected
/// separately, exactly as in CRP010).
const PANIC_SINK_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// Wall-clock sinks for CRP016.
const CLOCK_SINK_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now"];

/// The public serving entry points (CRP015 roots): the `CrpService`
/// surface and the ranking/select API it delegates to. Everything a
/// future `crp-serve` frontend would call lands here first.
const SERVING_ENTRIES: &[(&str, &[&str])] = &[
    (
        "crates/core/src/service.rs",
        &[
            "record",
            "ratio_map",
            "similarity",
            "closest",
            "relative",
            "cluster",
            "prune_stale",
            "remove_node",
        ],
    ),
    (
        "crates/core/src/select.rs",
        &["rank", "top", "top_k", "score_of"],
    ),
];

/// Crates whose library code is a simulation path (CRP004, CRP011). The
/// telemetry crate is included because its records are keyed on
/// simulated time — mixing in the wall clock would break determinism —
/// and the audit crate because its drift scans re-interpret SimTime
/// history and must stay on simulated time exclusively.
const SIM_CRATES: &[&str] = &["netsim", "cdn", "core", "telemetry", "audit"];

/// Crates destined for the serving path (CRP010): the positioning core,
/// the CDN model it serves from, and the DNS front end.
const SERVING_CRATES: &[&str] = &["core", "cdn", "dns"];

/// Crates allowed to print from library code (CRP005 exemption).
const OUTPUT_CRATES: &[&str] = &["eval"];

/// Crates whose purpose *is* file I/O (CRP006 exemption): the telemetry
/// sink layer, the experiment-output helpers, and the dev tooling.
const FILE_IO_CRATES: &[&str] = &["telemetry", "eval", "xtask"];

/// Crates sanctioned to read the wall clock (CRP007 exemption): the
/// benchmark harness and the experiment runner.
const WALL_CLOCK_CRATES: &[&str] = &["bench", "eval"];

/// Individual files sanctioned to read the wall clock even though their
/// crate is not: the profiler is wall-clock by definition, and lives in
/// the telemetry crate only to share the atomic-gate pattern. Exempt
/// from both CRP004 and CRP007.
const WALL_CLOCK_FILES: &[&str] = &["crates/telemetry/src/profile.rs"];

/// The sanctioned provenance and trace-hook call sites (CRP008
/// exemption): the core decision points whose hooks were reviewed to
/// sit behind the `explain::enabled()` / `trace::enabled()` gates, the
/// explain module itself, the crp-eval audit layer that records
/// ground-truth inversions, the CDN redirection event where traces are
/// minted, and the observation/tracker ingest path that propagates
/// them.
const PROVENANCE_FILES: &[&str] = &[
    "crates/core/src/explain.rs",
    "crates/core/src/similarity.rs",
    "crates/core/src/select.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/observation.rs",
    "crates/core/src/tracker.rs",
    "crates/core/src/service.rs",
    "crates/cdn/src/cdn.rs",
    // Scripted infrastructure events mint one causal trace per applied
    // event (behind trace::enabled()), so detection-latency evaluation
    // can tie a DetectedChange back to the event that caused it.
    "crates/cdn/src/events.rs",
    "crates/telemetry/src/timeseries.rs",
    "crates/eval/src/audit.rs",
    "crates/eval/src/telemetry.rs",
    // The bench harness drives the trace hooks on purpose: the traced
    // ingest row measures exactly the cost CRP008 exists to contain.
    "crates/bench/src/bin/bench_all.rs",
];

/// The sanctioned memory-attribution call sites (CRP013 exemption): the
/// reviewed subsystem borders where `mem_domain!` opens an allocation
/// domain — the core kernels and tracker ingest, the CDN answer path,
/// the experiment drivers that own the outermost domains, and the mem
/// module itself (macro definition and self-tests).
const MEM_DOMAIN_FILES: &[&str] = &[
    "crates/telemetry/src/mem.rs",
    // The change-detector scan is a subsystem border of its own: it
    // walks every recorded history, so its allocations are attributed
    // separately from the audit drift layer.
    "crates/audit/src/detect.rs",
    "crates/core/src/tracker.rs",
    "crates/core/src/select.rs",
    "crates/core/src/cluster.rs",
    "crates/cdn/src/cdn.rs",
    "crates/eval/src/closest.rs",
    "crates/eval/src/clusterexp.rs",
    "src/scenario.rs",
];

/// The declared hot-path set (CRP009): per file, the functions on the
/// per-query or per-observation path once the tracker scales to the
/// 100k–1M-host regime of ROADMAP item 1. Paths are workspace-relative
/// so the fixture tree (which mirrors the layout) exercises the same
/// configuration.
const HOT_PATHS: &[(&str, &[&str])] = &[
    (
        "crates/core/src/ratio.rs",
        &[
            "from_counts",
            "from_weights",
            "get",
            "dot",
            "cosine_similarity",
            "l1_distance",
            "overlaps",
            "strongest",
            "l2_norm",
        ],
    ),
    (
        "crates/core/src/similarity.rs",
        &["compare", "jaccard", "weighted_overlap"],
    ),
    (
        "crates/core/src/select.rs",
        &["rank", "top", "top_k", "score_of"],
    ),
    (
        "crates/core/src/tracker.rs",
        &["record", "record_slice", "ratio_map", "prune_before"],
    ),
    (
        "crates/cdn/src/cdn.rs",
        &[
            "authoritative_answer",
            "shortlist_into",
            "weighted_pick_into",
        ],
    ),
];

/// The hot-path function list for a workspace-relative path, if any.
fn hot_fns(joined: &str) -> Option<&'static [&'static str]> {
    HOT_PATHS
        .iter()
        .find(|(path, _)| *path == joined)
        .map(|(_, fns)| *fns)
}

/// A single lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as reported (relative to the linted root).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule ID (`CRP001`..).
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// The matched pattern (or a fixed label for the scope checks).
    pub pattern: &'static str,
    /// Rule explanation.
    pub message: &'static str,
    /// For reachability findings (CRP014–016): the offending call
    /// chain, rendered `root (file:line) -> hop (file:line) -> `sink`
    /// (file:line)`. Empty for body-local findings.
    pub chain: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: `{}` — {}",
            self.file.display(),
            self.line,
            self.severity,
            self.rule,
            self.pattern,
            self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    call chain: {}", self.chain)?;
        }
        Ok(())
    }
}

/// How a file is classified for rule scoping.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum FileKind {
    /// `crates/<name>/src` or root `src/` non-binary code.
    Library,
    /// `src/bin/**` under a crate — an executable entry point.
    Binary,
    /// Integration tests, benches, examples, build scripts.
    Harness,
}

struct FileClass {
    kind: FileKind,
    /// Short crate name (`core`, `cdn`, ... or `crp` for the root).
    crate_name: String,
    /// The `/`-joined workspace-relative path, for file-keyed lists.
    joined: String,
    /// Whether the file is on the [`WALL_CLOCK_FILES`] exemption list.
    wall_clock_exempt: bool,
    /// Whether the file is on the [`PROVENANCE_FILES`] exemption list.
    provenance_exempt: bool,
    /// Whether the file is on the [`MEM_DOMAIN_FILES`] exemption list.
    mem_exempt: bool,
}

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    let joined = parts.join("/");
    let wall_clock_exempt = WALL_CLOCK_FILES.contains(&joined.as_str());
    let provenance_exempt = PROVENANCE_FILES.contains(&joined.as_str());
    let mem_exempt = MEM_DOMAIN_FILES.contains(&joined.as_str());
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        || parts.last().is_some_and(|f| *f == "build.rs")
    {
        let crate_name = if parts.first() == Some(&"crates") {
            parts.get(1).unwrap_or(&"crp").to_string()
        } else {
            "crp".to_string()
        };
        return Some(FileClass {
            kind: FileKind::Harness,
            crate_name,
            joined,
            wall_clock_exempt,
            provenance_exempt,
            mem_exempt,
        });
    }
    if parts.first() == Some(&"crates") {
        let crate_name = (*parts.get(1)?).to_string();
        if parts.get(2) != Some(&"src") {
            return None;
        }
        let kind = if parts.get(3) == Some(&"bin") || parts.get(3) == Some(&"main.rs") {
            FileKind::Binary
        } else {
            FileKind::Library
        };
        return Some(FileClass {
            kind,
            crate_name,
            joined,
            wall_clock_exempt,
            provenance_exempt,
            mem_exempt,
        });
    }
    if parts.first() == Some(&"src") {
        return Some(FileClass {
            kind: FileKind::Library,
            crate_name: "crp".to_string(),
            joined,
            wall_clock_exempt,
            provenance_exempt,
            mem_exempt,
        });
    }
    None
}

fn rule_applies(rule: &Rule, class: &FileClass, in_test_region: bool) -> bool {
    match rule.scope {
        Scope::Library => {
            if class.kind != FileKind::Library || in_test_region {
                return false;
            }
            // crp-eval's library exists to produce experiment output.
            if rule.id == "CRP005" && OUTPUT_CRATES.contains(&class.crate_name.as_str()) {
                return false;
            }
            // Sink/output/tooling crates are the sanctioned I/O paths.
            !(rule.id == "CRP006" && FILE_IO_CRATES.contains(&class.crate_name.as_str()))
        }
        Scope::CrateSources => class.kind != FileKind::Harness,
        Scope::SimCrates => {
            class.kind == FileKind::Library
                && SIM_CRATES.contains(&class.crate_name.as_str())
                && !class.wall_clock_exempt
        }
        Scope::WallClock => {
            class.kind != FileKind::Harness
                && !WALL_CLOCK_CRATES.contains(&class.crate_name.as_str())
                && !class.wall_clock_exempt
        }
        Scope::Provenance => {
            class.kind != FileKind::Harness && !in_test_region && !class.provenance_exempt
        }
        Scope::HotPath => {
            class.kind == FileKind::Library && !in_test_region && hot_fns(&class.joined).is_some()
        }
        Scope::Serving => {
            class.kind == FileKind::Library
                && !in_test_region
                && SERVING_CRATES.contains(&class.crate_name.as_str())
        }
        Scope::AllowMarkers => class.kind != FileKind::Harness && !in_test_region,
        Scope::MemDomain => class.kind != FileKind::Harness && !in_test_region && !class.mem_exempt,
    }
}

/// A parsed `crp-lint: allow(...)` marker.
struct Marker {
    /// 1-based line of the comment holding the marker.
    line: usize,
    /// 1-based line on which the comment ends (block comments span).
    end_line: usize,
    /// Whether the comment shares its line(s) with no code — such
    /// markers also cover the line directly below.
    comment_only: bool,
    /// Rule IDs listed inside `allow(...)`.
    rules: Vec<String>,
    /// Whether justification text follows the closing paren. Only
    /// justified markers suppress; the justification is the reviewed
    /// reason the violation is acceptable.
    justified: bool,
}

impl Marker {
    /// Whether the marker covers findings on 1-based line `line`.
    fn covers(&self, line: usize) -> bool {
        (line >= self.line && line <= self.end_line)
            || (self.comment_only && line == self.end_line + 1)
    }
}

/// Extracts allow markers from the comment tokens of `source`. Marker
/// text inside string literals is invisible here — only real comments
/// count, which also keeps this tool's own sources lintable.
fn parse_markers(source: &str) -> Vec<Marker> {
    let tokens = lexer::lex(source);
    let mut markers = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        // Doc comments describe the marker syntax, they don't use it —
        // `//! ... crp-lint: allow(CRP00x) ...` in module docs must
        // neither suppress nor count as stale.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| tok.text.starts_with(p))
        {
            continue;
        }
        let Some((rules, justified)) = parse_marker_text(tok.text) else {
            continue;
        };
        let line = tok.line as usize;
        let end_line = line + tok.text.matches('\n').count();
        let code_before = tokens[..i]
            .iter()
            .any(|t| t.kind != TokenKind::Comment && t.line as usize == line);
        let code_after = tokens[i + 1..]
            .iter()
            .take_while(|t| t.line as usize <= end_line)
            .any(|t| t.kind != TokenKind::Comment);
        markers.push(Marker {
            line,
            end_line,
            comment_only: !code_before && !code_after,
            rules,
            justified,
        });
    }
    markers
}

/// Whether `r` has the shape of a real rule ID (`CRP` + three
/// digits). Prose that merely talks about markers — `CRP00x`,
/// `<rules>` — must not parse as one.
fn is_rule_id(r: &str) -> bool {
    r.len() == 6 && r.starts_with("CRP") && r[3..].bytes().all(|b| b.is_ascii_digit())
}

/// Parses one comment's text for `crp-lint: allow(<rules>) <reason>`.
fn parse_marker_text(text: &str) -> Option<(Vec<String>, bool)> {
    let pos = text.find("crp-lint:")?;
    let rest = &text[pos + "crp-lint:".len()..];
    let open = rest.find("allow(")?;
    let inner = &rest[open + "allow(".len()..];
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() || !rules.iter().all(|r| is_rule_id(r)) {
        return None;
    }
    let tail = inner[close + 1..].trim().trim_end_matches("*/").trim();
    Some((rules, !tail.is_empty()))
}

/// Whether a justified marker covering `line` allows `rule_id`.
fn suppressed(markers: &[Marker], line: usize, rule_id: &str) -> bool {
    markers
        .iter()
        .any(|m| m.justified && m.covers(line) && m.rules.iter().any(|r| r == rule_id))
}

/// A finding before allow-marker suppression.
struct Candidate {
    line: usize,
    rule_idx: usize,
    pattern: &'static str,
}

/// One classified input file, lexed and scope-annotated once and shared
/// by the body-local rules and the interprocedural pass.
struct Unit<'a> {
    /// Index into the `inputs` slice — diagnostics report the original
    /// path exactly as given.
    input: usize,
    class: FileClass,
    scoped: ScopedFile<'a>,
    markers: Vec<Marker>,
}

/// A reachability finding before assembly: the offending call-site line
/// in a unit, plus the rendered chain.
struct ChainFinding {
    unit: usize,
    line: usize,
    rule_idx: usize,
    pattern: &'static str,
    chain: String,
}

/// Body-local candidates for one unit — every rule except the
/// stale-marker audit and the reachability checks — pre-suppression.
fn body_candidates(unit: &Unit<'_>) -> Vec<Candidate> {
    let class = &unit.class;
    let file = &unit.scoped;
    let mut candidates: Vec<Candidate> = Vec::new();
    for (rule_idx, rule) in RULES.iter().enumerate() {
        let mut hits: Vec<(usize, &'static str)> = Vec::new();
        match rule.check {
            Check::Patterns(pats) | Check::PanicFree(pats) => {
                for pat in pats {
                    let toks = engine::pattern_tokens(pat);
                    let prefix = pat.ends_with('_');
                    for idx in engine::find_pattern_matches(file, &toks, prefix) {
                        hits.push((idx, pat));
                    }
                }
                if matches!(rule.check, Check::PanicFree(_)) {
                    for idx in engine::find_index_exprs(file) {
                        hits.push((idx, INDEXING_PATTERN));
                    }
                }
            }
            Check::UnorderedIteration => {
                for idx in engine::find_unordered_iterations(file) {
                    hits.push((idx, HASH_ITER_PATTERN));
                }
            }
            Check::StaleAllow => {}
            // Reachability rules run on the workspace call graph, not
            // on single-file token streams.
            Check::Reachability(_) => {}
        }
        for (idx, pattern) in hits {
            let tok = &file.tokens[idx];
            if !rule_applies(rule, class, tok.in_test) {
                continue;
            }
            if rule.scope == Scope::HotPath {
                let Some(fns) = hot_fns(&class.joined) else {
                    continue;
                };
                if !file.in_fn_named(idx, fns) {
                    continue;
                }
            }
            let line = tok.token.line as usize;
            // One finding per (rule, line, pattern), as the line engine
            // reported.
            if candidates
                .iter()
                .any(|c| c.rule_idx == rule_idx && c.line == line && c.pattern == pattern)
            {
                continue;
            }
            candidates.push(Candidate {
                line,
                rule_idx,
                pattern,
            });
        }
    }
    candidates
}

/// One function node of the exported call graph.
#[derive(Clone, Debug)]
pub struct GraphNode {
    /// Function name.
    pub name: String,
    /// Workspace-relative `/`-joined path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One resolved call edge of the exported call graph.
#[derive(Clone, Debug)]
pub struct GraphEdge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// File holding the call site.
    pub file: String,
    /// 1-based call-site line.
    pub line: u32,
    /// The callee name as written at the call site.
    pub name: String,
}

/// One unresolved call site of the exported call graph.
#[derive(Clone, Debug)]
pub struct GraphUnresolved {
    /// File holding the call site.
    pub file: String,
    /// 1-based call-site line.
    pub line: u32,
    /// The called name as written.
    pub name: String,
    /// The receiver name for method calls, when one was visible.
    pub receiver: Option<String>,
}

/// The interprocedural summary behind CRP014–016, exported as
/// `results/callgraph.json` by `lint --graph`.
#[derive(Clone, Debug, Default)]
pub struct GraphReport {
    /// Every non-harness `fn` item, in (file, declaration) order.
    pub nodes: Vec<GraphNode>,
    /// Every resolved call edge.
    pub edges: Vec<GraphEdge>,
    /// Call sites the conservative resolver could not place — reported,
    /// never silently dropped.
    pub unresolved: Vec<GraphUnresolved>,
    /// Call sites resolved to workspace functions.
    pub resolved_calls: usize,
    /// Call sites classified as std/leaf calls.
    pub std_calls: usize,
    /// `unresolved / (resolved + std + unresolved)`; the CI gate
    /// (`--max-unresolved`) fails when this grows past the committed
    /// threshold.
    pub unresolved_fraction: f64,
}

/// The full result of a workspace lint pass.
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// The call-graph summary the reachability rules ran on.
    pub graph: GraphReport,
}

/// Lints a set of files as one workspace: body-local rules per file,
/// then the interprocedural reachability rules (CRP014–016) over the
/// call graph spanning all of them, then the stale-marker audit
/// (CRP012) with transitive liveness taken into account. `demoted`
/// lists rule IDs reduced to warnings.
pub fn lint_files(inputs: &[(PathBuf, String)], demoted: &[String]) -> LintReport {
    let mut units: Vec<Unit<'_>> = Vec::new();
    for (i, (rel, source)) in inputs.iter().enumerate() {
        let Some(class) = classify(rel) else {
            continue;
        };
        units.push(Unit {
            input: i,
            class,
            scoped: ScopedFile::parse(source),
            markers: parse_markers(source),
        });
    }

    let candidates: Vec<Vec<Candidate>> = units.iter().map(body_candidates).collect();

    // The interprocedural layer: non-harness units form the graph.
    let graph_units: Vec<usize> = (0..units.len())
        .filter(|&u| units[u].class.kind != FileKind::Harness)
        .collect();
    let sources: Vec<SourceFile<'_, '_>> = graph_units
        .iter()
        .map(|&u| {
            SourceFile::new(
                units[u].class.joined.clone(),
                units[u].class.crate_name.clone(),
                &units[u].scoped,
            )
        })
        .collect();
    let table = SymbolTable::build(&sources);
    let graph = CallGraph::build(&sources, &table);

    let mut findings: Vec<ChainFinding> = Vec::new();
    let mut live: Vec<BTreeSet<(&'static str, usize)>> = vec![BTreeSet::new(); units.len()];
    for (rule_idx, rule) in RULES.iter().enumerate() {
        if let Check::Reachability(reach) = rule.check {
            run_reachability(
                reach,
                rule_idx,
                &units,
                &graph_units,
                &sources,
                &table,
                &graph,
                &mut findings,
                &mut live,
            );
        }
    }

    let graph_report = GraphReport {
        nodes: table
            .fns
            .iter()
            .map(|s| GraphNode {
                name: s.name.clone(),
                file: sources[s.file].joined.clone(),
                line: s.line,
            })
            .collect(),
        edges: graph
            .edges
            .iter()
            .map(|e| GraphEdge {
                caller: e.caller,
                callee: e.callee,
                file: sources[e.file].joined.clone(),
                line: e.line,
                name: e.name.clone(),
            })
            .collect(),
        unresolved: graph
            .unresolved
            .iter()
            .map(|u| GraphUnresolved {
                file: sources[u.file].joined.clone(),
                line: u.line,
                name: u.name.clone(),
                receiver: u.receiver.clone(),
            })
            .collect(),
        resolved_calls: graph.resolved_calls,
        std_calls: graph.std_calls,
        unresolved_fraction: graph.unresolved_fraction(),
    };

    let mut diagnostics = Vec::new();
    for (u, unit) in units.iter().enumerate() {
        let rel = &inputs[unit.input].0;
        for c in &candidates[u] {
            let rule = &RULES[c.rule_idx];
            if suppressed(&unit.markers, c.line, rule.id) {
                continue;
            }
            diagnostics.push(make_diagnostic(rel, c.line, rule, c.pattern, demoted));
        }

        // CRP012: markers that cover no candidate of any rule they list
        // are stale. Usage is judged against pre-suppression candidates
        // (so an unjustified marker sitting on a real violation is not
        // *also* reported as stale — the violation itself already
        // fires), and against the raw transitive-live lines for the
        // reachability rules — a marker justifying CRP014/015/016 is
        // live when any chain lands on a line it covers, not just a
        // body-local token.
        if let Some(stale_rule) = RULES.iter().find(|r| matches!(r.check, Check::StaleAllow)) {
            for m in &unit.markers {
                if !rule_applies(
                    stale_rule,
                    &unit.class,
                    unit.scoped.line_in_test(m.line as u32),
                ) {
                    continue;
                }
                if m.rules.iter().any(|r| r == stale_rule.id) {
                    // `allow(CRP012)` in the list marks the marker as
                    // intentionally kept.
                    continue;
                }
                let used = candidates[u]
                    .iter()
                    .any(|c| m.covers(c.line) && m.rules.iter().any(|r| r == RULES[c.rule_idx].id))
                    || live[u]
                        .iter()
                        .any(|(rid, line)| m.covers(*line) && m.rules.iter().any(|r| r == rid));
                if used || suppressed(&unit.markers, m.line, stale_rule.id) {
                    continue;
                }
                diagnostics.push(make_diagnostic(
                    rel,
                    m.line,
                    stale_rule,
                    STALE_ALLOW_PATTERN,
                    demoted,
                ));
            }
        }
    }

    for f in &findings {
        let unit = &units[f.unit];
        let rel = &inputs[unit.input].0;
        let mut d = make_diagnostic(rel, f.line, &RULES[f.rule_idx], f.pattern, demoted);
        d.chain = f.chain.clone();
        diagnostics.push(d);
    }

    diagnostics.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    LintReport {
        diagnostics,
        graph: graph_report,
    }
}

/// Runs one reachability rule over the call graph, appending chain
/// findings and registering transitive-live lines for the CRP012 audit.
#[allow(clippy::too_many_arguments)]
fn run_reachability(
    reach: Reach,
    rule_idx: usize,
    units: &[Unit<'_>],
    graph_units: &[usize],
    sources: &[SourceFile<'_, '_>],
    table: &SymbolTable,
    graph: &CallGraph,
    findings: &mut Vec<ChainFinding>,
    live: &mut [BTreeSet<(&'static str, usize)>],
) {
    let rule = &RULES[rule_idx];
    let (patterns, label) = match reach {
        Reach::Alloc => (ALLOC_SINK_PATTERNS, ALLOC_REACH_PATTERN),
        Reach::Panic => (PANIC_SINK_PATTERNS, PANIC_REACH_PATTERN),
        Reach::Clock => (CLOCK_SINK_PATTERNS, CLOCK_REACH_PATTERN),
    };
    let nsym = table.fns.len();

    // Sink sites. A justified allow marker for this rule on a sink line
    // sanctions that sink for every chain — suppression happens before
    // taint, at the sink or at any call edge on the way.
    let mut sink_enabled = vec![false; nsym];
    let mut sink_raw = vec![false; nsym];
    let mut sink_sites: Vec<Vec<(usize, &'static str)>> = vec![Vec::new(); nsym];
    let mut raw_sites: Vec<(usize, usize, usize)> = Vec::new();
    for (gi, _) in sources.iter().enumerate() {
        let unit = &units[graph_units[gi]];
        let scoped = &unit.scoped;
        let mut hits: Vec<(usize, &'static str)> = Vec::new();
        for pat in patterns {
            let toks = engine::pattern_tokens(pat);
            let prefix = pat.ends_with('_');
            for idx in engine::find_pattern_matches(scoped, &toks, prefix) {
                hits.push((idx, pat));
            }
        }
        if reach == Reach::Panic {
            for idx in engine::find_index_exprs(scoped) {
                hits.push((idx, INDEXING_PATTERN));
            }
        }
        for (idx, pat) in hits {
            let tok = &scoped.tokens[idx];
            if tok.in_test {
                continue;
            }
            let Some(fn_id) = tok.fn_scope else {
                continue;
            };
            let Some(sym) = table.sym_of(gi, fn_id as usize) else {
                continue;
            };
            let line = tok.token.line as usize;
            sink_raw[sym] = true;
            raw_sites.push((gi, sym, line));
            if !suppressed(&unit.markers, line, rule.id) {
                sink_enabled[sym] = true;
                sink_sites[sym].push((line, pat));
            }
        }
    }

    // Roots.
    let mut is_root = vec![false; nsym];
    match reach {
        Reach::Alloc => {
            for (gi, src) in sources.iter().enumerate() {
                let Some(fns) = hot_fns(&src.joined) else {
                    continue;
                };
                mark_named_roots(table, gi, fns, &mut is_root);
            }
        }
        Reach::Panic => {
            for (gi, src) in sources.iter().enumerate() {
                let Some(fns) = SERVING_ENTRIES
                    .iter()
                    .find(|(path, _)| *path == src.joined)
                    .map(|(_, fns)| *fns)
                else {
                    continue;
                };
                mark_named_roots(table, gi, fns, &mut is_root);
            }
        }
        Reach::Clock => {
            for (sym_id, sym) in table.fns.iter().enumerate() {
                if sym.is_test {
                    continue;
                }
                let src = &sources[sym.file];
                let sanctioned = WALL_CLOCK_CRATES.contains(&src.crate_name.as_str())
                    || WALL_CLOCK_FILES.contains(&src.joined.as_str());
                if !sanctioned {
                    is_root[sym_id] = true;
                }
            }
        }
    }

    // Call edges disabled by a justified marker for this rule don't
    // propagate taint and produce no finding.
    let edge_enabled: Vec<bool> = graph
        .edges
        .iter()
        .map(|e| {
            let unit = &units[graph_units[e.file]];
            !suppressed(&unit.markers, e.line as usize, rule.id)
        })
        .collect();

    let tainted = graph.tainted(&sink_enabled, &edge_enabled);

    // Frontier emission: a finding lands on a root's own call sites
    // only. For CRP014/015, edges into another root are skipped — the
    // callee root reports its own chains, so one deep chain does not
    // cascade into a finding per ancestor. For CRP016 every
    // unsanctioned function is a root, so the frontier is instead the
    // deepest unsanctioned call site: an edge fires only when the
    // callee directly holds a sink or is sanctioned-and-tainted.
    let mut emitted: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for root in 0..nsym {
        if !is_root[root] {
            continue;
        }
        for &e_idx in &graph.out[root] {
            if !edge_enabled[e_idx] {
                continue;
            }
            let e = &graph.edges[e_idx];
            if !tainted[e.callee] {
                continue;
            }
            let emit = match reach {
                Reach::Alloc | Reach::Panic => !is_root[e.callee],
                Reach::Clock => sink_enabled[e.callee] || !is_root[e.callee],
            };
            if !emit {
                continue;
            }
            let unit = graph_units[e.file];
            let line = e.line as usize;
            if !emitted.insert((unit, line, rule_idx)) {
                continue;
            }
            let chain = render_chain(
                root,
                e_idx,
                &sink_enabled,
                &sink_sites,
                &edge_enabled,
                sources,
                table,
                graph,
            );
            findings.push(ChainFinding {
                unit,
                line,
                rule_idx,
                pattern: label,
                chain,
            });
        }
    }

    // Transitive liveness for CRP012, on the RAW graph (no marker
    // filtering): a marker justifying this rule is live wherever a
    // chain from some root could land — a sink line reached from a
    // root, or a call edge with a root-reachable caller and a tainted
    // callee. Computing this on the filtered graph would make every
    // effective marker look stale, because the very chains it disables
    // would vanish.
    let all_edges = vec![true; graph.edges.len()];
    let raw_tainted = graph.tainted(&sink_raw, &all_edges);
    let raw_reach = graph.reachable(&is_root, &all_edges);
    for &(gi, sym, line) in &raw_sites {
        if raw_reach[sym] {
            live[graph_units[gi]].insert((rule.id, line));
        }
    }
    for e in &graph.edges {
        if raw_reach[e.caller] && raw_tainted[e.callee] {
            live[graph_units[e.file]].insert((rule.id, e.line as usize));
        }
    }
}

/// Marks the non-test functions of file `gi` whose names appear in
/// `fns` as roots.
fn mark_named_roots(table: &SymbolTable, gi: usize, fns: &[&str], is_root: &mut [bool]) {
    for &sym_id in &table.fn_map[gi] {
        let sym = &table.fns[sym_id];
        if !sym.is_test && fns.contains(&sym.name.as_str()) {
            is_root[sym_id] = true;
        }
    }
}

/// Renders the offending chain for a finding: the root, each hop down
/// the shortest enabled path to a sink holder, and the concrete sink.
#[allow(clippy::too_many_arguments)]
fn render_chain(
    root: usize,
    first_edge: usize,
    sink_enabled: &[bool],
    sink_sites: &[Vec<(usize, &'static str)>],
    edge_enabled: &[bool],
    sources: &[SourceFile<'_, '_>],
    table: &SymbolTable,
    graph: &CallGraph,
) -> String {
    let e0 = &graph.edges[first_edge];
    let mut path = vec![first_edge];
    if let Some(rest) = graph.shortest_path(e0.callee, sink_enabled, edge_enabled) {
        path.extend(rest);
    }
    let rsym = &table.fns[root];
    let mut out = format!(
        "{} ({}:{})",
        rsym.name, sources[rsym.file].joined, rsym.line
    );
    let mut last = root;
    for &ei in &path {
        let e = &graph.edges[ei];
        let c = &table.fns[e.callee];
        out.push_str(&format!(
            " -> {} ({}:{})",
            c.name, sources[c.file].joined, c.line
        ));
        last = e.callee;
    }
    if let Some(&(line, pat)) = sink_sites[last].iter().min() {
        out.push_str(&format!(
            " -> `{}` ({}:{})",
            pat, sources[table.fns[last].file].joined, line
        ));
    }
    out
}

/// Lints one file's source text. `rel` is the path used in diagnostics
/// and for scope classification; `demoted` lists rule IDs reduced to
/// warnings. The reachability rules still run — over the single-file
/// call graph.
pub fn lint_source(rel: &Path, source: &str, demoted: &[String]) -> Vec<Diagnostic> {
    let inputs = [(rel.to_path_buf(), source.to_string())];
    lint_files(&inputs, demoted).diagnostics
}

fn make_diagnostic(
    rel: &Path,
    line: usize,
    rule: &Rule,
    pattern: &'static str,
    demoted: &[String],
) -> Diagnostic {
    let severity = if demoted.iter().any(|d| d == rule.id) {
        Severity::Warning
    } else {
        rule.severity
    };
    Diagnostic {
        file: rel.to_path_buf(),
        line,
        rule: rule.id,
        severity,
        pattern,
        message: rule.message,
        chain: String::new(),
    }
}

/// Reads every `.rs` file under `root` into memory, skipping
/// `target/`, `vendor/`, `.git/`, and `fixtures/` directories. Paths
/// are root-relative and sorted.
///
/// # Errors
///
/// Returns an error when a directory or file cannot be read.
pub fn read_workspace_sources(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Recursively lints every `.rs` file under `root` as one workspace,
/// returning the findings plus the call-graph summary. Diagnostics are
/// sorted by path, then line.
///
/// # Errors
///
/// Returns an error when a directory or file cannot be read.
pub fn lint_root_report(root: &Path, demoted: &[String]) -> std::io::Result<LintReport> {
    let inputs = read_workspace_sources(root)?;
    Ok(lint_files(&inputs, demoted))
}

/// [`lint_root_report`], findings only.
///
/// # Errors
///
/// Returns an error when a directory or file cannot be read.
pub fn lint_root(root: &Path, demoted: &[String]) -> std::io::Result<Vec<Diagnostic>> {
    Ok(lint_root_report(root, demoted)?.diagnostics)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_str().unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A library file in a crate with no special scope memberships —
    /// not sim, not serving, not I/O- or wall-clock-sanctioned.
    fn lib_path() -> PathBuf {
        PathBuf::from("crates/demo/src/demo.rs")
    }

    #[test]
    fn unwrap_in_library_is_flagged() {
        let diags = lint_source(&lib_path(), "fn f() { x.unwrap(); }\n", &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "CRP001");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn unwrap_after_test_region_is_flagged() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn allow_comment_suppresses() {
        let same = "fn f() { x.unwrap(); } // crp-lint: allow(CRP001) — documented invariant\n";
        assert!(lint_source(&lib_path(), same, &[]).is_empty());
        let above =
            "// safe by construction: crp-lint: allow(CRP001) — reviewed\nfn f() { x.unwrap(); }\n";
        assert!(lint_source(&lib_path(), above, &[]).is_empty());
        // A marker for the wrong rule suppresses nothing — the original
        // finding fires, and the marker itself is stale (CRP012).
        let wrong_rule = "fn f() { x.unwrap(); } // crp-lint: allow(CRP002) — misfiled\n";
        let diags = lint_source(&lib_path(), wrong_rule, &[]);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["CRP001", "CRP012"]);
    }

    #[test]
    fn unjustified_allow_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // crp-lint: allow(CRP001)\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "CRP001");
    }

    #[test]
    fn marker_inside_string_literal_is_ignored() {
        // Neither suppresses anything nor counts as a stale marker.
        let src = "fn f() -> &'static str { \"crp-lint: allow(CRP001) — not a comment\" }\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "// mentions .unwrap()\nlet s = \".unwrap()\";\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn rng_rule_applies_even_in_tests_and_bins() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let r = thread_rng(); }\n}\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "CRP002");
        let bin = PathBuf::from("crates/eval/src/bin/tool.rs");
        let diags = lint_source(&bin, "fn main() { rand::random::<u8>(); }\n", &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "CRP002");
    }

    #[test]
    fn wall_clock_only_flagged_in_sim_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let sim = lint_source(&PathBuf::from("crates/netsim/src/clock.rs"), src, &[]);
        assert!(sim.iter().any(|d| d.rule == "CRP004"));
        let nonsim = lint_source(&PathBuf::from("crates/eval/src/timing.rs"), src, &[]);
        assert!(nonsim.iter().all(|d| d.rule != "CRP004"));
    }

    #[test]
    fn wall_clock_flagged_everywhere_except_sanctioned_perf_layer() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        // A non-sim library crate: CRP007 fires (CRP004 does not).
        let meridian = lint_source(&PathBuf::from("crates/meridian/src/overlay.rs"), src, &[]);
        assert!(meridian.iter().any(|d| d.rule == "CRP007"));
        assert!(meridian.iter().all(|d| d.rule != "CRP004"));
        // Binaries of non-sanctioned crates are covered too.
        let bin = lint_source(&PathBuf::from("crates/core/src/bin/tool.rs"), src, &[]);
        assert!(bin.iter().any(|d| d.rule == "CRP007"));
        // The sanctioned wall-clock users are exempt.
        for sanctioned in [
            "crates/bench/src/harness.rs",
            "crates/eval/src/bin/run_all.rs",
            "crates/telemetry/src/profile.rs",
        ] {
            let diags = lint_source(&PathBuf::from(sanctioned), src, &[]);
            assert!(
                diags
                    .iter()
                    .all(|d| d.rule != "CRP007" && d.rule != "CRP004"),
                "{sanctioned} should be wall-clock-sanctioned, got {diags:?}"
            );
        }
        // Harness code (tests/benches/examples) stays exempt.
        let harness = lint_source(&PathBuf::from("crates/core/tests/perf.rs"), src, &[]);
        assert!(harness.is_empty());
    }

    #[test]
    fn profile_module_is_the_only_sim_crate_wall_clock_exception() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        // Elsewhere in the telemetry crate both rules still fire.
        let lib = lint_source(&PathBuf::from("crates/telemetry/src/lib.rs"), src, &[]);
        assert!(lib.iter().any(|d| d.rule == "CRP004"));
        assert!(lib.iter().any(|d| d.rule == "CRP007"));
    }

    #[test]
    fn println_warned_in_libraries_but_not_eval_or_bins() {
        let src = "fn f() { println!(\"x\"); }\n";
        let lib = lint_source(&lib_path(), src, &[]);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, "CRP005");
        assert_eq!(lib[0].severity, Severity::Warning);
        assert!(lint_source(&PathBuf::from("crates/eval/src/output.rs"), src, &[]).is_empty());
        assert!(lint_source(&PathBuf::from("crates/eval/src/bin/fig4.rs"), src, &[]).is_empty());
    }

    #[test]
    fn harness_code_is_exempt_from_library_rules() {
        let src = "fn f() { x.unwrap(); a.partial_cmp(&b); }\n";
        for p in [
            "crates/core/tests/properties.rs",
            "crates/bench/benches/similarity.rs",
            "examples/quickstart.rs",
            "tests/extensions.rs",
        ] {
            assert!(
                lint_source(&PathBuf::from(p), src, &[]).is_empty(),
                "{p} should be exempt"
            );
        }
    }

    #[test]
    fn demotion_turns_errors_into_warnings() {
        let diags = lint_source(
            &lib_path(),
            "fn f() { x.unwrap(); }\n",
            &["CRP001".to_string()],
        );
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn partial_cmp_is_flagged() {
        let diags = lint_source(
            &lib_path(),
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
            &[],
        );
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"CRP003"));
        assert!(rules.contains(&"CRP001"));
    }

    #[test]
    fn file_io_flagged_outside_sanctioned_crates() {
        let src = "fn f() { let _ = std::fs::File::create(\"x\"); }\n";
        let lib = lint_source(&lib_path(), src, &[]);
        assert!(lib.iter().any(|d| d.rule == "CRP006"));
        assert_eq!(lib[0].severity, Severity::Error);
        for sanctioned in [
            "crates/telemetry/src/sink.rs",
            "crates/eval/src/output.rs",
            "crates/xtask/src/lint.rs",
        ] {
            assert!(
                lint_source(&PathBuf::from(sanctioned), src, &[]).is_empty(),
                "{sanctioned} should be exempt from CRP006"
            );
        }
        let write = "fn f() { std::fs::write(\"x\", \"y\").ok(); }\n";
        assert!(lint_source(&lib_path(), write, &[])
            .iter()
            .any(|d| d.rule == "CRP006"));
    }

    #[test]
    fn wall_clock_flagged_in_telemetry_crate() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let diags = lint_source(&PathBuf::from("crates/telemetry/src/lib.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP004"));
    }

    #[test]
    fn non_workspace_paths_are_ignored() {
        assert!(lint_source(&PathBuf::from("README.rs"), "x.unwrap();", &[]).is_empty());
    }

    #[test]
    fn provenance_calls_flagged_outside_sanctioned_sites() {
        let src = "fn f() { crate::explain::record_ranking(&entries); }\n";
        // An unsanctioned core module: CRP008 fires.
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP008"), "{diags:?}");
        // Binaries are covered too — recording belongs in the audit layer.
        let bin = lint_source(&PathBuf::from("crates/eval/src/bin/fig4.rs"), src, &[]);
        assert!(bin.iter().any(|d| d.rule == "CRP008"));
        // Trace hooks are held to the same standard as explain hooks.
        let trace_src = "fn f() { crp_telemetry::trace::begin(id, 0, \"x\"); }\n";
        let diags = lint_source(&PathBuf::from("crates/netsim/src/rtt.rs"), trace_src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP008"), "{diags:?}");
        let minted = "fn f() { let id = crp_telemetry::trace::mint(&[1]); }\n";
        let diags = lint_source(&PathBuf::from("crates/dns/src/resolver.rs"), minted, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP008"), "{diags:?}");
        // ...but the mint site and the ingest path are sanctioned.
        let diags = lint_source(&PathBuf::from("crates/cdn/src/cdn.rs"), minted, &[]);
        assert!(diags.iter().all(|d| d.rule != "CRP008"), "{diags:?}");
        // The reviewed call sites are exempt.
        for sanctioned in [
            "crates/core/src/similarity.rs",
            "crates/core/src/select.rs",
            "crates/core/src/cluster.rs",
            "crates/core/src/explain.rs",
            "crates/core/src/observation.rs",
            "crates/core/src/tracker.rs",
            "crates/core/src/service.rs",
            "crates/cdn/src/cdn.rs",
            "crates/eval/src/audit.rs",
            "crates/eval/src/telemetry.rs",
        ] {
            let diags = lint_source(&PathBuf::from(sanctioned), src, &[]);
            assert!(
                diags.iter().all(|d| d.rule != "CRP008"),
                "{sanctioned} should be provenance-sanctioned, got {diags:?}"
            );
        }
        // Test regions and harness code stay exempt.
        let test_region = "#[cfg(test)]\nmod tests {\n    fn t() { \
                           crate::explain::record_inversion(r); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), test_region, &[]);
        assert!(diags.iter().all(|d| d.rule != "CRP008"), "{diags:?}");
        assert!(lint_source(&PathBuf::from("tests/determinism.rs"), src, &[]).is_empty());
    }

    #[test]
    fn mem_domains_flagged_outside_sanctioned_sites() {
        let src = "fn f() { crp_telemetry::mem_domain!(\"rogue.domain\"); }\n";
        // An unsanctioned module: CRP013 fires.
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP013"), "{diags:?}");
        // Binaries are covered too — attribution boundaries are reviewed.
        let bin = lint_source(&PathBuf::from("crates/eval/src/bin/fig4.rs"), src, &[]);
        assert!(bin.iter().any(|d| d.rule == "CRP013"), "{bin:?}");
        // The reviewed subsystem borders are exempt.
        for sanctioned in MEM_DOMAIN_FILES {
            let diags = lint_source(&PathBuf::from(sanctioned), src, &[]);
            assert!(
                diags.iter().all(|d| d.rule != "CRP013"),
                "{sanctioned} should be mem-domain-sanctioned, got {diags:?}"
            );
        }
        // Test regions and harness code stay exempt.
        let test_region = "#[cfg(test)]\nmod tests {\n    fn t() { \
                           crp_telemetry::mem_domain!(\"test.domain\"); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), test_region, &[]);
        assert!(diags.iter().all(|d| d.rule != "CRP013"), "{diags:?}");
        assert!(lint_source(&PathBuf::from("tests/determinism.rs"), src, &[]).is_empty());
    }

    #[test]
    fn audit_crate_is_a_sim_crate_for_wall_clock_purposes() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let diags = lint_source(&PathBuf::from("crates/audit/src/drift.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP004"), "{diags:?}");
    }

    // ---- CRP009: hot-path allocation discipline -------------------------

    #[test]
    fn allocation_in_hot_path_function_is_flagged() {
        let src = "impl R {\n    fn dot(&self) -> f64 {\n        let v = self.entries.to_vec();\n        v.len() as f64\n    }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "CRP009");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn allocation_outside_hot_functions_is_fine() {
        // `top_entries` is not on the declared hot-path list.
        let src = "impl R {\n    fn top_entries(&self) -> Vec<u32> {\n        self.entries.to_vec()\n    }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allocation_in_non_hot_file_is_fine() {
        let src = "fn dot() -> Vec<u32> { Vec::new() }\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/observation.rs"), src, &[]);
        assert!(diags.iter().all(|d| d.rule != "CRP009"), "{diags:?}");
    }

    #[test]
    fn justified_allow_suppresses_hot_path_allocation() {
        let src = "impl R {\n    fn dot(&self) -> f64 {\n        // crp-lint: allow(CRP009) — one-time setup, amortized\n        let v = self.entries.to_vec();\n        v.len() as f64\n    }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn hot_path_test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn dot() { let v: Vec<u32> = Vec::new(); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/ratio.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // ---- CRP010: serving-path panic freedom -----------------------------

    #[test]
    fn serving_crates_flag_unwrap_twice_over() {
        // CRP001 (library) and CRP010 (serving) both apply in crp-dns.
        let src = "fn resolve() { addr.unwrap(); }\n";
        let diags = lint_source(&PathBuf::from("crates/dns/src/resolve.rs"), src, &[]);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["CRP001", "CRP010"]);
    }

    #[test]
    fn indexing_in_serving_crate_is_flagged() {
        let src = "fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        let diags = lint_source(&PathBuf::from("crates/cdn/src/route.rs"), src, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "CRP010");
        assert_eq!(diags[0].pattern, "[...]");
    }

    #[test]
    fn indexing_outside_serving_crates_is_fine() {
        let src = "fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn panic_macro_in_serving_crate_is_flagged() {
        let src = "fn f(x: u32) { if x > 9 { panic!(\"bad\"); } }\n";
        let diags = lint_source(&PathBuf::from("crates/core/src/observation.rs"), src, &[]);
        assert!(diags.iter().any(|d| d.rule == "CRP010"), "{diags:?}");
    }

    #[test]
    fn allow_suppresses_serving_panic() {
        let src = "fn pick(xs: &[u32]) -> u32 { xs[0] } \
                   // crp-lint: allow(CRP010) — len checked by caller contract\n";
        let diags = lint_source(&PathBuf::from("crates/cdn/src/route.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn array_types_and_attributes_are_not_indexing() {
        let src = "#[derive(Clone)]\nstruct S { buf: [u8; 4] }\nfn f() -> [u8; 2] { [0, 1] }\n";
        let diags = lint_source(&PathBuf::from("crates/cdn/src/route.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // ---- CRP011: iteration-order determinism ----------------------------

    #[test]
    fn unordered_hash_iteration_in_sim_crate_is_flagged() {
        let src =
            "fn tally(m: &HashMap<u32, u64>) {\n    for (k, v) in m.iter() { emit(k, v); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/netsim/src/sweep.rs"), src, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "CRP011");
    }

    #[test]
    fn sorted_hash_iteration_is_fine() {
        let src = "fn tally(m: &HashMap<u32, u64>) {\n    let mut ks: Vec<u32> = m.keys().copied().collect();\n    ks.sort();\n}\n";
        let diags = lint_source(&PathBuf::from("crates/netsim/src/sweep.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn hash_iteration_outside_sim_crates_is_fine() {
        let src =
            "fn tally(m: &HashMap<u32, u64>) {\n    for (k, v) in m.iter() { emit(k, v); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/meridian/src/overlay.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_suppresses_hash_iteration() {
        let src = "fn tally(m: &HashMap<u32, u64>) {\n    \
                   // crp-lint: allow(CRP011) — feeds a commutative sum\n    \
                   for (k, v) in m.iter() { emit(k, v); }\n}\n";
        let diags = lint_source(&PathBuf::from("crates/netsim/src/sweep.rs"), src, &[]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // ---- CRP012: stale allow markers ------------------------------------

    #[test]
    fn stale_marker_is_flagged() {
        let src = "fn f() -> u32 {\n    // crp-lint: allow(CRP001) — was needed before the refactor\n    0\n}\n";
        let diags = lint_source(&lib_path(), src, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "CRP012");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn used_marker_is_not_stale() {
        let src = "fn f() { x.unwrap(); } // crp-lint: allow(CRP001) — invariant documented\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn stale_marker_in_test_region_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    // crp-lint: allow(CRP001) — test scaffolding\n    fn t() {}\n}\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn marker_listing_crp012_is_kept_intentionally() {
        let src = "fn f() -> u32 {\n    // crp-lint: allow(CRP001, CRP012) — kept for the pending revert\n    0\n}\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn doc_comments_mentioning_marker_syntax_are_not_markers() {
        let src = "//! Suppress with a `crp-lint: allow(CRP001) — reason` comment.\n\
                   /// See crp-lint: allow(CRP006) — like this.\nfn f() {}\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
    }

    #[test]
    fn placeholder_rule_ids_do_not_form_markers() {
        // Prose in a regular comment naming the syntax with a
        // placeholder rule must be neither a suppression nor stale.
        let src = "// justify with crp-lint: allow(CRP00x) — placeholder\nfn f() {}\n";
        assert!(lint_source(&lib_path(), src, &[]).is_empty());
        assert!(!is_rule_id("CRP00x"));
        assert!(!is_rule_id("<rules>"));
        assert!(is_rule_id("CRP009"));
    }

    #[test]
    fn harness_markers_are_never_stale() {
        let src = "// crp-lint: allow(CRP001) — whatever\nfn t() {}\n";
        assert!(lint_source(&PathBuf::from("crates/core/tests/x.rs"), src, &[]).is_empty());
    }
}
