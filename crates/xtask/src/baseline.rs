//! The ratcheted lint baseline.
//!
//! `LINT_BASELINE.json` records, per rule and per crate, how many
//! error-severity findings the workspace is *allowed* to contain. The
//! lint run is green while every bucket stays at or below its
//! allowance; any bucket that grows fails the run and prints the
//! offending findings. Shrinking a bucket passes immediately — refresh
//! the committed file with `--update-baseline` to lock the improvement
//! in, exactly like the `bench_check`/`BENCH_<label>.json` workflow.

use crate::json::{self, Value};
use crate::lint::{Diagnostic, Severity};
use std::collections::BTreeMap;
use std::path::Path;

/// Per-(rule, crate) error allowances, keyed `(rule_id, crate_name)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), u64>,
}

/// One row of the ratchet comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaRow {
    pub rule: String,
    pub crate_name: String,
    pub baseline: u64,
    pub current: u64,
}

impl DeltaRow {
    /// Whether this bucket grew past its allowance.
    pub fn regressed(&self) -> bool {
        self.current > self.baseline
    }
}

/// The result of ratcheting a diagnostic set against a baseline.
pub struct RatchetOutcome {
    /// Diagnostics that still count: warnings, plus every error in a
    /// bucket that exceeded its allowance.
    pub diagnostics: Vec<Diagnostic>,
    /// Error findings absorbed by the baseline (within allowance).
    pub baselined: usize,
    /// All buckets present in either the baseline or the current run,
    /// sorted by (rule, crate).
    pub rows: Vec<DeltaRow>,
}

impl RatchetOutcome {
    /// Whether any bucket regressed.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(DeltaRow::regressed)
    }
}

/// The short crate name a diagnostic's path belongs to, matching the
/// baseline's crate key (`core`, `cdn`, ... or `crp` for root `src/`).
pub fn crate_of(file: &Path) -> String {
    let parts: Vec<&str> = file
        .components()
        .map(|c| c.as_os_str().to_str().unwrap_or(""))
        .collect();
    if parts.first() == Some(&"crates") {
        parts.get(1).unwrap_or(&"crp").to_string()
    } else {
        "crp".to_string()
    }
}

/// Per-(rule, crate) error counts for a diagnostic set. Warnings never
/// enter the ratchet — they cannot fail the run.
pub fn error_counts(diagnostics: &[Diagnostic]) -> BTreeMap<(String, String), u64> {
    let mut counts = BTreeMap::new();
    for diag in diagnostics {
        if diag.severity == Severity::Error {
            *counts
                .entry((diag.rule.to_string(), crate_of(&diag.file)))
                .or_insert(0) += 1;
        }
    }
    counts
}

impl Baseline {
    /// Builds a baseline holding exactly the given counts.
    pub fn from_counts(counts: BTreeMap<(String, String), u64>) -> Self {
        Baseline { counts }
    }

    /// Parses the committed baseline file format:
    ///
    /// ```json
    /// {
    ///   "comment": "...",
    ///   "counts": { "CRP009": { "core": 5 }, ... }
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not valid JSON or does
    /// not follow the schema above.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let counts_obj = doc
            .get("counts")
            .ok_or("baseline is missing the `counts` object")?;
        let rules = counts_obj
            .entries()
            .ok_or("baseline `counts` must be an object")?;
        let mut counts = BTreeMap::new();
        for (rule, crates) in rules {
            let crates = crates
                .entries()
                .ok_or_else(|| format!("baseline counts for {rule} must be an object"))?;
            for (crate_name, n) in crates {
                let n = n.as_u64().ok_or_else(|| {
                    format!("count {rule}/{crate_name} must be a non-negative integer")
                })?;
                counts.insert((rule.clone(), crate_name.clone()), n);
            }
        }
        Ok(Baseline { counts })
    }

    /// Loads the baseline from `path`; `Ok(None)` when the file does
    /// not exist (strict mode — every error fails).
    ///
    /// # Errors
    ///
    /// Returns an error when the file exists but cannot be read or
    /// parsed.
    pub fn load(path: &Path) -> Result<Option<Self>, String> {
        if !path.is_file() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Serializes the baseline in the committed file format, rules
    /// outer, crates inner, both sorted.
    pub fn to_json(&self) -> String {
        let mut by_rule: BTreeMap<&str, Vec<(String, Value)>> = BTreeMap::new();
        for ((rule, crate_name), n) in &self.counts {
            by_rule
                .entry(rule)
                .or_default()
                .push((crate_name.clone(), Value::Num(*n as f64)));
        }
        let counts = Value::Obj(
            by_rule
                .into_iter()
                .map(|(rule, crates)| (rule.to_string(), Value::Obj(crates)))
                .collect(),
        );
        let doc = Value::Obj(vec![
            (
                "comment".to_string(),
                Value::Str(
                    "Per-rule, per-crate lint-error allowances. The ratchet only \
                     goes down: fix findings, then refresh with `cargo run -p \
                     crp-xtask -- lint --update-baseline`."
                        .to_string(),
                ),
            ),
            ("counts".to_string(), counts),
        ]);
        json::to_pretty(&doc)
    }

    /// Applies the ratchet: errors in buckets within their allowance
    /// are absorbed; buckets over their allowance keep all their
    /// findings so the report shows the whole bucket being ratcheted.
    pub fn apply(&self, diagnostics: Vec<Diagnostic>) -> RatchetOutcome {
        let current = error_counts(&diagnostics);
        let mut keys: Vec<&(String, String)> = self.counts.keys().chain(current.keys()).collect();
        keys.sort();
        keys.dedup();
        let rows: Vec<DeltaRow> = keys
            .into_iter()
            .map(|key| DeltaRow {
                rule: key.0.clone(),
                crate_name: key.1.clone(),
                baseline: self.counts.get(key).copied().unwrap_or(0),
                current: current.get(key).copied().unwrap_or(0),
            })
            .collect();
        let mut baselined = 0usize;
        let diagnostics = diagnostics
            .into_iter()
            .filter(|diag| {
                if diag.severity != Severity::Error {
                    return true;
                }
                let key = (diag.rule.to_string(), crate_of(&diag.file));
                let within = current.get(&key).copied().unwrap_or(0)
                    <= self.counts.get(&key).copied().unwrap_or(0);
                if within {
                    baselined += 1;
                }
                !within
            })
            .collect();
        RatchetOutcome {
            diagnostics,
            baselined,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(file: &str, rule: &'static str, severity: Severity) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line: 1,
            rule,
            severity,
            pattern: "p",
            message: "m",
            chain: String::new(),
        }
    }

    #[test]
    fn crate_names_match_baseline_keys() {
        assert_eq!(crate_of(Path::new("crates/core/src/ratio.rs")), "core");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "crp");
        assert_eq!(crate_of(Path::new("crates/cdn/src/bin/t.rs")), "cdn");
    }

    #[test]
    fn within_allowance_absorbs_errors() {
        let mut counts = BTreeMap::new();
        counts.insert(("CRP009".to_string(), "core".to_string()), 2);
        let baseline = Baseline::from_counts(counts);
        let diags = vec![
            diag("crates/core/src/ratio.rs", "CRP009", Severity::Error),
            diag("crates/core/src/select.rs", "CRP009", Severity::Error),
            diag("crates/core/src/ratio.rs", "CRP005", Severity::Warning),
        ];
        let outcome = baseline.apply(diags);
        assert!(!outcome.regressed());
        assert_eq!(outcome.baselined, 2);
        // The warning passes through untouched.
        assert_eq!(outcome.diagnostics.len(), 1);
        assert_eq!(outcome.diagnostics[0].severity, Severity::Warning);
    }

    #[test]
    fn over_allowance_reports_the_whole_bucket() {
        let mut counts = BTreeMap::new();
        counts.insert(("CRP009".to_string(), "core".to_string()), 1);
        let baseline = Baseline::from_counts(counts);
        let diags = vec![
            diag("crates/core/src/ratio.rs", "CRP009", Severity::Error),
            diag("crates/core/src/select.rs", "CRP009", Severity::Error),
        ];
        let outcome = baseline.apply(diags);
        assert!(outcome.regressed());
        assert_eq!(outcome.baselined, 0);
        assert_eq!(outcome.diagnostics.len(), 2);
    }

    #[test]
    fn unknown_bucket_with_zero_allowance_regresses() {
        let baseline = Baseline::default();
        let outcome = baseline.apply(vec![diag(
            "crates/cdn/src/cdn.rs",
            "CRP010",
            Severity::Error,
        )]);
        assert!(outcome.regressed());
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.rows[0].baseline, 0);
        assert_eq!(outcome.rows[0].current, 1);
    }

    #[test]
    fn improved_buckets_show_in_rows_but_do_not_fail() {
        let mut counts = BTreeMap::new();
        counts.insert(("CRP010".to_string(), "core".to_string()), 3);
        let baseline = Baseline::from_counts(counts);
        let outcome = baseline.apply(Vec::new());
        assert!(!outcome.regressed());
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.rows[0].current, 0);
    }

    #[test]
    fn serialization_round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert(("CRP009".to_string(), "core".to_string()), 5);
        counts.insert(("CRP010".to_string(), "cdn".to_string()), 2);
        counts.insert(("CRP010".to_string(), "core".to_string()), 7);
        let baseline = Baseline::from_counts(counts);
        let text = baseline.to_json();
        let reparsed = Baseline::parse(&text).expect("round-trips");
        assert_eq!(reparsed, baseline);
    }

    #[test]
    fn parse_rejects_schema_violations() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"counts": {"CRP009": 3}}"#).is_err());
        assert!(Baseline::parse(r#"{"counts": {"CRP009": {"core": -1}}}"#).is_err());
    }
}
