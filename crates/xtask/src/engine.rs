//! The scope pass and the token-level checks.
//!
//! [`ScopedFile`] annotates the significant (non-comment) tokens of one
//! file with the context a scope-aware rule needs: brace depth, the
//! stack of enclosing `fn` items, and whether the token sits inside a
//! `#[cfg(test)]` item. On top of that sit the generic
//! [`find_pattern_matches`] token-sequence matcher (the port target for
//! the substring rules) and the specialized detectors for
//! bracket-indexing (CRP010) and unordered `HashMap`/`HashSet`
//! iteration (CRP011).

use crate::lexer::{lex, Token, TokenKind};

/// A significant token plus its scope context.
#[derive(Clone, Debug)]
pub struct ScopedToken<'a> {
    /// The underlying token (never a comment).
    pub token: Token<'a>,
    /// Whether the token sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Index into [`ScopedFile::fns`] of the innermost enclosing `fn`,
    /// if any.
    pub fn_scope: Option<u32>,
}

/// One `fn` item discovered by the scope pass.
#[derive(Clone, Debug)]
pub struct FnScope<'a> {
    /// The function's name (`r#` prefix stripped).
    pub name: &'a str,
    /// Enclosing `fn`, for nested functions.
    pub parent: Option<u32>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body: `[open, close)` where `open` is
    /// the index of the `{` token and `close` the index of the matching
    /// `}` (or one past the last token for unterminated files). Tokens
    /// strictly between the bounds are the body.
    pub body: (u32, u32),
}

/// A file's significant tokens with scope annotations, plus the line
/// spans of its `#[cfg(test)]` regions.
pub struct ScopedFile<'a> {
    /// Non-comment tokens in source order.
    pub tokens: Vec<ScopedToken<'a>>,
    /// All `fn` items, in discovery order.
    pub fns: Vec<FnScope<'a>>,
    /// `(first_line, last_line)` of each `#[cfg(test)]` item body.
    pub test_line_spans: Vec<(u32, u32)>,
}

impl<'a> ScopedFile<'a> {
    /// Lexes `source` and runs the scope pass.
    pub fn parse(source: &'a str) -> Self {
        build_scopes(lex(source))
    }

    /// Whether the innermost-to-outermost `fn` chain of token `idx`
    /// contains a function named `name`.
    pub fn in_fn_named(&self, idx: usize, names: &[&str]) -> bool {
        let mut cur = self.tokens[idx].fn_scope;
        while let Some(i) = cur {
            let scope = &self.fns[i as usize];
            if names.contains(&scope.name) {
                return true;
            }
            cur = scope.parent;
        }
        false
    }

    /// Whether `line` (1-based) falls inside a `#[cfg(test)]` item.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.test_line_spans
            .iter()
            .any(|&(start, end)| line >= start && line <= end)
    }
}

/// What the scope builder is waiting to attach to the next `{`.
#[derive(Clone, Debug)]
enum Pending<'a> {
    Fn(&'a str, u32),
    CfgTest,
}

#[derive(Clone, Debug)]
enum ScopeEntry {
    Fn { id: u32, open_depth: u32 },
    CfgTest { open_depth: u32, start_line: u32 },
}

fn build_scopes(raw: Vec<Token<'_>>) -> ScopedFile<'_> {
    let sig: Vec<Token<'_>> = raw
        .into_iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();

    let mut tokens = Vec::with_capacity(sig.len());
    let mut fns: Vec<FnScope<'_>> = Vec::new();
    let mut test_line_spans = Vec::new();

    let mut stack: Vec<ScopeEntry> = Vec::new();
    let mut pending: Vec<Pending<'_>> = Vec::new();
    let mut brace_depth: u32 = 0;
    // Parens and brackets, tracked so a `;` inside `[u8; 4]` or a
    // signature's parameter list never cancels a pending item header.
    let mut group_depth: u32 = 0;

    let mut i = 0usize;
    while i < sig.len() {
        let tok = sig[i];
        let text = tok.text;
        match (tok.kind, text) {
            (TokenKind::Ident, "fn") => {
                // `fn name` starts an item header; a bare `fn` (function
                // pointer type `fn(i32) -> i32`) has no name and no body.
                if let Some(next) = sig.get(i + 1) {
                    if next.kind == TokenKind::Ident {
                        let name = next.text.strip_prefix("r#").unwrap_or(next.text);
                        pending.push(Pending::Fn(name, tok.line));
                    }
                }
            }
            (TokenKind::Punct, "#") => {
                // Attribute: detect exactly `#[cfg(test)]`; skip nothing
                // else — other attribute contents are harmless idents.
                if is_cfg_test_attr(&sig, i) {
                    pending.push(Pending::CfgTest);
                    i += 7; // '#' '[' 'cfg' '(' 'test' ')' ']'
                    continue;
                }
            }
            (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => group_depth += 1,
            (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                group_depth = group_depth.saturating_sub(1);
            }
            (TokenKind::Punct, ";") if group_depth == 0 => {
                // `mod tests;`, trait method declarations: the pending
                // header has no inline body after all.
                pending.clear();
            }
            (TokenKind::Punct, "{") => {
                brace_depth += 1;
                if group_depth == 0 && !pending.is_empty() {
                    for p in pending.drain(..) {
                        match p {
                            Pending::Fn(name, line) => {
                                let parent = innermost_fn(&stack);
                                let open = tokens.len() as u32;
                                fns.push(FnScope {
                                    name,
                                    parent,
                                    line,
                                    body: (open, u32::MAX),
                                });
                                stack.push(ScopeEntry::Fn {
                                    id: (fns.len() - 1) as u32,
                                    open_depth: brace_depth,
                                });
                            }
                            Pending::CfgTest => stack.push(ScopeEntry::CfgTest {
                                open_depth: brace_depth,
                                start_line: tok.line,
                            }),
                        }
                    }
                }
            }
            (TokenKind::Punct, "}") => {
                while let Some(entry) = stack.last() {
                    let open_depth = match entry {
                        ScopeEntry::Fn { open_depth, .. } => *open_depth,
                        ScopeEntry::CfgTest { open_depth, .. } => *open_depth,
                    };
                    if open_depth != brace_depth {
                        break;
                    }
                    match stack.pop() {
                        Some(ScopeEntry::CfgTest { start_line, .. }) => {
                            test_line_spans.push((start_line, tok.line));
                        }
                        Some(ScopeEntry::Fn { id, .. }) => {
                            fns[id as usize].body.1 = tokens.len() as u32;
                        }
                        None => {}
                    }
                }
                brace_depth = brace_depth.saturating_sub(1);
            }
            _ => {}
        }

        tokens.push(ScopedToken {
            token: tok,
            in_test: stack
                .iter()
                .any(|e| matches!(e, ScopeEntry::CfgTest { .. })),
            fn_scope: innermost_fn(&stack),
        });
        i += 1;
    }

    // Unterminated `#[cfg(test)]` regions and `fn` bodies (truncated
    // files) run to EOF.
    for entry in stack {
        match entry {
            ScopeEntry::CfgTest { start_line, .. } => {
                test_line_spans.push((start_line, u32::MAX));
            }
            ScopeEntry::Fn { id, .. } => {
                fns[id as usize].body.1 = tokens.len() as u32;
            }
        }
    }

    ScopedFile {
        tokens,
        fns,
        test_line_spans,
    }
}

fn innermost_fn(stack: &[ScopeEntry]) -> Option<u32> {
    stack.iter().rev().find_map(|e| match e {
        ScopeEntry::Fn { id, .. } => Some(*id),
        ScopeEntry::CfgTest { .. } => None,
    })
}

/// Whether tokens starting at `i` spell exactly `#[cfg(test)]`.
fn is_cfg_test_attr(sig: &[Token<'_>], i: usize) -> bool {
    const WANT: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    sig.len() >= i + WANT.len() && WANT.iter().enumerate().all(|(k, w)| sig[i + k].text == *w)
}

/// Lexes a pattern string into its significant token texts. Patterns
/// and sources go through the same lexer, so matching is exact.
pub fn pattern_tokens(pattern: &str) -> Vec<&str> {
    lex(pattern)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .map(|t| t.text)
        .collect()
}

/// Returns the token indices where `pattern` matches the scoped token
/// stream: consecutive significant tokens whose texts equal the
/// pattern's token texts. With `prefix_last`, the final pattern token
/// matches any token that *starts with* it — the hook for rules like
/// `explain::record_` whose tail names a function family. An empty
/// pattern never matches.
pub fn find_pattern_matches(
    file: &ScopedFile<'_>,
    pattern: &[&str],
    prefix_last: bool,
) -> Vec<usize> {
    let mut out = Vec::new();
    if pattern.is_empty() || file.tokens.len() < pattern.len() {
        return out;
    }
    let last = pattern.len() - 1;
    for i in 0..=(file.tokens.len() - pattern.len()) {
        if pattern.iter().enumerate().all(|(k, p)| {
            let text = file.tokens[i + k].token.text;
            if prefix_last && k == last {
                text.starts_with(p)
            } else {
                text == *p
            }
        }) {
            out.push(i);
        }
    }
    out
}

/// Keywords that may legitimately precede a `[` without the bracket
/// being a panicking index expression (slice patterns, array types,
/// `for x in [..]`, …).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move", "for",
    "while", "loop", "where", "as", "dyn", "impl", "fn", "pub", "use", "box", "static", "const",
    "type", "enum", "struct", "trait", "union", "unsafe", "extern", "crate", "mod",
];

/// Token indices of `[` brackets that look like panicking index or
/// slice expressions: the bracket directly follows an identifier (that
/// is not a statement keyword), a `)`, a `]`, or a `?`. Attributes
/// (`#[…]`), macro brackets (`vec![…]`), array types (`: [u8; 4]`), and
/// slice patterns (`let [a, b] = …`) all fail that test.
pub fn find_index_exprs(file: &ScopedFile<'_>) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 1..file.tokens.len() {
        if file.tokens[i].token.text != "[" {
            continue;
        }
        let prev = &file.tokens[i - 1].token;
        let indexes = match prev.kind {
            TokenKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev.text),
            TokenKind::Punct => matches!(prev.text, ")" | "]" | "?"),
            _ => false,
        };
        if indexes {
            out.push(i);
        }
    }
    out
}

/// Methods whose call on a hash container leaks iteration order.
const ITER_SINKS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Tokens whose presence in the same statement (or a trailing `sort` in
/// the next) makes hash-order iteration deterministic or irrelevant:
/// the stream is re-ordered, collected into an ordered container, or
/// consumed by an order-insensitive reducer.
const ORDER_SAFE: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "is_empty",
    "any",
    "all",
    "contains",
    "contains_key",
];

/// Token indices where a `HashMap`/`HashSet` binding is iterated
/// without an ordering step (CRP011's core heuristic).
///
/// Hash-typed names are collected file-wide from `name: HashMap<…>`
/// annotations (fields, params, lets) and `name = HashMap::new()`-style
/// initializations; a name is then flagged where `name.iter()` /
/// `.keys()` / `.values()` / … is called or where a `for … in name {`
/// loop consumes it, unless the statement also mentions an
/// order-restoring token (`sort*`, `BTreeMap`, `BTreeSet`, …) or the
/// *next* statement sorts what was just collected.
pub fn find_unordered_iterations(file: &ScopedFile<'_>) -> Vec<usize> {
    let toks = &file.tokens;
    let text = |i: usize| toks[i].token.text;

    // Pass 1: names with hash-container types.
    let mut hash_names: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if !matches!(text(i), "HashMap" | "HashSet") {
            continue;
        }
        // `name : [&] [mut] HashMap` — field, parameter, or let type.
        let mut j = i;
        while j > 0 && matches!(text(j - 1), "&" | "mut" | "'") {
            j -= 1;
        }
        if j >= 2 && text(j - 1) == ":" && toks[j - 2].token.kind == TokenKind::Ident {
            hash_names.push(text(j - 2));
            continue;
        }
        // `name = HashMap::new()` / `::with_capacity` / `::from`.
        if i >= 2 && text(i - 1) == "=" && toks[i - 2].token.kind == TokenKind::Ident {
            hash_names.push(text(i - 2));
        }
    }
    if hash_names.is_empty() {
        return Vec::new();
    }

    // Pass 2: iteration sinks on those names.
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].token.kind != TokenKind::Ident || !hash_names.contains(&text(i)) {
            continue;
        }
        // `name.iter()` and friends.
        let method_sink = i + 2 < toks.len()
            && text(i + 1) == "."
            && ITER_SINKS.contains(&text(i + 2))
            && toks.get(i + 3).is_some_and(|t| t.token.text == "(");
        // `for pat in name {` / `for pat in &name {`.
        let for_sink = {
            let mut j = i;
            if j > 0 && text(j - 1) == "&" {
                j -= 1;
            }
            j > 0 && text(j - 1) == "in" && toks.get(i + 1).is_some_and(|t| t.token.text == "{")
        };
        if (method_sink || for_sink) && !escapes_order(toks, i) {
            out.push(i);
        }
    }
    out
}

/// Whether the statement containing token `i` (scanned forward to the
/// first `;` or block brace) mentions an order-safe token, or the
/// statement directly after it starts a `sort`.
fn escapes_order(toks: &[ScopedToken<'_>], i: usize) -> bool {
    let mut j = i;
    while j < toks.len() {
        let t = toks[j].token.text;
        if t == ";" || t == "{" {
            break;
        }
        if ORDER_SAFE.contains(&t) {
            return true;
        }
        j += 1;
    }
    // Collected into a local, sorted on the next line:
    // `let mut v: Vec<_> = m.keys().collect(); v.sort();`
    if toks.get(j).is_some_and(|t| t.token.text == ";") {
        let mut k = j + 1;
        while k < toks.len() {
            let t = toks[k].token.text;
            if t == ";" || t == "{" || t == "}" {
                break;
            }
            if t.starts_with("sort") {
                return true;
            }
            k += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_scopes_are_tracked() {
        let src =
            "fn outer() { inner_call(); fn nested() { deep(); } tail(); }\nfn other() { x(); }";
        let file = ScopedFile::parse(src);
        let at = |name: &str| {
            file.tokens
                .iter()
                .position(|t| t.token.text == name)
                .expect("token present")
        };
        assert!(file.in_fn_named(at("inner_call"), &["outer"]));
        assert!(!file.in_fn_named(at("inner_call"), &["other"]));
        // Nested fn: both the nested and outer names are on the chain.
        assert!(file.in_fn_named(at("deep"), &["nested"]));
        assert!(file.in_fn_named(at("deep"), &["outer"]));
        assert!(file.in_fn_named(at("tail"), &["outer"]));
        assert!(!file.in_fn_named(at("tail"), &["nested"]));
        assert!(file.in_fn_named(at("x"), &["other"]));
    }

    #[test]
    fn fn_spans_record_decl_line_and_body_range() {
        let src = "fn a() {\n    one();\n}\nfn b() { two(); }";
        let file = ScopedFile::parse(src);
        assert_eq!(file.fns.len(), 2);
        let a = &file.fns[0];
        assert_eq!(a.line, 1);
        assert_eq!(file.tokens[a.body.0 as usize].token.text, "{");
        assert_eq!(file.tokens[a.body.1 as usize].token.text, "}");
        let one = file
            .tokens
            .iter()
            .position(|t| t.token.text == "one")
            .expect("token present") as u32;
        assert!(a.body.0 < one && one < a.body.1);
        let b = &file.fns[1];
        assert_eq!(b.line, 4);
        let two = file
            .tokens
            .iter()
            .position(|t| t.token.text == "two")
            .expect("token present") as u32;
        assert!(b.body.0 < two && two < b.body.1);
        assert!(one < b.body.0 || one > b.body.1);
    }

    #[test]
    fn unterminated_fn_body_runs_to_eof() {
        let file = ScopedFile::parse("fn a() {\n    one();\n");
        assert_eq!(file.fns.len(), 1);
        assert_eq!(file.fns[0].body.1 as usize, file.tokens.len());
    }

    #[test]
    fn signature_semicolons_do_not_cancel_headers() {
        // The `;` inside `[u8; 4]` sits at bracket depth 1 and must not
        // cancel the pending `fn` header.
        let src = "fn takes_array(x: [u8; 4]) { body(); }";
        let file = ScopedFile::parse(src);
        let at = file
            .tokens
            .iter()
            .position(|t| t.token.text == "body")
            .expect("token present");
        assert!(file.in_fn_named(at, &["takes_array"]));
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u32; }\nfn real() { work(); }";
        let file = ScopedFile::parse(src);
        let at = file
            .tokens
            .iter()
            .position(|t| t.token.text == "work")
            .expect("token present");
        assert!(file.in_fn_named(at, &["real"]));
        assert!(!file.in_fn_named(at, &["decl"]));
    }

    #[test]
    fn cfg_test_regions_cover_their_items() {
        let src = "fn lib() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\nfn after() { c(); }";
        let file = ScopedFile::parse(src);
        let tok = |name: &str| {
            file.tokens
                .iter()
                .find(|t| t.token.text == name)
                .expect("token present")
        };
        assert!(!tok("a").in_test);
        assert!(tok("b").in_test);
        assert!(!tok("c").in_test);
        assert!(file.line_in_test(4));
        assert!(!file.line_in_test(1));
    }

    #[test]
    fn out_of_line_test_mod_declares_no_region() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { a(); }";
        let file = ScopedFile::parse(src);
        assert!(file.test_line_spans.is_empty());
        assert!(!file.tokens.iter().any(|t| t.in_test));
    }

    #[test]
    fn cfg_test_on_single_fn() {
        let src = "#[cfg(test)]\nfn helper() { h(); }\nfn lib() { a(); }";
        let file = ScopedFile::parse(src);
        let tok = |name: &str| {
            file.tokens
                .iter()
                .find(|t| t.token.text == name)
                .expect("token present")
        };
        assert!(tok("h").in_test);
        assert!(!tok("a").in_test);
    }

    #[test]
    fn raw_ident_fn_name_is_stripped() {
        let src = "fn r#loop() { spin(); }";
        let file = ScopedFile::parse(src);
        let at = file
            .tokens
            .iter()
            .position(|t| t.token.text == "spin")
            .expect("token present");
        assert!(file.in_fn_named(at, &["loop"]));
    }

    #[test]
    fn pattern_matching_is_token_exact() {
        let file = ScopedFile::parse("a.unwrap(); b.unwrap_or(0); c . unwrap ( ) ;");
        let pat = pattern_tokens(".unwrap()");
        assert_eq!(pat, vec![".", "unwrap", "(", ")"]);
        let hits = find_pattern_matches(&file, &pat, false);
        // Matches the tight and the spaced call, never `unwrap_or`.
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn pattern_matching_ignores_strings_and_comments() {
        let file = ScopedFile::parse("// x.unwrap()\nlet s = \".unwrap()\";\n");
        assert!(find_pattern_matches(&file, &pattern_tokens(".unwrap()"), false).is_empty());
    }

    #[test]
    fn prefix_last_matches_ident_families() {
        let file = ScopedFile::parse("explain::record_ranking(&e); explain::recorder();");
        let pat = pattern_tokens("explain::record_");
        assert_eq!(find_pattern_matches(&file, &pat, true).len(), 1);
        assert!(find_pattern_matches(&file, &pat, false).is_empty());
    }

    #[test]
    fn index_exprs_detected_and_types_excluded() {
        let file = ScopedFile::parse(
            "fn f(xs: &[u8], m: &M) -> [u8; 2] {\n    let [a, b] = [xs[0], m.get(1)?[0]];\n    #[allow(dead_code)]\n    let v = vec![1];\n    [a, b]\n}",
        );
        let hits = find_index_exprs(&file);
        // xs[0] and ?[0] — not the types, patterns, attribute, vec!, or
        // the array literals.
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn unordered_hashmap_iteration_flagged() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0;\n    for (_k, v) in m.iter() { acc += v; }\n    acc\n}";
        let file = ScopedFile::parse(src);
        assert_eq!(find_unordered_iterations(&file).len(), 1);
    }

    #[test]
    fn for_loop_over_borrowed_map_flagged() {
        let src = "fn f(m: &HashMap<u32, f64>) {\n    for v in &m { use_it(v); }\n}";
        let file = ScopedFile::parse(src);
        assert_eq!(find_unordered_iterations(&file).len(), 1);
    }

    #[test]
    fn btree_collect_escapes() {
        let src = "fn f(m: &HashMap<u32, f64>) -> BTreeSet<u32> {\n    m.keys().copied().collect::<BTreeSet<u32>>()\n}";
        let file = ScopedFile::parse(src);
        assert!(find_unordered_iterations(&file).is_empty());
    }

    #[test]
    fn next_statement_sort_escapes() {
        let src = "fn f(m: &HashMap<u32, f64>) -> Vec<u32> {\n    let mut ks: Vec<u32> = m.keys().copied().collect();\n    ks.sort();\n    ks\n}";
        let file = ScopedFile::parse(src);
        assert!(find_unordered_iterations(&file).is_empty());
    }

    #[test]
    fn hashmap_new_binding_is_tracked() {
        let src = "fn f() {\n    let mut m = HashMap::new();\n    m.insert(1, 2);\n    for k in m.keys() { go(k); }\n}";
        let file = ScopedFile::parse(src);
        assert_eq!(find_unordered_iterations(&file).len(), 1);
    }

    #[test]
    fn order_insensitive_reducers_escape() {
        let src = "fn f(m: &HashMap<u32, f64>) -> usize {\n    m.keys().count()\n}";
        let file = ScopedFile::parse(src);
        assert!(find_unordered_iterations(&file).is_empty());
    }

    #[test]
    fn non_hash_containers_are_ignored() {
        let src = "fn f(m: &BTreeMap<u32, f64>) -> f64 {\n    m.values().sum()\n}";
        let file = ScopedFile::parse(src);
        assert!(find_unordered_iterations(&file).is_empty());
    }
}
