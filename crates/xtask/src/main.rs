//! `crp-xtask` — workspace automation CLI.
//!
//! Usage:
//!
//! ```text
//! cargo run -p crp-xtask -- lint [--root <dir>] [--warn <RULE>]... [--quiet]
//!                               [--json <path>] [--baseline <path>]
//!                               [--no-baseline] [--update-baseline]
//!                               [--graph [<path>]] [--max-unresolved <frac>]
//! cargo run -p crp-xtask -- rules
//! ```
//!
//! `lint` exits nonzero when any error-severity finding remains after
//! the baseline ratchet; `--warn CRP00x` demotes a rule to warning for
//! the run. Without `--baseline`, `<root>/LINT_BASELINE.json` is used
//! when it exists; `--no-baseline` forces strict mode (every error
//! fails); `--update-baseline` rewrites the baseline to the current
//! counts and exits green. `--graph` exports the interprocedural call
//! graph (nodes, edges, the unresolved bucket, and every CRP014–016
//! chain) to `<root>/results/callgraph.json` or an explicit path;
//! `--max-unresolved` fails the run when the unresolved-call fraction
//! exceeds the given threshold.

use crp_xtask::baseline::{error_counts, Baseline, DeltaRow};
use crp_xtask::json::Value;
use crp_xtask::{lint_root_report, Diagnostic, GraphReport, Severity, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("rules") => {
            for rule in RULES {
                println!("{} [{}] {}", rule.id, rule.severity, rule.message);
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: crp-xtask lint [--root <dir>] [--warn <RULE>]... [--quiet] \
         [--json <path>] [--baseline <path>] [--no-baseline] [--update-baseline] \
         [--graph [<path>]] [--max-unresolved <frac>]"
    );
    eprintln!("       crp-xtask rules");
}

struct LintOptions {
    root: PathBuf,
    demoted: Vec<String>,
    quiet: bool,
    json_path: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
    graph: bool,
    graph_path: Option<PathBuf>,
    max_unresolved: Option<f64>,
}

fn parse_lint_args(args: &[String]) -> Result<LintOptions, String> {
    let mut opts = LintOptions {
        root: PathBuf::from("."),
        demoted: Vec::new(),
        quiet: false,
        json_path: None,
        baseline_path: None,
        no_baseline: false,
        update_baseline: false,
        graph: false,
        graph_path: None,
        max_unresolved: None,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root requires a directory".to_string()),
            },
            "--warn" => match it.next() {
                Some(rule) => opts.demoted.push(rule.clone()),
                None => return Err("--warn requires a rule ID".to_string()),
            },
            "--json" => match it.next() {
                Some(path) => opts.json_path = Some(PathBuf::from(path)),
                None => return Err("--json requires a file path".to_string()),
            },
            "--baseline" => match it.next() {
                Some(path) => opts.baseline_path = Some(PathBuf::from(path)),
                None => return Err("--baseline requires a file path".to_string()),
            },
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--graph" => {
                opts.graph = true;
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        opts.graph_path = Some(PathBuf::from(it.next().unwrap()));
                    }
                }
            }
            "--max-unresolved" => match it.next().map(|s| s.parse::<f64>()) {
                Some(Ok(frac)) if (0.0..=1.0).contains(&frac) => {
                    opts.max_unresolved = Some(frac);
                }
                _ => return Err("--max-unresolved requires a fraction in [0, 1]".to_string()),
            },
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    Ok(opts)
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut opts = match parse_lint_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // When invoked via `cargo run -p crp-xtask`, the working directory
    // is already the workspace root; CARGO_MANIFEST_DIR lets the tool
    // also work from anywhere inside the tree.
    if opts.root == PathBuf::from(".") {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest);
            if let Some(ws) = candidate.parent().and_then(|p| p.parent()) {
                if ws.join("Cargo.toml").is_file() {
                    opts.root = ws.to_path_buf();
                }
            }
        }
    }

    let report = match lint_root_report(&opts.root, &opts.demoted) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint failed to read {}: {e}", opts.root.display());
            return ExitCode::FAILURE;
        }
    };
    let diagnostics = report.diagnostics;
    let graph = report.graph;

    if opts.graph {
        let graph_path = opts
            .graph_path
            .clone()
            .unwrap_or_else(|| opts.root.join("results").join("callgraph.json"));
        if let Some(parent) = graph_path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = write_graph_json(&graph_path, &graph, &diagnostics) {
            eprintln!("cannot write {}: {e}", graph_path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            println!(
                "crp-xtask lint: call graph at {} ({} node(s), {} edge(s), \
                 {} unresolved, fraction {:.4})",
                graph_path.display(),
                graph.nodes.len(),
                graph.edges.len(),
                graph.unresolved.len(),
                graph.unresolved_fraction
            );
        }
    }

    if let Some(max) = opts.max_unresolved {
        if graph.unresolved_fraction > max {
            eprintln!(
                "crp-xtask lint: unresolved-call fraction {:.4} exceeds --max-unresolved {max}",
                graph.unresolved_fraction
            );
            return ExitCode::FAILURE;
        }
    }

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("LINT_BASELINE.json"));

    if opts.update_baseline {
        let baseline = Baseline::from_counts(error_counts(&diagnostics));
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        let total: u64 = error_counts(&diagnostics).values().sum();
        println!(
            "crp-xtask lint: baseline updated at {} ({total} error allowance(s) \
             across {} bucket(s))",
            baseline_path.display(),
            error_counts(&diagnostics).len()
        );
        if let Some(json_path) = &opts.json_path {
            if let Err(e) = write_json_report(json_path, &opts.root, &diagnostics, &[], 0) {
                eprintln!("cannot write {}: {e}", json_path.display());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        None
    } else {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lint baseline error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (remaining, rows, baselined) = match &baseline {
        Some(b) => {
            let outcome = b.apply(diagnostics.clone());
            (outcome.diagnostics, outcome.rows, outcome.baselined)
        }
        None => (diagnostics.clone(), Vec::new(), 0),
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for diag in &remaining {
        match diag.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        if !opts.quiet {
            println!("{diag}");
        }
    }
    if !opts.quiet && !rows.is_empty() {
        print_delta_table(&rows);
    }

    if let Some(json_path) = &opts.json_path {
        if let Err(e) = write_json_report(json_path, &opts.root, &diagnostics, &rows, baselined) {
            eprintln!("cannot write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
    }

    let baselined_note = if baselined > 0 {
        format!(" ({baselined} baselined)")
    } else {
        String::new()
    };
    println!(
        "crp-xtask lint: {errors} error(s), {warnings} warning(s) in {}{baselined_note}",
        opts.root.display()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the per-rule/per-crate ratchet comparison, `bench_check`
/// style: one row per bucket, regressions marked.
fn print_delta_table(rows: &[DeltaRow]) {
    println!("lint ratchet (baseline -> current):");
    for row in rows {
        let status = if row.regressed() {
            "REGRESSED"
        } else if row.current < row.baseline {
            "improved (refresh baseline to lock in)"
        } else {
            "at baseline"
        };
        println!(
            "  {:<7} {:<10} {:>3} -> {:<3} {status}",
            row.rule, row.crate_name, row.baseline, row.current
        );
    }
}

/// Writes the machine-readable diagnostics report. All findings appear
/// (including ones the ratchet absorbed) so downstream tooling sees the
/// full picture; `baselined` marks the absorbed ones.
fn write_json_report(
    path: &Path,
    root: &Path,
    diagnostics: &[Diagnostic],
    rows: &[DeltaRow],
    baselined_total: usize,
) -> std::io::Result<()> {
    // Recompute which buckets are within allowance to tag diagnostics.
    let over: Vec<(&str, &str)> = rows
        .iter()
        .filter(|r| r.regressed())
        .map(|r| (r.rule.as_str(), r.crate_name.as_str()))
        .collect();
    let has_baseline = !rows.is_empty();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let diags: Vec<Value> = diagnostics
        .iter()
        .map(|d| {
            let crate_name = crp_xtask::baseline::crate_of(&d.file);
            let absorbed = has_baseline
                && d.severity == Severity::Error
                && !over.contains(&(d.rule, crate_name.as_str()));
            match d.severity {
                Severity::Error if !absorbed => errors += 1,
                Severity::Warning => warnings += 1,
                _ => {}
            }
            Value::Obj(vec![
                (
                    "file".to_string(),
                    Value::Str(d.file.to_string_lossy().replace('\\', "/")),
                ),
                ("line".to_string(), Value::Num(d.line as f64)),
                ("rule".to_string(), Value::Str(d.rule.to_string())),
                ("crate".to_string(), Value::Str(crate_name)),
                ("severity".to_string(), Value::Str(d.severity.to_string())),
                ("pattern".to_string(), Value::Str(d.pattern.to_string())),
                ("message".to_string(), Value::Str(d.message.to_string())),
                ("chain".to_string(), Value::Str(d.chain.clone())),
                ("baselined".to_string(), Value::Bool(absorbed)),
            ])
        })
        .collect();

    let ratchet: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("rule".to_string(), Value::Str(r.rule.clone())),
                ("crate".to_string(), Value::Str(r.crate_name.clone())),
                ("baseline".to_string(), Value::Num(r.baseline as f64)),
                ("current".to_string(), Value::Num(r.current as f64)),
                ("regressed".to_string(), Value::Bool(r.regressed())),
            ])
        })
        .collect();

    let report = Value::Obj(vec![
        (
            "root".to_string(),
            Value::Str(root.to_string_lossy().replace('\\', "/")),
        ),
        ("errors".to_string(), Value::Num(errors as f64)),
        ("warnings".to_string(), Value::Num(warnings as f64)),
        ("baselined".to_string(), Value::Num(baselined_total as f64)),
        ("diagnostics".to_string(), Value::Arr(diags)),
        ("ratchet".to_string(), Value::Arr(ratchet)),
    ]);
    std::fs::write(path, crp_xtask::json::to_pretty(&report))
}

/// Writes the interprocedural call graph: every node and resolved edge,
/// the unresolved bucket (reported, never silently dropped), and each
/// CRP014–016 chain — including ones the baseline ratchet absorbed, so
/// downstream tooling sees the full reachability picture.
fn write_graph_json(
    path: &Path,
    graph: &GraphReport,
    diagnostics: &[Diagnostic],
) -> std::io::Result<()> {
    let nodes: Vec<Value> = graph
        .nodes
        .iter()
        .map(|n| {
            Value::Obj(vec![
                ("name".to_string(), Value::Str(n.name.clone())),
                ("file".to_string(), Value::Str(n.file.clone())),
                ("line".to_string(), Value::Num(n.line as f64)),
            ])
        })
        .collect();
    let edges: Vec<Value> = graph
        .edges
        .iter()
        .map(|e| {
            Value::Obj(vec![
                ("caller".to_string(), Value::Num(e.caller as f64)),
                ("callee".to_string(), Value::Num(e.callee as f64)),
                ("file".to_string(), Value::Str(e.file.clone())),
                ("line".to_string(), Value::Num(e.line as f64)),
                ("name".to_string(), Value::Str(e.name.clone())),
            ])
        })
        .collect();
    let unresolved: Vec<Value> = graph
        .unresolved
        .iter()
        .map(|u| {
            Value::Obj(vec![
                ("file".to_string(), Value::Str(u.file.clone())),
                ("line".to_string(), Value::Num(u.line as f64)),
                ("name".to_string(), Value::Str(u.name.clone())),
                (
                    "receiver".to_string(),
                    match &u.receiver {
                        Some(r) => Value::Str(r.clone()),
                        None => Value::Null,
                    },
                ),
            ])
        })
        .collect();
    let chains: Vec<Value> = diagnostics
        .iter()
        .filter(|d| !d.chain.is_empty())
        .map(|d| {
            Value::Obj(vec![
                ("rule".to_string(), Value::Str(d.rule.to_string())),
                (
                    "file".to_string(),
                    Value::Str(d.file.to_string_lossy().replace('\\', "/")),
                ),
                ("line".to_string(), Value::Num(d.line as f64)),
                ("chain".to_string(), Value::Str(d.chain.clone())),
            ])
        })
        .collect();
    let report = Value::Obj(vec![
        ("nodes".to_string(), Value::Arr(nodes)),
        ("edges".to_string(), Value::Arr(edges)),
        ("unresolved".to_string(), Value::Arr(unresolved)),
        (
            "resolved_calls".to_string(),
            Value::Num(graph.resolved_calls as f64),
        ),
        ("std_calls".to_string(), Value::Num(graph.std_calls as f64)),
        (
            "unresolved_fraction".to_string(),
            Value::Num(graph.unresolved_fraction),
        ),
        ("chains".to_string(), Value::Arr(chains)),
    ]);
    std::fs::write(path, crp_xtask::json::to_pretty(&report))
}
