//! `crp-xtask` — workspace automation CLI.
//!
//! Usage:
//!
//! ```text
//! cargo run -p crp-xtask -- lint [--root <dir>] [--warn <RULE>]... [--quiet]
//! cargo run -p crp-xtask -- rules
//! ```
//!
//! `lint` exits nonzero when any error-severity finding remains;
//! `--warn CRP00x` demotes a rule to warning for the run.

use crp_xtask::{lint_root, Severity, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("rules") => {
            for rule in RULES {
                println!("{} [{}] {}", rule.id, rule.severity, rule.message);
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: crp-xtask lint [--root <dir>] [--warn <RULE>]... [--quiet]");
    eprintln!("       crp-xtask rules");
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut demoted: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--warn" => match it.next() {
                Some(rule) => demoted.push(rule.clone()),
                None => {
                    eprintln!("--warn requires a rule ID");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run -p crp-xtask`, the working directory
    // is already the workspace root; CARGO_MANIFEST_DIR lets the tool
    // also work from anywhere inside the tree.
    if root == PathBuf::from(".") {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest);
            if let Some(ws) = candidate.parent().and_then(|p| p.parent()) {
                if ws.join("Cargo.toml").is_file() {
                    root = ws.to_path_buf();
                }
            }
        }
    }

    let diagnostics = match lint_root(&root, &demoted) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint failed to read {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for diag in &diagnostics {
        match diag.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        if !quiet {
            println!("{diag}");
        }
    }
    println!(
        "crp-xtask lint: {errors} error(s), {warnings} warning(s) in {}",
        root.display()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
