//! `crp-xtask` — workspace automation CLI.
//!
//! Usage:
//!
//! ```text
//! cargo run -p crp-xtask -- lint [--root <dir>] [--warn <RULE>]... [--quiet]
//!                               [--json <path>] [--baseline <path>]
//!                               [--no-baseline] [--update-baseline]
//! cargo run -p crp-xtask -- rules
//! ```
//!
//! `lint` exits nonzero when any error-severity finding remains after
//! the baseline ratchet; `--warn CRP00x` demotes a rule to warning for
//! the run. Without `--baseline`, `<root>/LINT_BASELINE.json` is used
//! when it exists; `--no-baseline` forces strict mode (every error
//! fails); `--update-baseline` rewrites the baseline to the current
//! counts and exits green.

use crp_xtask::baseline::{error_counts, Baseline, DeltaRow};
use crp_xtask::json::Value;
use crp_xtask::{lint_root, Diagnostic, Severity, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("rules") => {
            for rule in RULES {
                println!("{} [{}] {}", rule.id, rule.severity, rule.message);
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: crp-xtask lint [--root <dir>] [--warn <RULE>]... [--quiet] \
         [--json <path>] [--baseline <path>] [--no-baseline] [--update-baseline]"
    );
    eprintln!("       crp-xtask rules");
}

struct LintOptions {
    root: PathBuf,
    demoted: Vec<String>,
    quiet: bool,
    json_path: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintOptions, String> {
    let mut opts = LintOptions {
        root: PathBuf::from("."),
        demoted: Vec::new(),
        quiet: false,
        json_path: None,
        baseline_path: None,
        no_baseline: false,
        update_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root requires a directory".to_string()),
            },
            "--warn" => match it.next() {
                Some(rule) => opts.demoted.push(rule.clone()),
                None => return Err("--warn requires a rule ID".to_string()),
            },
            "--json" => match it.next() {
                Some(path) => opts.json_path = Some(PathBuf::from(path)),
                None => return Err("--json requires a file path".to_string()),
            },
            "--baseline" => match it.next() {
                Some(path) => opts.baseline_path = Some(PathBuf::from(path)),
                None => return Err("--baseline requires a file path".to_string()),
            },
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    Ok(opts)
}

fn lint_command(args: &[String]) -> ExitCode {
    let mut opts = match parse_lint_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // When invoked via `cargo run -p crp-xtask`, the working directory
    // is already the workspace root; CARGO_MANIFEST_DIR lets the tool
    // also work from anywhere inside the tree.
    if opts.root == PathBuf::from(".") {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest);
            if let Some(ws) = candidate.parent().and_then(|p| p.parent()) {
                if ws.join("Cargo.toml").is_file() {
                    opts.root = ws.to_path_buf();
                }
            }
        }
    }

    let diagnostics = match lint_root(&opts.root, &opts.demoted) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint failed to read {}: {e}", opts.root.display());
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("LINT_BASELINE.json"));

    if opts.update_baseline {
        let baseline = Baseline::from_counts(error_counts(&diagnostics));
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        let total: u64 = error_counts(&diagnostics).values().sum();
        println!(
            "crp-xtask lint: baseline updated at {} ({total} error allowance(s) \
             across {} bucket(s))",
            baseline_path.display(),
            error_counts(&diagnostics).len()
        );
        if let Some(json_path) = &opts.json_path {
            if let Err(e) = write_json_report(json_path, &opts.root, &diagnostics, &[], 0) {
                eprintln!("cannot write {}: {e}", json_path.display());
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        None
    } else {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lint baseline error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let (remaining, rows, baselined) = match &baseline {
        Some(b) => {
            let outcome = b.apply(diagnostics.clone());
            (outcome.diagnostics, outcome.rows, outcome.baselined)
        }
        None => (diagnostics.clone(), Vec::new(), 0),
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for diag in &remaining {
        match diag.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        if !opts.quiet {
            println!("{diag}");
        }
    }
    if !opts.quiet && !rows.is_empty() {
        print_delta_table(&rows);
    }

    if let Some(json_path) = &opts.json_path {
        if let Err(e) = write_json_report(json_path, &opts.root, &diagnostics, &rows, baselined) {
            eprintln!("cannot write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
    }

    let baselined_note = if baselined > 0 {
        format!(" ({baselined} baselined)")
    } else {
        String::new()
    };
    println!(
        "crp-xtask lint: {errors} error(s), {warnings} warning(s) in {}{baselined_note}",
        opts.root.display()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the per-rule/per-crate ratchet comparison, `bench_check`
/// style: one row per bucket, regressions marked.
fn print_delta_table(rows: &[DeltaRow]) {
    println!("lint ratchet (baseline -> current):");
    for row in rows {
        let status = if row.regressed() {
            "REGRESSED"
        } else if row.current < row.baseline {
            "improved (refresh baseline to lock in)"
        } else {
            "at baseline"
        };
        println!(
            "  {:<7} {:<10} {:>3} -> {:<3} {status}",
            row.rule, row.crate_name, row.baseline, row.current
        );
    }
}

/// Writes the machine-readable diagnostics report. All findings appear
/// (including ones the ratchet absorbed) so downstream tooling sees the
/// full picture; `baselined` marks the absorbed ones.
fn write_json_report(
    path: &Path,
    root: &Path,
    diagnostics: &[Diagnostic],
    rows: &[DeltaRow],
    baselined_total: usize,
) -> std::io::Result<()> {
    // Recompute which buckets are within allowance to tag diagnostics.
    let over: Vec<(&str, &str)> = rows
        .iter()
        .filter(|r| r.regressed())
        .map(|r| (r.rule.as_str(), r.crate_name.as_str()))
        .collect();
    let has_baseline = !rows.is_empty();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let diags: Vec<Value> = diagnostics
        .iter()
        .map(|d| {
            let crate_name = crp_xtask::baseline::crate_of(&d.file);
            let absorbed = has_baseline
                && d.severity == Severity::Error
                && !over.contains(&(d.rule, crate_name.as_str()));
            match d.severity {
                Severity::Error if !absorbed => errors += 1,
                Severity::Warning => warnings += 1,
                _ => {}
            }
            Value::Obj(vec![
                (
                    "file".to_string(),
                    Value::Str(d.file.to_string_lossy().replace('\\', "/")),
                ),
                ("line".to_string(), Value::Num(d.line as f64)),
                ("rule".to_string(), Value::Str(d.rule.to_string())),
                ("crate".to_string(), Value::Str(crate_name)),
                ("severity".to_string(), Value::Str(d.severity.to_string())),
                ("pattern".to_string(), Value::Str(d.pattern.to_string())),
                ("message".to_string(), Value::Str(d.message.to_string())),
                ("baselined".to_string(), Value::Bool(absorbed)),
            ])
        })
        .collect();

    let ratchet: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("rule".to_string(), Value::Str(r.rule.clone())),
                ("crate".to_string(), Value::Str(r.crate_name.clone())),
                ("baseline".to_string(), Value::Num(r.baseline as f64)),
                ("current".to_string(), Value::Num(r.current as f64)),
                ("regressed".to_string(), Value::Bool(r.regressed())),
            ])
        })
        .collect();

    let report = Value::Obj(vec![
        (
            "root".to_string(),
            Value::Str(root.to_string_lossy().replace('\\', "/")),
        ),
        ("errors".to_string(), Value::Num(errors as f64)),
        ("warnings".to_string(), Value::Num(warnings as f64)),
        ("baselined".to_string(), Value::Num(baselined_total as f64)),
        ("diagnostics".to_string(), Value::Arr(diags)),
        ("ratchet".to_string(), Value::Arr(ratchet)),
    ]);
    std::fs::write(path, crp_xtask::json::to_pretty(&report))
}
