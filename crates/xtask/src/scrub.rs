//! Comment and string-literal scrubbing.
//!
//! The lint rules are substring patterns, so they must not fire on
//! occurrences inside comments, doc comments, or string literals (the
//! linter's own source would otherwise flag itself). [`scrub`] replaces
//! the *contents* of comments and string/char literals with spaces while
//! preserving every newline and byte offset, so line numbers computed on
//! the scrubbed text match the original file.

/// Returns `source` with comment and string/char-literal contents
/// blanked to spaces. Newlines are preserved, so the result has the
/// same line structure as the input.
pub fn scrub(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                i = blank_line_comment(bytes, i, &mut out);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i = blank_block_comment(bytes, i, &mut out);
            }
            b'"' => {
                i = blank_string(bytes, i, &mut out);
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                i = blank_raw_string(bytes, i, &mut out);
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                out.push(b'b');
                i = blank_string(bytes, i + 1, &mut out);
            }
            b'\'' => {
                i = blank_char_or_lifetime(bytes, i, &mut out);
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }

    String::from_utf8(out).expect("scrubbing preserves UTF-8 structure") // crp-lint: allow(CRP001) — scrubber only writes ASCII or copied bytes
}

fn push_blanked(out: &mut Vec<u8>, byte: u8) {
    // Keep newlines for line numbering; blank everything else. Multibyte
    // UTF-8 continuation bytes collapse to spaces, which is fine — the
    // output only needs ASCII pattern structure and newline positions.
    if byte == b'\n' {
        out.push(b'\n');
    } else {
        out.push(b' ');
    }
}

fn blank_line_comment(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        push_blanked(out, bytes[i]);
        i += 1;
    }
    i
}

fn blank_block_comment(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    // Rust block comments nest.
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            push_blanked(out, bytes[i]);
            push_blanked(out, bytes[i + 1]);
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            push_blanked(out, bytes[i]);
            push_blanked(out, bytes[i + 1]);
            i += 2;
            if depth == 0 {
                break;
            }
        } else {
            push_blanked(out, bytes[i]);
            i += 1;
        }
    }
    i
}

fn blank_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    // Opening quote stays so the text still lexes visually.
    out.push(b'"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                push_blanked(out, bytes[i]);
                if i + 1 < bytes.len() {
                    push_blanked(out, bytes[i + 1]);
                }
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            c => {
                push_blanked(out, c);
                i += 1;
            }
        }
    }
    i
}

fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  br#"..."#  — but not raw identifiers
    // like r#fn.
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    // A raw identifier (r#name) has a hash but no quote, so requiring
    // the quote here rejects it.
    bytes.get(j) == Some(&b'"')
}

fn blank_raw_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    if bytes[i] == b'b' {
        out.push(b'b');
        i += 1;
    }
    out.push(b'r');
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        out.push(b'#');
        hashes += 1;
        i += 1;
    }
    out.push(b'"');
    i += 1;
    // Scan for closing `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                out.push(b'"');
                for _ in 0..hashes {
                    out.push(b'#');
                }
                return i + 1 + hashes;
            }
        }
        push_blanked(out, bytes[i]);
        i += 1;
    }
    i
}

fn blank_char_or_lifetime(bytes: &[u8], i: usize, out: &mut Vec<u8>) -> usize {
    // Distinguish 'a (lifetime) from 'a' (char literal): a lifetime is a
    // quote followed by an identifier NOT terminated by another quote.
    let next = bytes.get(i + 1).copied();
    let is_ident = next.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_');
    if is_ident && bytes.get(i + 2) != Some(&b'\'') {
        out.push(b'\'');
        return i + 1;
    }
    // Char literal: 'x', '\n', '\u{1F600}', '\''.
    out.push(b'\'');
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => {
                push_blanked(out, bytes[j]);
                if j + 1 < bytes.len() {
                    push_blanked(out, bytes[j + 1]);
                }
                j += 2;
            }
            b'\'' => {
                out.push(b'\'');
                return j + 1;
            }
            b'\n' => {
                // Not actually a char literal (stray quote); bail out.
                out.push(b'\n');
                return j + 1;
            }
            c => {
                push_blanked(out, c);
                j += 1;
            }
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::scrub;

    #[test]
    fn line_comments_are_blanked() {
        let s = scrub("let x = 1; // call .unwrap() here\nlet y = 2;");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = scrub("a /* outer /* inner unwrap() */ still comment */ b");
        assert!(!s.contains("unwrap"));
        assert!(s.starts_with('a'));
        assert!(s.ends_with('b'));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = scrub(r#"let msg = "please .unwrap() me"; real();"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("real();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = scrub(r#"let m = "quote \" unwrap()"; after();"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("after();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scrub(r####"let m = r#"raw "quoted" unwrap()"#; after();"####);
        assert!(!s.contains("unwrap"), "{s}");
        assert!(s.contains("after();"), "{s}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) -> char { 'u' }");
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.contains("'u'") || s.contains("' '"));
        let s2 = scrub(r"let q = '\''; done();");
        assert!(s2.contains("done();"));
    }

    #[test]
    fn offsets_and_newlines_preserved() {
        let src = "line1 \"str\nstill str\" line3\n// c\nend";
        let s = scrub(src);
        assert_eq!(s.len(), src.len());
        assert_eq!(s.lines().count(), src.lines().count());
    }
}
