//! The conservative workspace call graph.
//!
//! Call sites are extracted from the scoped token streams and resolved
//! against the [`SymbolTable`]:
//!
//! - **Free and path calls** (`helper(..)`, `module::helper(..)`,
//!   `Type::assoc(..)`) resolve by name, narrowed by explicit path
//!   hints — `Self::`/`self::`/`crate::` stay in the file or crate,
//!   `crp_foo::` jumps to that crate, a lowercase first segment that
//!   matches a file stem lands in that file. Paths rooted at a known
//!   std type or module are leaves (no edge, not unresolved).
//! - **Method calls** (`recv.helper(..)`) resolve by receiver-name
//!   heuristics: a `self` receiver prefers the same file then the same
//!   crate; any other receiver is first checked against the known-std
//!   method list (iterator adapters, collection ops, Option/Result
//!   combinators, ...) and only then against workspace names.
//!
//! A call that resolves to several candidate functions links to **all**
//! of them (over-approximation keeps the reachability rules sound); a
//! call that resolves to none lands in the explicit unresolved bucket,
//! which is reported — never silently dropped — and gated in CI via
//! `--max-unresolved`.
//!
//! Known imprecision (documented in DESIGN §7): turbofish calls
//! (`f::<T>(..)`), calls through function pointers/closures, and trait
//! dispatch to impls whose method name shadows a std method are missed
//! or under-resolved. The unresolved fraction makes the miss rate
//! visible.

use crate::engine::ScopedFile;
use crate::lexer::TokenKind;
use crate::symbols::{SourceFile, SymbolTable};

/// One resolved caller→callee edge.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Calling function (symbol id).
    pub caller: usize,
    /// Called function (symbol id).
    pub callee: usize,
    /// File index of the call site (always the caller's file).
    pub file: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// The callee name as written at the call site.
    pub name: String,
}

/// One call the resolver could not map to any workspace function.
#[derive(Clone, Debug)]
pub struct UnresolvedCall {
    /// File index of the call site.
    pub file: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// The called name.
    pub name: String,
    /// The receiver token for method calls (`self`, a variable, `)`
    /// for chained calls), `None` for free calls.
    pub receiver: Option<String>,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All edges, in (file, token) discovery order — deterministic.
    pub edges: Vec<Edge>,
    /// Calls that resolved to no workspace function and no std leaf.
    pub unresolved: Vec<UnresolvedCall>,
    /// Call sites that produced at least one edge.
    pub resolved_calls: usize,
    /// Call sites recognized as std leaves (no edge needed).
    pub std_calls: usize,
    /// Outgoing edge indices per symbol.
    pub out: Vec<Vec<usize>>,
    /// Incoming edge indices per symbol.
    pub incoming: Vec<Vec<usize>>,
}

/// Statement keywords that can syntactically precede `(` without the
/// preceding identifier being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "break", "continue", "in", "as",
    "move", "let", "mut", "ref", "await", "where", "impl", "dyn", "fn", "unsafe", "pub", "use",
    "struct", "enum", "union", "trait", "type", "const", "static", "crate", "mod", "box", "yield",
];

/// Path roots that are std (or vendored stand-in) types and modules:
/// a path call rooted here is a leaf, not a workspace edge.
const STD_PATH_ROOTS: &[&str] = &[
    // Core containers and smart pointers.
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Rc",
    "Arc",
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
    "Cow",
    "Option",
    "Result",
    "Some",
    "None",
    "Ok",
    "Err",
    "Ordering",
    "Reverse",
    "Range",
    "Wrapping",
    "Saturating",
    "PhantomData",
    "Pin",
    "ManuallyDrop",
    "MaybeUninit",
    "NonZeroU64",
    "NonZeroUsize",
    "Weak",
    "OnceLock",
    "LazyLock",
    "Entry",
    // Atomics and sync.
    "AtomicBool",
    "AtomicU8",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "Condvar",
    "Barrier",
    "Once",
    // Time, I/O, OS.
    "Instant",
    "SystemTime",
    "Duration",
    "UNIX_EPOCH",
    "File",
    "OpenOptions",
    "BufReader",
    "BufWriter",
    "PathBuf",
    "Path",
    "OsStr",
    "OsString",
    "Command",
    "Stdio",
    "ExitCode",
    "ExitStatus",
    "Child",
    // Primitives.
    "bool",
    "char",
    "str",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "f32",
    "f64",
    // Std module roots.
    "std",
    "core",
    "alloc",
];

/// Lowercase std module names resolvable as a bare path root
/// (`mem::swap(..)`, `cmp::min(..)`). Consulted only after file-stem
/// matching fails, so a workspace module of the same name wins.
const STD_MODULES: &[&str] = &[
    "mem",
    "cmp",
    "fmt",
    "iter",
    "slice",
    "array",
    "ptr",
    "ops",
    "convert",
    "borrow",
    "hash",
    "num",
    "char",
    "ascii",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
    "fs",
    "io",
    "env",
    "process",
    "thread",
    "time",
    "collections",
    "sync",
    "atomic",
    "panic",
    "hint",
    "any",
    "marker",
    "task",
    "future",
    "string",
];

/// Methods assumed to be std (or primitive) when the receiver is not
/// `self`: iterator adapters, collection and string ops, Option/Result
/// combinators, numeric helpers, atomics. A call to one of these is a
/// leaf — body-local sink patterns catch the ones that matter (e.g.
/// `.push(` as an allocation sink).
const STD_METHODS: &[&str] = &[
    // Iterator protocol and adapters.
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "try_fold",
    "sum",
    "product",
    "count",
    "enumerate",
    "zip",
    "chain",
    "rev",
    "skip",
    "take",
    "skip_while",
    "take_while",
    "step_by",
    "peekable",
    "peek",
    "nth",
    "last",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "any",
    "all",
    "find",
    "find_map",
    "position",
    "collect",
    "copied",
    "cloned",
    "inspect",
    "by_ref",
    "windows",
    "chunks",
    "pairs",
    "cycle",
    "unzip",
    "partition",
    "scan",
    "reduce",
    // Collections and slices.
    "len",
    "is_empty",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "get",
    "get_mut",
    "get_or_insert_with",
    "contains",
    "contains_key",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "keys",
    "values",
    "values_mut",
    "first",
    "last",
    "first_mut",
    "last_mut",
    "clear",
    "truncate",
    "resize",
    "reserve",
    "shrink_to_fit",
    "extend",
    "extend_from_slice",
    "drain",
    "retain",
    "dedup",
    "dedup_by_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "partition_point",
    "split_at",
    "split_first",
    "split_last",
    "swap",
    "swap_remove",
    "fill",
    "concat",
    "join",
    "append",
    "range",
    "front",
    "back",
    "capacity",
    "make_contiguous",
    // Option / Result.
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "map_err",
    "map_or",
    "map_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "is_some_and",
    "is_none_or",
    "is_ok_and",
    "unwrap_err",
    "take",
    "replace",
    "get_or_insert",
    "filter",
    "zip",
    "flatten",
    "as_deref",
    "as_deref_mut",
    "transpose",
    // Conversions and borrows.
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "to_path_buf",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_mut_slice",
    "as_bytes",
    "as_os_str",
    "as_path",
    "borrow",
    "borrow_mut",
    "into",
    "try_into",
    "from",
    "try_from",
    "parse",
    "display",
    "to_str",
    "to_string_lossy",
    "into_iter",
    "into_keys",
    "into_values",
    "leak",
    "deref",
    "deref_mut",
    "cast",
    "as_u64",
    // Comparison, hashing, formatting.
    "cmp",
    "partial_cmp",
    "total_cmp",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "hash",
    "then",
    "then_with",
    "reverse",
    "clamp",
    "fmt",
    "write_str",
    "write_fmt",
    "write_char",
    // Strings.
    "chars",
    "bytes",
    "lines",
    "trim",
    "trim_start",
    "trim_end",
    "trim_end_matches",
    "trim_start_matches",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "strip_suffix",
    "split",
    "splitn",
    "rsplit",
    "rsplitn",
    "split_whitespace",
    "split_terminator",
    "rsplit_once",
    "split_once",
    "replace",
    "replacen",
    "to_lowercase",
    "to_uppercase",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "push_str",
    "insert_str",
    "find",
    "rfind",
    "matches",
    "char_indices",
    "repeat",
    "escape_debug",
    // Numeric helpers.
    "abs",
    "sqrt",
    "powi",
    "powf",
    "ln",
    "log2",
    "log10",
    "exp",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "signum",
    "recip",
    "hypot",
    "min",
    "max",
    "midpoint",
    "rem_euclid",
    "div_euclid",
    "to_bits",
    "from_bits",
    "is_nan",
    "is_finite",
    "is_infinite",
    "is_sign_negative",
    "is_sign_positive",
    "mul_add",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_rem",
    "overflowing_add",
    "overflowing_sub",
    "pow",
    "isqrt",
    "leading_zeros",
    "trailing_zeros",
    "count_ones",
    "rotate_left",
    "rotate_right",
    "swap_bytes",
    "to_le_bytes",
    "to_be_bytes",
    "to_ne_bytes",
    // Atomics, locks, channels, processes, time, I/O.
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    "lock",
    "read",
    "write",
    "read_to_string",
    "read_line",
    "write_all",
    "flush",
    "send",
    "recv",
    "try_recv",
    "join",
    "spawn",
    "wait",
    "try_wait",
    "kill",
    "elapsed",
    "duration_since",
    "checked_duration_since",
    "as_secs",
    "as_millis",
    "as_micros",
    "as_nanos",
    "as_secs_f64",
    "subsec_nanos",
    "status",
    "output",
    "arg",
    "args",
    "stdout",
    "stderr",
    "stdin",
    "current_dir",
    "envs",
    "success",
    "code",
    "exists",
    "is_file",
    "is_dir",
    "file_name",
    "file_stem",
    "extension",
    "components",
    "ancestors",
    "to_owned",
    "canonicalize",
    "metadata",
    "read_dir",
    "path",
    "file_type",
];

/// Ubiquitous trait-method names whose `TypeName::assoc(..)` spelling
/// must not resolve across crates by bare name: most impls are derived
/// (no `fn` item in the source), so a workspace-wide match lands on an
/// unrelated type's hand-written impl instead.
const TRAIT_DISPATCH_NAMES: &[&str] = &[
    "default",
    "clone",
    "from",
    "into",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "drop",
    "to_string",
];

impl CallGraph {
    /// Extracts and resolves every call site in `files`.
    pub fn build(files: &[SourceFile<'_, '_>], symbols: &SymbolTable) -> CallGraph {
        let mut graph = CallGraph {
            edges: Vec::new(),
            unresolved: Vec::new(),
            resolved_calls: 0,
            std_calls: 0,
            out: vec![Vec::new(); symbols.fns.len()],
            incoming: vec![Vec::new(); symbols.fns.len()],
        };
        for (fi, file) in files.iter().enumerate() {
            extract_file(&mut graph, files, symbols, fi, file.scoped);
        }
        graph
    }

    /// The fraction of call sites that resolved to nothing. Std leaves
    /// count as resolved — they are understood, just not edges.
    pub fn unresolved_fraction(&self) -> f64 {
        let total = self.resolved_calls + self.std_calls + self.unresolved.len();
        if total == 0 {
            return 0.0;
        }
        self.unresolved.len() as f64 / total as f64
    }

    /// Symbols from which some seed symbol is reachable over enabled
    /// edges (reverse reachability; seeds themselves are included).
    /// Cycle-safe: each symbol is visited once.
    pub fn tainted(&self, seeds: &[bool], edge_enabled: &[bool]) -> Vec<bool> {
        let mut mark = seeds.to_vec();
        let mut queue: Vec<usize> = (0..mark.len()).filter(|&s| mark[s]).collect();
        while let Some(s) = queue.pop() {
            for &e in &self.incoming[s] {
                if !edge_enabled[e] {
                    continue;
                }
                let c = self.edges[e].caller;
                if !mark[c] {
                    mark[c] = true;
                    queue.push(c);
                }
            }
        }
        mark
    }

    /// Symbols reachable from any seed over enabled edges (forward
    /// reachability; seeds themselves are included).
    pub fn reachable(&self, seeds: &[bool], edge_enabled: &[bool]) -> Vec<bool> {
        let mut mark = seeds.to_vec();
        let mut queue: Vec<usize> = (0..mark.len()).filter(|&s| mark[s]).collect();
        while let Some(s) = queue.pop() {
            for &e in &self.out[s] {
                if !edge_enabled[e] {
                    continue;
                }
                let c = self.edges[e].callee;
                if !mark[c] {
                    mark[c] = true;
                    queue.push(c);
                }
            }
        }
        mark
    }

    /// The shortest enabled edge path from `from` to any symbol in
    /// `targets`, as edge indices. `None` when unreachable. BFS over
    /// out-edges in insertion order, so ties break deterministically.
    pub fn shortest_path(
        &self,
        from: usize,
        targets: &[bool],
        edge_enabled: &[bool],
    ) -> Option<Vec<usize>> {
        if targets[from] {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.out.len()];
        let mut seen = vec![false; self.out.len()];
        seen[from] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            for &e in &self.out[s] {
                if !edge_enabled[e] {
                    continue;
                }
                let c = self.edges[e].callee;
                if seen[c] {
                    continue;
                }
                seen[c] = true;
                prev[c] = Some(e);
                if targets[c] {
                    // Walk the parent chain back to `from`.
                    let mut path = Vec::new();
                    let mut cur = c;
                    while let Some(pe) = prev[cur] {
                        path.push(pe);
                        cur = self.edges[pe].caller;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(c);
            }
        }
        None
    }
}

/// Scans one file's token stream for call sites and resolves them.
fn extract_file(
    graph: &mut CallGraph,
    files: &[SourceFile<'_, '_>],
    symbols: &SymbolTable,
    fi: usize,
    scoped: &ScopedFile<'_>,
) {
    let toks = &scoped.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.token.kind != TokenKind::Ident {
            continue;
        }
        if toks.get(i + 1).map(|n| n.token.text) != Some("(") {
            continue;
        }
        // Calls in test regions and outside any `fn` body (const
        // initializers, statics) produce no edges.
        if t.in_test {
            continue;
        }
        let Some(caller) = t.fn_scope.and_then(|id| symbols.sym_of(fi, id as usize)) else {
            continue;
        };
        let prev = i.checked_sub(1).map(|p| toks[p].token.text);
        let name = t.token.text;
        if prev == Some("fn") || CALL_KEYWORDS.contains(&name) {
            continue;
        }

        let resolution = if prev == Some(".") {
            // Method call: `recv.name(..)`.
            let receiver = i.checked_sub(2).map(|p| toks[p].token.text);
            resolve_method(files, symbols, fi, name, receiver)
        } else if prev == Some(":") && i >= 2 && toks[i - 2].token.text == ":" {
            // Path call: walk `seg :: seg :: name` backwards.
            let mut segments = vec![name];
            let mut j = i;
            while j >= 3
                && toks[j - 1].token.text == ":"
                && toks[j - 2].token.text == ":"
                && toks[j - 3].token.kind == TokenKind::Ident
            {
                segments.insert(0, toks[j - 3].token.text);
                j -= 3;
            }
            resolve_path(files, symbols, fi, &segments)
        } else {
            // Bare call: `name(..)`. Uppercase initials are tuple
            // structs or enum variants, not functions.
            if name.chars().next().is_some_and(char::is_uppercase) {
                continue;
            }
            resolve_bare(files, symbols, fi, name)
        };

        match resolution {
            Resolution::Std => graph.std_calls += 1,
            Resolution::Edges(targets) => {
                graph.resolved_calls += 1;
                for callee in targets {
                    let e = graph.edges.len();
                    graph.edges.push(Edge {
                        caller,
                        callee,
                        file: fi,
                        line: t.token.line,
                        name: name.to_string(),
                    });
                    graph.out[caller].push(e);
                    graph.incoming[callee].push(e);
                }
            }
            Resolution::Unresolved(receiver) => graph.unresolved.push(UnresolvedCall {
                file: fi,
                line: t.token.line,
                name: name.to_string(),
                receiver,
            }),
        }
    }
}

enum Resolution {
    /// A std/primitive leaf: understood, no edge.
    Std,
    /// Resolved to these workspace symbols (all candidates linked).
    Edges(Vec<usize>),
    /// Not resolvable; reported in the unresolved bucket.
    Unresolved(Option<String>),
}

/// Name-tier resolution: same file, then same crate, then workspace.
fn tiers(files: &[SourceFile<'_, '_>], symbols: &SymbolTable, fi: usize, name: &str) -> Vec<usize> {
    let same_file = symbols.in_file(name, fi);
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate = symbols.in_crate(name, files, &files[fi].crate_name);
    if !same_crate.is_empty() {
        return same_crate;
    }
    symbols.anywhere(name)
}

fn resolve_method(
    files: &[SourceFile<'_, '_>],
    symbols: &SymbolTable,
    fi: usize,
    name: &str,
    receiver: Option<&str>,
) -> Resolution {
    if receiver == Some("self") {
        // `self.helper(..)`: methods of the same type overwhelmingly
        // live in the same file; fall back to the crate.
        let same_file = symbols.in_file(name, fi);
        if !same_file.is_empty() {
            return Resolution::Edges(same_file);
        }
        let same_crate = symbols.in_crate(name, files, &files[fi].crate_name);
        if !same_crate.is_empty() {
            return Resolution::Edges(same_crate);
        }
        if STD_METHODS.contains(&name) {
            return Resolution::Std;
        }
        return Resolution::Unresolved(Some("self".to_string()));
    }
    // Non-self receiver (a local, a field, or a chained `)`): std
    // methods first — iterator adapters and collection calls dominate —
    // then workspace names.
    if STD_METHODS.contains(&name) {
        return Resolution::Std;
    }
    let found = tiers(files, symbols, fi, name);
    if !found.is_empty() {
        return Resolution::Edges(found);
    }
    Resolution::Unresolved(Some(receiver.unwrap_or("?").to_string()))
}

fn resolve_bare(
    files: &[SourceFile<'_, '_>],
    symbols: &SymbolTable,
    fi: usize,
    name: &str,
) -> Resolution {
    let found = tiers(files, symbols, fi, name);
    if !found.is_empty() {
        return Resolution::Edges(found);
    }
    // `drop(x)` is the one std free function called bare everywhere.
    if name == "drop" {
        return Resolution::Std;
    }
    Resolution::Unresolved(None)
}

fn resolve_path(
    files: &[SourceFile<'_, '_>],
    symbols: &SymbolTable,
    fi: usize,
    segments: &[&str],
) -> Resolution {
    let name = segments[segments.len() - 1];
    // Enum variants and tuple structs at the end of a path are
    // constructors, not calls worth an edge.
    if name.chars().next().is_some_and(char::is_uppercase) {
        return Resolution::Std;
    }
    let root = segments[0];

    if STD_PATH_ROOTS.contains(&root) {
        return Resolution::Std;
    }

    if root == "Self" || root == "self" {
        let same_file = symbols.in_file(name, fi);
        if !same_file.is_empty() {
            return Resolution::Edges(same_file);
        }
        let same_crate = symbols.in_crate(name, files, &files[fi].crate_name);
        if !same_crate.is_empty() {
            return Resolution::Edges(same_crate);
        }
        return Resolution::Unresolved(Some(root.to_string()));
    }

    // Crate-qualified paths: `crate::mod::f`, `crp_telemetry::trace::f`,
    // `crp::f`.
    let target_crate = if root == "crate" {
        Some(files[fi].crate_name.clone())
    } else if let Some(tail) = root.strip_prefix("crp_") {
        Some(tail.to_string())
    } else if root == "crp" {
        Some("crp".to_string())
    } else {
        None
    };
    if let Some(crate_name) = target_crate {
        // An intermediate segment matching a file stem pins the file.
        for seg in &segments[1..segments.len() - 1] {
            if let Some(tfi) = files
                .iter()
                .position(|f| f.crate_name == crate_name && f.stem == *seg)
            {
                let in_file = symbols.in_file(name, tfi);
                if !in_file.is_empty() {
                    return Resolution::Edges(in_file);
                }
            }
        }
        let in_crate = symbols.in_crate(name, files, &crate_name);
        if !in_crate.is_empty() {
            return Resolution::Edges(in_crate);
        }
        return Resolution::Unresolved(None);
    }

    if root.chars().next().is_some_and(char::is_lowercase) {
        // `module::f(..)`: a file stem in the same crate wins, then any
        // unique stem workspace-wide, then the std module list.
        if let Some(tfi) = files
            .iter()
            .position(|f| f.crate_name == files[fi].crate_name && f.stem == root)
        {
            let in_file = symbols.in_file(name, tfi);
            if !in_file.is_empty() {
                return Resolution::Edges(in_file);
            }
        }
        let stem_matches: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.stem == root)
            .map(|(k, _)| k)
            .collect();
        if stem_matches.len() == 1 {
            let in_file = symbols.in_file(name, stem_matches[0]);
            if !in_file.is_empty() {
                return Resolution::Edges(in_file);
            }
        }
        if STD_MODULES.contains(&root) {
            return Resolution::Std;
        }
        let found = tiers(files, symbols, fi, name);
        if !found.is_empty() {
            return Resolution::Edges(found);
        }
        return Resolution::Unresolved(None);
    }

    // `TypeName::assoc(..)` for a workspace type: by name, tiered.
    // Ubiquitous trait methods stop at the crate boundary — a derived
    // impl (`#[derive(Default)]`) has no `fn` item of its own, so
    // workspace-wide name matching would link `TtlCache::default()` to
    // whatever unrelated hand-written `default` exists elsewhere. Past
    // the crate the call is a derive/trait leaf, not an edge.
    if TRAIT_DISPATCH_NAMES.contains(&name) {
        let same_file = symbols.in_file(name, fi);
        if !same_file.is_empty() {
            return Resolution::Edges(same_file);
        }
        let same_crate = symbols.in_crate(name, files, &files[fi].crate_name);
        if !same_crate.is_empty() {
            return Resolution::Edges(same_crate);
        }
        return Resolution::Std;
    }
    let found = tiers(files, symbols, fi, name);
    if !found.is_empty() {
        return Resolution::Edges(found);
    }
    Resolution::Unresolved(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    struct Fixture {
        scoped: Vec<(String, String, ScopedFile<'static>)>,
    }

    fn build(
        files: &[(&str, &str, &'static str)],
    ) -> (Vec<SourceFile<'static, 'static>>, SymbolTable, CallGraph) {
        // Leak the sources: test-only, keeps lifetimes simple.
        let fixture = Fixture {
            scoped: files
                .iter()
                .map(|(joined, krate, src)| {
                    (
                        (*joined).to_string(),
                        (*krate).to_string(),
                        ScopedFile::parse(src),
                    )
                })
                .collect(),
        };
        let fixture: &'static Fixture = Box::leak(Box::new(fixture));
        let sources: Vec<SourceFile<'static, 'static>> = fixture
            .scoped
            .iter()
            .map(|(joined, krate, scoped)| SourceFile::new(joined.clone(), krate.clone(), scoped))
            .collect();
        let symbols = SymbolTable::build(&sources);
        let graph = CallGraph::build(&sources, &symbols);
        (sources, symbols, graph)
    }

    fn edge_names(graph: &CallGraph, symbols: &SymbolTable) -> Vec<(String, String)> {
        graph
            .edges
            .iter()
            .map(|e| {
                (
                    symbols.fns[e.caller].name.clone(),
                    symbols.fns[e.callee].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn cross_file_free_call_resolves_by_name() {
        let (_, symbols, graph) = build(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn entry() { helper(1); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "core",
                "pub fn helper(_x: u32) {}\n",
            ),
        ]);
        assert_eq!(
            edge_names(&graph, &symbols),
            vec![("entry".to_string(), "helper".to_string())]
        );
        assert!(graph.unresolved.is_empty());
    }

    #[test]
    fn module_path_call_pins_the_stem_file() {
        let (_, symbols, graph) = build(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn entry() { util::go(); }\n",
            ),
            ("crates/core/src/util.rs", "core", "pub fn go() {}\n"),
            // A same-named fn in another crate must not absorb the edge.
            ("crates/cdn/src/other.rs", "cdn", "pub fn go() {}\n"),
        ]);
        let names = edge_names(&graph, &symbols);
        assert_eq!(names, vec![("entry".to_string(), "go".to_string())]);
        assert_eq!(symbols.fns[graph.edges[0].callee].file, 1);
    }

    #[test]
    fn derived_trait_calls_do_not_jump_crates() {
        let (_, symbols, graph) = build(&[
            (
                "crates/dns/src/cache.rs",
                "dns",
                "pub fn fresh() -> Cache { Cache::default() }\n",
            ),
            // A hand-written `default` in another crate must not absorb
            // the derived impl's call.
            (
                "crates/telemetry/src/profile.rs",
                "telemetry",
                "impl Default for Profiler { fn default() -> Self { Self::new() } }\n\
                 pub fn new() -> Profiler { Profiler {} }\n",
            ),
        ]);
        assert!(edge_names(&graph, &symbols)
            .iter()
            .all(|(_, callee)| callee != "default"));
        assert!(graph.unresolved.is_empty());
        // Within the defining crate the link stands.
        let (_, symbols, graph) = build(&[(
            "crates/telemetry/src/profile.rs",
            "telemetry",
            "pub fn fresh() -> Profiler { Profiler::default() }\n\
             impl Default for Profiler { fn default() -> Self { Self::new() } }\n",
        )]);
        assert!(
            edge_names(&graph, &symbols).contains(&("fresh".to_string(), "default".to_string()))
        );
    }

    #[test]
    fn crp_crate_path_jumps_crates() {
        let (_, symbols, graph) = build(&[
            (
                "crates/cdn/src/cdn.rs",
                "cdn",
                "pub fn answer() { crp_core::ratio::normalize(); }\n",
            ),
            (
                "crates/core/src/ratio.rs",
                "core",
                "pub fn normalize() {}\n",
            ),
        ]);
        assert_eq!(
            edge_names(&graph, &symbols),
            vec![("answer".to_string(), "normalize".to_string())]
        );
    }

    #[test]
    fn self_method_prefers_same_file_over_std_list() {
        // `get` is on the std-method list, but `self.get(..)` must bind
        // to the type's own `get` in the same file.
        let (_, symbols, graph) = build(&[(
            "crates/core/src/ratio.rs",
            "core",
            "impl R { pub fn outer(&self) { self.get(1); } pub fn get(&self, _k: u32) {} }\n",
        )]);
        assert_eq!(
            edge_names(&graph, &symbols),
            vec![("outer".to_string(), "get".to_string())]
        );
    }

    #[test]
    fn non_self_std_method_is_a_leaf_not_unresolved() {
        let (_, _, graph) = build(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn f(v: &[u32]) -> usize { v.iter().map(|x| x + 1).count() }\n",
        )]);
        assert!(graph.edges.is_empty());
        assert!(graph.unresolved.is_empty());
        assert!(graph.std_calls >= 3);
    }

    #[test]
    fn unknown_method_lands_in_the_unresolved_bucket() {
        let (_, _, graph) = build(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn f(w: &W) { w.frobnicate(); }\n",
        )]);
        assert!(graph.edges.is_empty());
        assert_eq!(graph.unresolved.len(), 1);
        assert_eq!(graph.unresolved[0].name, "frobnicate");
        assert_eq!(graph.unresolved[0].receiver.as_deref(), Some("w"));
        assert!(graph.unresolved_fraction() > 0.0);
    }

    #[test]
    fn ambiguous_names_link_all_candidates() {
        let (_, symbols, graph) = build(&[
            (
                "crates/core/src/a.rs",
                "core",
                "pub fn entry(m: &M) { m.score(); }\n",
            ),
            ("crates/core/src/b.rs", "core", "pub fn score() {}\n"),
            ("crates/core/src/c.rs", "core", "pub fn score() {}\n"),
        ]);
        let names = edge_names(&graph, &symbols);
        assert_eq!(names.len(), 2, "both candidates linked: {names:?}");
        // One call site, two edges — resolved once.
        assert_eq!(graph.resolved_calls, 1);
    }

    #[test]
    fn recursion_and_cycles_terminate() {
        let (_, symbols, graph) = build(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn ping() { pong(); }\npub fn pong() { ping(); }\npub fn leaf() { sink_here(); }\npub fn sink_here() {}\n",
        )]);
        let n = symbols.fns.len();
        let sink = symbols.anywhere("sink_here")[0];
        let mut seeds = vec![false; n];
        seeds[sink] = true;
        let enabled = vec![true; graph.edges.len()];
        let tainted = graph.tainted(&seeds, &enabled);
        // ping/pong cycle never reaches the sink; leaf does.
        let leaf = symbols.anywhere("leaf")[0];
        let ping = symbols.anywhere("ping")[0];
        assert!(tainted[leaf]);
        assert!(!tainted[ping]);
        // Forward reachability over the cycle also terminates.
        let mut roots = vec![false; n];
        roots[ping] = true;
        let reach = graph.reachable(&roots, &enabled);
        assert!(reach[symbols.anywhere("pong")[0]]);
    }

    #[test]
    fn shortest_path_walks_the_chain() {
        let (_, symbols, graph) = build(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\n",
        )]);
        let n = symbols.fns.len();
        let a = symbols.anywhere("a")[0];
        let c = symbols.anywhere("c")[0];
        let mut targets = vec![false; n];
        targets[c] = true;
        let enabled = vec![true; graph.edges.len()];
        let path = graph
            .shortest_path(a, &targets, &enabled)
            .expect("reachable");
        assert_eq!(path.len(), 2);
        assert_eq!(graph.edges[path[0]].caller, a);
        assert_eq!(graph.edges[path[1]].callee, c);
        // Disabling the first hop severs the path.
        let mut cut = enabled.clone();
        cut[path[0]] = false;
        assert!(graph.shortest_path(a, &targets, &cut).is_none());
    }

    #[test]
    fn test_region_calls_produce_no_edges() {
        let (_, _, graph) = build(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn helper() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::helper(); }\n}\n",
        )]);
        assert!(graph.edges.is_empty());
    }

    #[test]
    fn macros_and_declarations_are_not_calls() {
        let (_, _, graph) = build(&[(
            "crates/core/src/a.rs",
            "core",
            "pub fn f() { let v = vec![1]; format!(\"x\"); }\npub fn g(h: fn(u32)) {}\n",
        )]);
        assert!(graph.edges.is_empty());
        assert!(graph.unresolved.is_empty());
    }
}
