//! The workspace symbol table: every `fn` item the scope pass found,
//! tagged with its crate, file, declaration line, and body token span.
//!
//! The table is the name-resolution substrate for the call graph
//! ([`crate::callgraph`]): lookups go by bare function name and are
//! then narrowed by file, crate, or module hints at the call site.
//! Functions inside `#[cfg(test)]` regions are indexed but marked, so
//! resolution can exclude them as targets — test helpers shadowing
//! production names must never absorb production call edges.

use crate::engine::ScopedFile;
use std::collections::BTreeMap;

/// One analyzed source file, as the interprocedural pass sees it.
pub struct SourceFile<'s, 'a> {
    /// Workspace-relative path, `/`-joined (`crates/core/src/ratio.rs`).
    pub joined: String,
    /// Short crate name (`core`, `cdn`, ... or `crp` for root `src/`).
    pub crate_name: String,
    /// File stem (`ratio` for `ratio.rs`), the module-name hint used to
    /// resolve `modname::func(...)` paths.
    pub stem: String,
    /// The lexed-and-scoped token stream.
    pub scoped: &'s ScopedFile<'a>,
}

impl<'s, 'a> SourceFile<'s, 'a> {
    /// Builds the descriptor from a joined workspace path.
    pub fn new(joined: String, crate_name: String, scoped: &'s ScopedFile<'a>) -> Self {
        let stem = joined
            .rsplit('/')
            .next()
            .unwrap_or("")
            .trim_end_matches(".rs")
            .to_string();
        SourceFile {
            joined,
            crate_name,
            stem,
            scoped,
        }
    }
}

/// One function symbol.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Index into the [`SourceFile`] slice the table was built from.
    pub file: usize,
    /// Index into that file's [`ScopedFile::fns`].
    pub fn_idx: usize,
    /// The function's name (`r#` prefix already stripped).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token span, `[open_brace, close_brace)` indices.
    pub body: (u32, u32),
    /// Whether the function sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// The workspace-wide function index.
pub struct SymbolTable {
    /// All symbols, in (file, declaration) order — deterministic.
    pub fns: Vec<FnSym>,
    /// Per file, engine fn-id → symbol id (same ordering as
    /// [`ScopedFile::fns`]).
    pub fn_map: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Harvests every `fn` item from the given files.
    pub fn build(files: &[SourceFile<'_, '_>]) -> SymbolTable {
        let mut fns = Vec::new();
        let mut fn_map = Vec::with_capacity(files.len());
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let mut map = Vec::with_capacity(file.scoped.fns.len());
            for (k, scope) in file.scoped.fns.iter().enumerate() {
                let open = scope.body.0 as usize;
                let is_test = file
                    .scoped
                    .tokens
                    .get(open)
                    .map(|t| t.in_test)
                    .unwrap_or(false);
                let id = fns.len();
                fns.push(FnSym {
                    file: fi,
                    fn_idx: k,
                    name: scope.name.to_string(),
                    line: scope.line,
                    body: scope.body,
                    is_test,
                });
                by_name.entry(scope.name.to_string()).or_default().push(id);
                map.push(id);
            }
            fn_map.push(map);
        }
        SymbolTable {
            fns,
            fn_map,
            by_name,
        }
    }

    /// All symbol ids sharing `name`, in declaration order.
    pub fn lookup(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Non-test symbols named `name` in file `fi`.
    pub fn in_file(&self, name: &str, fi: usize) -> Vec<usize> {
        self.lookup(name)
            .iter()
            .copied()
            .filter(|&s| self.fns[s].file == fi && !self.fns[s].is_test)
            .collect()
    }

    /// Non-test symbols named `name` anywhere in crate `crate_name`.
    pub fn in_crate(
        &self,
        name: &str,
        files: &[SourceFile<'_, '_>],
        crate_name: &str,
    ) -> Vec<usize> {
        self.lookup(name)
            .iter()
            .copied()
            .filter(|&s| !self.fns[s].is_test && files[self.fns[s].file].crate_name == crate_name)
            .collect()
    }

    /// All non-test symbols named `name`, workspace-wide.
    pub fn anywhere(&self, name: &str) -> Vec<usize> {
        self.lookup(name)
            .iter()
            .copied()
            .filter(|&s| !self.fns[s].is_test)
            .collect()
    }

    /// The symbol id for engine fn-id `fn_idx` of file `fi`.
    pub fn sym_of(&self, fi: usize, fn_idx: usize) -> Option<usize> {
        self.fn_map.get(fi).and_then(|m| m.get(fn_idx)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source_file<'s, 'a>(
        joined: &str,
        crate_name: &str,
        scoped: &'s ScopedFile<'a>,
    ) -> SourceFile<'s, 'a> {
        SourceFile::new(joined.to_string(), crate_name.to_string(), scoped)
    }

    #[test]
    fn table_indexes_fns_with_spans_and_test_flags() {
        let scoped = ScopedFile::parse(
            "pub fn alpha() { beta(); }\nfn beta() {}\n#[cfg(test)]\nmod tests {\n    fn beta() {}\n}\n",
        );
        let files = [source_file("crates/core/src/ratio.rs", "core", &scoped)];
        let table = SymbolTable::build(&files);
        assert_eq!(table.fns.len(), 3);
        assert_eq!(table.lookup("beta").len(), 2);
        // The test-region shadow is excluded from resolution tiers.
        assert_eq!(table.in_file("beta", 0).len(), 1);
        assert_eq!(table.anywhere("beta").len(), 1);
        let alpha = &table.fns[table.in_file("alpha", 0)[0]];
        assert_eq!(alpha.line, 1);
        assert!(!alpha.is_test);
    }

    #[test]
    fn crate_tier_narrowing_spans_files() {
        let a = ScopedFile::parse("pub fn shared() {}\n");
        let b = ScopedFile::parse("pub fn shared() {}\n");
        let files = [
            source_file("crates/core/src/ratio.rs", "core", &a),
            source_file("crates/cdn/src/cdn.rs", "cdn", &b),
        ];
        let table = SymbolTable::build(&files);
        assert_eq!(table.in_crate("shared", &files, "core"), vec![0]);
        assert_eq!(table.in_crate("shared", &files, "cdn"), vec![1]);
        assert_eq!(table.anywhere("shared").len(), 2);
    }

    #[test]
    fn stem_is_derived_from_the_path() {
        let scoped = ScopedFile::parse("fn f() {}\n");
        let file = source_file("crates/core/src/similarity.rs", "core", &scoped);
        assert_eq!(file.stem, "similarity");
    }
}
