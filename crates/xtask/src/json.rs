//! A minimal JSON reader/writer for the lint baseline and report.
//!
//! `crp-xtask` is deliberately dependency-free, so this module carries
//! just enough JSON to round-trip `LINT_BASELINE.json` and emit the
//! `--json` diagnostics report: objects, arrays, strings, integers,
//! booleans, and null. Object key order is preserved on parse and
//! emitted in insertion order on write, keeping the committed baseline
//! diff-friendly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as f64 — the baseline only holds small
    /// non-negative counts, far inside the exact-integer range.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's pairs, when this is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The numeric value as u64, when this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset when the input is not valid
/// JSON (or uses a feature this parser does not carry).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our files;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

/// Serializes a string with JSON escaping.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Pretty-prints a value with two-space indentation and a trailing
/// newline, matching the style of the other committed JSON artifacts.
pub fn to_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => out.push_str(&escape(s)),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in pairs.iter().enumerate() {
                push_indent(out, indent + 1);
                out.push_str(&escape(key));
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_shape() {
        let text = r#"{
  "comment": "per-rule, per-crate error allowances",
  "counts": {
    "CRP009": { "core": 5 },
    "CRP010": { "core": 7, "cdn": 2 }
  }
}"#;
        let v = parse(text).expect("parses");
        assert_eq!(
            v.get("counts")
                .and_then(|c| c.get("CRP010"))
                .and_then(|r| r.get("cdn"))
                .and_then(Value::as_u64),
            Some(2)
        );
        // Reprint and reparse: identical structure.
        let printed = to_pretty(&v);
        assert_eq!(parse(&printed).expect("reparses"), v);
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        let v = parse(r#"[1, -2.5, true, false, null, "a\"b\nA"]"#).expect("parses");
        let Value::Arr(items) = v else {
            panic!("not an array")
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1], Value::Num(-2.5));
        assert_eq!(items[5], Value::Str("a\"b\nA".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn key_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).expect("parses");
        let keys: Vec<&str> = v
            .entries()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
