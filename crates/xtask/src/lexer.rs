//! A small dependency-free Rust lexer.
//!
//! The lint engine works on token streams, not raw text: substring
//! patterns cannot tell `unwrap` from `unwrap_or`, cannot see whether a
//! match sits inside a string literal, and — most importantly — carry no
//! notion of *scope*, so "no allocation inside this function's hot loop"
//! is inexpressible. [`lex`] turns source text into a flat token list
//! with 1-based line numbers; the scope pass in [`crate::engine`] then
//! layers item boundaries (`fn`, `mod`, `#[cfg(test)]`) on top.
//!
//! The lexer is deliberately modest: it distinguishes identifiers
//! (including raw `r#idents`), lifetimes vs. char literals, string /
//! raw-string / byte-string literals, numbers, comments, and single-byte
//! punctuation. Multi-character operators (`::`, `->`, `>>`) are *not*
//! joined — `Vec<Vec<u32>>` lexes as two plain `>` tokens, so nested
//! generics never confuse downstream matching, and token-sequence
//! patterns are lexed by the same function so both sides agree.

/// What a token is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// String literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal, suffix included (`1_000u64`, `0xFF`, `1e9`).
    Number,
    /// A single punctuation byte (`.`, `:`, `[`, `!`, …).
    Punct,
    /// Line or block comment, text included (allow markers live here).
    Comment,
}

/// One lexed token. `text` borrows from the source; `line` is 1-based
/// and refers to the token's *first* byte (multi-line tokens — block
/// comments, raw strings — are attributed to where they start).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source slice, quotes and prefixes included.
    pub text: &'a str,
    /// 1-based line of the first byte.
    pub line: u32,
}

/// Lexes `source` into tokens. Whitespace is skipped; everything else,
/// including comments, is kept. Invalid bytes degrade gracefully into
/// single-byte `Punct` tokens — the linter must never panic on weird
/// input, it is pointed at arbitrary files.
pub fn lex(source: &str) -> Vec<Token<'_>> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    self.push(TokenKind::Comment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::Comment, start, line);
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                b'r' | b'b' if self.raw_string_ahead() => {
                    self.raw_string();
                    self.push(TokenKind::Str, start, line);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string_literal();
                    self.push(TokenKind::Str, start, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.byte_char();
                    self.push(TokenKind::Char, start, line);
                }
                b'r' if self.peek(1) == Some(b'#') && self.ident_byte(2) => {
                    // Raw identifier r#name: one Ident token, prefix kept,
                    // so `r#fn` is never mistaken for the `fn` keyword.
                    self.pos += 2;
                    self.ident_tail();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.ident_tail();
                    self.push(TokenKind::Ident, start, line);
                }
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn ident_byte(&self, ahead: usize) -> bool {
        self.peek(ahead)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    /// Advances one byte, keeping the line count honest.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` literal starting at the opening quote.
    fn string_literal(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Whether `r"…"`, `r#"…"#`, `br"…"`, or `br#"…"#` starts here —
    /// but not a raw identifier like `r#fn` (hash without a quote).
    fn raw_string_ahead(&self) -> bool {
        let mut j = 0usize;
        if self.peek(j) == Some(b'b') {
            j += 1;
        }
        if self.peek(j) != Some(b'r') {
            return false;
        }
        j += 1;
        while self.peek(j) == Some(b'#') {
            j += 1;
        }
        self.peek(j) == Some(b'"')
    }

    fn raw_string(&mut self) {
        if self.bytes[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut k = 0usize;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump();
        }
    }

    /// At a `'`: either a lifetime (`'a`, quote + ident, no closing
    /// quote) or a char literal (`'x'`, `'\''`, `'\u{1F600}'`).
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        let next = self.peek(1);
        let next_is_ident =
            next.is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80);
        if next_is_ident && next != Some(b'\\') && self.peek(2) != Some(b'\'') {
            // Lifetime: consume the quote and the identifier.
            self.pos += 1;
            self.ident_tail();
            self.push(TokenKind::Lifetime, start, line);
            return;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // stray quote, not a char literal
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Char, start, line);
    }

    /// A byte-char `b'…'` with the `b` already consumed; the cursor sits
    /// on the opening quote.
    fn byte_char(&mut self) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return,
                _ => self.bump(),
            }
        }
    }

    fn ident_tail(&mut self) {
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Numbers: digits, underscores, suffixes, hex/oct/bin prefixes, a
    /// fractional part when a digit follows the dot (`1.5` but not the
    /// range `1..5` or the method call `1.max(2)`), and signed
    /// exponents (`1e-9`).
    fn number(&mut self) {
        self.ident_tail(); // digits, `_`, `x`/`b`/`o` prefixes, suffixes, `e`
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            self.ident_tail();
        }
        if self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'e')
            || self.bytes.get(self.pos.wrapping_sub(1)) == Some(&b'E')
        {
            if let (Some(b'+') | Some(b'-'), Some(d)) = (self.peek(0), self.peek(1)) {
                if d.is_ascii_digit() {
                    self.pos += 1;
                    self.ident_tail();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_kept_as_tokens_with_kind() {
        assert_eq!(
            texts("a // trailing\nb"),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::Comment, "// trailing"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    fn sig_texts(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(sig_texts("x.unwrap()"), vec!["x", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn unwrap_or_is_one_ident() {
        // The whole point of token-level matching: `unwrap_or` must not
        // decompose into something a `.unwrap()` pattern could match.
        assert_eq!(
            sig_texts("x.unwrap_or(0)"),
            vec!["x", ".", "unwrap_or", "(", "0", ")"]
        );
    }

    #[test]
    fn nested_generics_lex_as_single_angle_brackets() {
        assert_eq!(
            sig_texts("Vec<Vec<u32>>"),
            vec!["Vec", "<", "Vec", "<", "u32", ">", ">"]
        );
        assert_eq!(
            sig_texts("HashMap<K, Vec<(u8, u8)>>"),
            vec!["HashMap", "<", "K", ",", "Vec", "<", "(", "u8", ",", "u8", ")", ">", ">"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'u' }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, vec!["'u'"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = lex(r"let q = '\''; done();");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == r"'\''"));
        assert!(toks.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn static_lifetime() {
        let toks = lex("x: &'static str");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let toks = lex(r####"let m = r#"raw "quoted" unwrap()"#; after();"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec![r###"r#"raw "quoted" unwrap()"#"###]);
        // Nothing inside the raw string leaks out as an ident.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        assert!(toks.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r#"let a = b"bytes"; let c = b'\n';"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == r#"b"bytes""#));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == r"b'\n'"));
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        let toks = lex("let r#fn = 1; let r#mod = 2;");
        let raw: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text.starts_with("r#"))
            .map(|t| t.text)
            .collect();
        assert_eq!(raw, vec!["r#fn", "r#mod"]);
        // Specifically: no bare `fn` token appears.
        assert!(!toks.iter().any(|t| t.text == "fn"));
    }

    #[test]
    fn comments_are_kept_as_tokens() {
        let toks = lex("a(); // crp-lint: allow(CRP001) — reason\nb();");
        let comments: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .map(|t| t.text)
            .collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].contains("allow(CRP001)"));
        // And the ident inside the comment does not become a token.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "allow"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* outer /* inner unwrap() */ still */ b");
        assert_eq!(
            sig_texts("a /* outer /* inner unwrap() */ still */ b"),
            vec!["a", "b"]
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Comment).count(),
            1
        );
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        assert_eq!(sig_texts("1.5f64"), vec!["1.5f64"]);
        assert_eq!(sig_texts("1..5"), vec!["1", ".", ".", "5"]);
        assert_eq!(sig_texts("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
        assert_eq!(
            sig_texts("t.0.clone()"),
            vec!["t", ".", "0", ".", "clone", "(", ")"]
        );
        assert_eq!(sig_texts("1e-9"), vec!["1e-9"]);
        assert_eq!(sig_texts("0xFF_u8"), vec!["0xFF_u8"]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\n\"two\nlines\"\nb /* c\nc */ d";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("\"two\nlines\""), Some(2));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("d"), Some(5));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = ".unwrap()"; real();"#);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        assert!(toks.iter().any(|t| t.text == "real"));
    }

    #[test]
    fn multibyte_utf8_in_idents_and_comments() {
        // Non-ASCII bytes must not split tokens or desync the cursor.
        let toks = lex("// héllo wörld — ok\nlet déjà = 1;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "déjà"));
    }

    #[test]
    fn empty_and_pathological_inputs() {
        assert!(lex("").is_empty());
        assert_eq!(lex("\"unterminated").len(), 1);
        assert_eq!(lex("/* unterminated").len(), 1);
        let _ = lex("r#\"unterminated raw");
        let _ = lex("'");
    }
}
