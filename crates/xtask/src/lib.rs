//! Workspace static analysis for the CRP reproduction.
//!
//! `crp-xtask lint` walks every Rust source file in the workspace and
//! enforces the project's determinism and robustness rules — no panicky
//! `unwrap`/`expect` in library code, no nondeterministic randomness, no
//! NaN-unsafe float ordering, no wall-clock reads in simulation crates,
//! no stray stdout printing from libraries, no allocation in the
//! declared hot paths, no panic-capable constructs in serving crates,
//! no order-leaking `HashMap` iteration in sim crates. It is
//! deliberately dependency-free (std only): a small Rust lexer
//! ([`lexer`]) feeds a scope pass ([`engine`]) that tracks `fn` items
//! and `#[cfg(test)]` regions, and rules match token sequences in that
//! annotated stream, so comments and string literals can never
//! false-positive.
//!
//! Every diagnostic carries a rule ID (`CRP001`..`CRP012`), a severity,
//! and a `file:line` location. A finding can be suppressed at the site
//! with a `// crp-lint: allow(CRP00x) — <justification>` comment on the
//! same line or the line directly above; the justification text after
//! the closing paren is mandatory, and markers that no longer suppress
//! anything are themselves flagged (CRP012). Error counts are ratcheted
//! against the committed `LINT_BASELINE.json` ([`baseline`]) so known
//! debt lands green while new debt fails.

pub mod baseline;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod lint;
pub mod scrub;

pub use baseline::{Baseline, RatchetOutcome};
pub use lint::{lint_root, lint_source, Diagnostic, Rule, Severity, RULES};
