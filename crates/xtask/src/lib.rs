//! Workspace static analysis for the CRP reproduction.
//!
//! `crp-xtask lint` walks every Rust source file in the workspace and
//! enforces the project's determinism and robustness rules — no panicky
//! `unwrap`/`expect` in library code, no nondeterministic randomness, no
//! NaN-unsafe float ordering, no wall-clock reads in simulation crates,
//! no stray stdout printing from libraries, no allocation in the
//! declared hot paths, no panic-capable constructs in serving crates,
//! no order-leaking `HashMap` iteration in sim crates. It is
//! deliberately dependency-free (std only): a small Rust lexer
//! ([`lexer`]) feeds a scope pass ([`engine`]) that tracks `fn` items
//! and `#[cfg(test)]` regions, and rules match token sequences in that
//! annotated stream, so comments and string literals can never
//! false-positive. On top of the token engine sits an interprocedural
//! layer: a workspace symbol table ([`symbols`]) and a conservative
//! call graph ([`callgraph`]) power the transitive reachability rules —
//! hot paths must not *reach* allocation (CRP014), serving entry points
//! must not reach panics (CRP015), and wall-clock reads must not leak
//! out of the sanctioned perf layer through any call chain (CRP016) —
//! with the offending chain printed on each finding.
//!
//! Every diagnostic carries a rule ID (`CRP001`..`CRP012`), a severity,
//! and a `file:line` location. A finding can be suppressed at the site
//! with a `// crp-lint: allow(CRP00x) — <justification>` comment on the
//! same line or the line directly above; the justification text after
//! the closing paren is mandatory, and markers that no longer suppress
//! anything are themselves flagged (CRP012). Error counts are ratcheted
//! against the committed `LINT_BASELINE.json` ([`baseline`]) so known
//! debt lands green while new debt fails.

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod lint;
pub mod scrub;
pub mod symbols;

pub use baseline::{Baseline, RatchetOutcome};
pub use lint::{
    lint_files, lint_root, lint_root_report, lint_source, read_workspace_sources, Diagnostic,
    GraphReport, LintReport, Rule, Severity, RULES,
};
