//! Workspace static analysis for the CRP reproduction.
//!
//! `crp-xtask lint` walks every Rust source file in the workspace and
//! enforces the project's determinism and robustness rules — no panicky
//! `unwrap`/`expect` in library code, no nondeterministic randomness, no
//! NaN-unsafe float ordering, no wall-clock reads in simulation crates,
//! no stray stdout printing from libraries. It is deliberately
//! dependency-free (std only): a token-level scrubber removes comments
//! and string literals so substring rules don't false-positive, and a
//! brace-matching pass locates `#[cfg(test)]` regions so test code is
//! exempt from the library-only rules.
//!
//! Every diagnostic carries a rule ID (`CRP001`..`CRP005`), a severity,
//! and a `file:line` location. A finding can be suppressed at the site
//! with a `// crp-lint: allow(CRP00x)` comment on the same line or the
//! line directly above — the escape hatch for the handful of places
//! where a panic genuinely is the documented contract.

pub mod lint;
pub mod scrub;

pub use lint::{lint_root, lint_source, Diagnostic, Rule, Severity, RULES};
