//! Lint fixture: integration tests are harness code — no library rules.

#[test]
fn harness_code_may_unwrap() {
    Some(1u32).unwrap();
}
