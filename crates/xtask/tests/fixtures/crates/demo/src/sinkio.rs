//! Fixture: direct file I/O from library code — CRP006 territory.

/// Writes telemetry straight to disk (flagged).
pub fn dump(path: &str, data: &str) {
    let _ = std::fs::write(path, data);
}

/// Opens a log file by hand (flagged).
pub fn open_log(path: &str) {
    let _ = std::fs::File::create(path);
}

/// Sanctioned escape hatch with a marker (suppressed).
pub fn allowed(path: &str) {
    let _ = std::fs::File::create(path); // crp-lint: allow(CRP006) — crash-dump escape hatch
}
