//! Fixture: stale allow markers (CRP012). A marker that suppresses
//! nothing is debt; one that self-lists CRP012 is intentionally kept.

/// The marker below suppresses a real finding (marker is live).
pub fn justified(v: Option<u32>) -> u32 {
    // crp-lint: allow(CRP001) — demo fixture exercises the suppression path
    v.unwrap()
}

/// The marker below covers nothing — CRP001 never fires here (flagged).
pub fn drifted(v: Option<u32>) -> u32 {
    // crp-lint: allow(CRP001) — this justification went stale after a refactor
    v.unwrap_or(0)
}

/// Self-listing CRP012 documents an intentionally retained marker.
pub fn retained(v: Option<u32>) -> u32 {
    // crp-lint: allow(CRP001, CRP012) — kept for an upcoming change
    v.unwrap_or(1)
}

/// A transitive-rule marker covering neither a call edge nor a sink is
/// just as stale as a body-local one (flagged).
pub fn transitively_drifted(v: u32) -> u32 {
    // crp-lint: allow(CRP014) — went stale: the helper no longer allocates
    v + 1
}
