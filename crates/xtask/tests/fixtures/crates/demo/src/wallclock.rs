//! Lint fixture: wall-clock time outside the sanctioned perf layer
//! (CRP007) — demo is neither crp-bench, crp-eval, nor telemetry::profile.

use std::time::SystemTime;

pub fn leak() -> SystemTime {
    SystemTime::now()
}

pub fn sanctioned() -> SystemTime {
    // startup timestamp reviewed: crp-lint: allow(CRP007)
    SystemTime::now()
}
