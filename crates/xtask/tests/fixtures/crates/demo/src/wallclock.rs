//! Lint fixture: wall-clock time outside the sanctioned perf layer
//! (CRP007) — demo is neither crp-bench, crp-eval, nor telemetry::profile.

use std::time::SystemTime;

pub fn leak() -> SystemTime {
    SystemTime::now()
}

pub fn sanctioned() -> SystemTime {
    // crp-lint: allow(CRP007) — startup timestamp reviewed, never enters sim state
    SystemTime::now()
}
