//! Lint fixture: binary entry points are allowed to print.

fn main() {
    println!("binaries may print");
}
