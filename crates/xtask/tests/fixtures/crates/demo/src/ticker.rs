//! Fixture: wall-clock taint across files (CRP016) — `fetch` reaches
//! `SystemTime::now` through wallclock.rs without touching the clock
//! itself.

/// Reaches the wall clock transitively (flagged).
pub fn fetch() -> bool {
    crate::wallclock::leak().elapsed().is_ok()
}

/// Same chain with a justified edge (suppressed).
pub fn fetch_justified() -> bool {
    // crp-lint: allow(CRP016) — fixture: reviewed wall-clock use, never enters sim state
    crate::wallclock::leak().elapsed().is_ok()
}
