//! Fixture: a causal-trace hook outside the sanctioned sites.

pub fn sneaky(t: u64) {
    crp_telemetry::trace::stage_at(t, "demo.sneaky");
}
