//! Fixture: a memory-domain boundary outside the sanctioned sites.

pub fn rogue() {
    crp_telemetry::mem_domain!("demo.rogue");
}

#[cfg(test)]
mod tests {
    #[test]
    fn domains_in_tests_are_fine() {
        crp_telemetry::mem_domain!("demo.test");
    }
}
