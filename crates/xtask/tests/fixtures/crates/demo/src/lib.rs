//! Lint fixture: deliberate violations, one per numbered line below.

pub fn naked_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn seeded_badly() -> u64 {
    let rng = thread_rng();
    rng
}

pub fn nan_unsafe(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn noisy() {
    println!("library crates must stay quiet");
}

pub fn justified(x: Option<u32>) -> u32 {
    x.expect("fixture: suppressed by same-line marker") // crp-lint: allow(CRP001) — fixture
}

pub fn justified_above(x: Option<u32>) -> u32 {
    // crp-lint: allow(CRP001) — fixture, preceding-line marker
    x.expect("fixture: suppressed by preceding-line marker")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
