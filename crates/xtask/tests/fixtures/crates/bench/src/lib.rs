//! Lint fixture (negative): crp-bench is a sanctioned wall-clock crate,
//! so CRP007 must stay silent here.

use std::time::Instant;

pub fn sample_ns() -> u128 {
    Instant::now().elapsed().as_nanos()
}
