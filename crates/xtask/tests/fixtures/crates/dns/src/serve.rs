//! Fixture: panic-freedom on the serving path (CRP010) — `crp-dns`
//! answers live queries, so unchecked indexing and `panic!` are debt.

/// Indexes straight into the answer list (flagged).
pub fn first(answers: &[u32]) -> u32 {
    answers[0]
}

/// Checked access (not flagged).
pub fn first_checked(answers: &[u32]) -> Option<u32> {
    answers.first().copied()
}

/// Reviewed invariants carry justifications (suppressed).
pub fn last(answers: &[u32]) -> u32 {
    if answers.is_empty() {
        // crp-lint: allow(CRP010) — empty sets are rejected at ingress
        panic!("serve: empty answer set");
    }
    answers[answers.len() - 1] // crp-lint: allow(CRP010) — bounds proven by the guard above
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_index() {
        let v = vec![1u32, 2];
        assert_eq!(v[1], 2);
        assert_eq!(super::first(&v), 1);
    }
}
