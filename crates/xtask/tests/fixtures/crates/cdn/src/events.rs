//! Fixture: trace hooks at the sanctioned scripted-event site (no
//! CRP008 — applied events mint causal traces by design).

pub fn apply(t: u64) {
    let id = crp_telemetry::trace::mint(&[t]);
    crp_telemetry::trace::begin(id, t, "cdn.event");
}
