//! Fixture: order-dependent hash iteration in a sim crate (CRP011).
//! `crp-netsim` output must be replay-stable, so hash-order loops leak
//! nondeterminism.

use std::collections::HashMap;

/// Walks the map in hash order (flagged).
pub fn hash_order_walk(latencies: &HashMap<u32, u64>) -> u64 {
    let mut acc = 0;
    for (_, v) in latencies.iter() {
        acc += v;
    }
    acc
}

/// Sorts before anything depends on the order (not flagged).
pub fn stable_keys(latencies: &HashMap<u32, u64>) -> Vec<u32> {
    let mut keys: Vec<u32> = latencies.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Order provably cannot escape (suppressed).
pub fn max_latency(latencies: &HashMap<u32, u64>) -> u64 {
    // crp-lint: allow(CRP011) — max() is order-insensitive
    latencies.values().copied().fold(0, u64::max)
}
