//! Lint fixture (negative): crp-eval is a sanctioned wall-clock crate,
//! so CRP007 must stay silent here.

use std::time::Instant;

pub fn started() -> Instant {
    Instant::now()
}
