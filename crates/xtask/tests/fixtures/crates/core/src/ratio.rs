//! Fixture: allocation discipline inside declared hot paths (CRP009).
//! This relative path (`crates/core/src/ratio.rs`) is on the real
//! hot-path list, so `from_counts`/`get` here are hot functions.

/// Hot path: allocates a fresh buffer on every call (flagged).
pub fn from_counts(n: usize) -> usize {
    let mut scratch = Vec::new();
    scratch.resize(n, 0u64);
    scratch.len()
}

/// Hot path with a justified allocation (suppressed).
pub fn get(n: usize) -> usize {
    // crp-lint: allow(CRP009) — the map owns its key; this copy is irreducible
    let owned = String::from("key");
    owned.len() + n
}

/// Not a declared hot path: allocation is fine (not flagged).
pub fn rebuild(n: usize) -> Vec<u64> {
    let mut fresh = Vec::new();
    fresh.resize(n, 0);
    fresh
}

/// Hot path reaching an allocating helper across files (CRP014).
pub fn dot(n: usize) -> usize {
    crate::scratch::grow(n).len()
}

/// Same chain with a justified edge (suppressed).
pub fn l2_norm(n: usize) -> usize {
    // crp-lint: allow(CRP014) — fixture: scratch reuse planned, chain reviewed
    crate::scratch::grow(n).len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate_freely() {
        assert_eq!(super::from_counts(Vec::new().len()), 0);
    }
}
