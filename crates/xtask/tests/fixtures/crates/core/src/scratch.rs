//! Fixture: an allocating helper with no hot path of its own. The
//! CRP014 debt lands on the hot callers in ratio.rs that reach it
//! through the call graph.

/// Allocates a fresh buffer; hot callers hold the CRP014 finding.
pub fn grow(n: usize) -> Vec<u64> {
    let mut buf = Vec::new();
    buf.resize(n, 0);
    buf
}
