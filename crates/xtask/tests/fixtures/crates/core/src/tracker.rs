//! Fixture: trace hooks on the sanctioned ingest path (no CRP008).

pub fn ingest(t: u64) {
    crp_telemetry::trace::stage_at(t, "core.tracker.record");
    crp_telemetry::trace::resume(0, t, "core.ratio_map");
}
