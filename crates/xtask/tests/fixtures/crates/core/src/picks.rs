//! Fixture: a panic-capable helper with a justified body-local marker.
//! The CRP010 debt is suppressed here, but the indexing still taints
//! serving entry points that reach it (CRP015 in service.rs).

/// Panics on empty input; serving callers hold the CRP015 finding.
pub fn strongest(xs: &[u32]) -> u32 {
    // crp-lint: allow(CRP010) — fixture: callers guarantee non-empty input
    xs[0]
}
