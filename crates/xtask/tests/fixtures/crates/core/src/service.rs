//! Fixture: serving entry points reaching a panic-capable helper
//! across a file boundary (CRP015). This relative path is on the real
//! serving-entry list, so `closest`/`similarity` are CRP015 roots.

/// Serving entry reaching the panicking helper in picks.rs (flagged).
pub fn closest(xs: &[u32]) -> u32 {
    crate::picks::strongest(xs)
}

/// Same chain with a documented allow (suppressed).
pub fn similarity(xs: &[u32]) -> u32 {
    // crp-lint: allow(CRP015) — fixture: chain reviewed, inputs validated upstream
    crate::picks::strongest(xs)
}
