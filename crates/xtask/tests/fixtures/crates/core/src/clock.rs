//! Lint fixture: wall-clock time inside a simulation crate.

use std::time::Instant;

pub fn wall_clock_in_sim_path() -> Instant {
    Instant::now()
}
