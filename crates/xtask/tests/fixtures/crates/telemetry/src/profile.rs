//! Lint fixture (negative): the telemetry profile module is the one
//! sim-crate file allowed to read the wall clock — exempt from both
//! CRP004 and CRP007.

use std::time::Instant;

pub fn scope_clock() -> Instant {
    Instant::now()
}
