//! Fixture: a memory-domain boundary at the sanctioned change-detector
//! scan (no CRP013 — the scan is a reviewed subsystem border).

pub fn scan() {
    crp_telemetry::mem_domain!("audit.detect");
}
