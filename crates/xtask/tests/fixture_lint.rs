//! End-to-end tests for the lint pass, driven over the fixture tree in
//! `tests/fixtures/` (which the workspace walk itself skips).

use crp_xtask::{lint_root, Severity};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// The complete expected finding set for the fixture tree, as
/// `(path, line, rule)` tuples.
const EXPECTED: &[(&str, usize, &str)] = &[
    ("crates/core/src/clock.rs", 3, "CRP004"),
    ("crates/core/src/clock.rs", 3, "CRP007"),
    ("crates/core/src/clock.rs", 6, "CRP004"),
    ("crates/core/src/clock.rs", 6, "CRP007"),
    ("crates/demo/src/lib.rs", 4, "CRP001"),
    ("crates/demo/src/lib.rs", 8, "CRP002"),
    ("crates/demo/src/lib.rs", 13, "CRP003"),
    ("crates/demo/src/lib.rs", 17, "CRP005"),
    ("crates/demo/src/sinkio.rs", 5, "CRP006"),
    ("crates/demo/src/sinkio.rs", 10, "CRP006"),
    ("crates/demo/src/wallclock.rs", 4, "CRP007"),
    ("crates/demo/src/wallclock.rs", 7, "CRP007"),
];

#[test]
fn fixture_tree_reports_exactly_the_planted_violations() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.to_string_lossy().replace('\\', "/"), d.line, d.rule))
        .collect();
    let want: Vec<(String, usize, &str)> = EXPECTED
        .iter()
        .map(|&(f, l, r)| (f.to_owned(), l, r))
        .collect();
    assert_eq!(got, want, "full diagnostics: {diags:#?}");
}

#[test]
fn allow_markers_suppress_fixture_lines() {
    // lib.rs lines 21 and 26 carry `.expect(` calls covered by same-line
    // and preceding-line allow markers; sinkio.rs line 15 carries a
    // marker-covered `File::create`; wallclock.rs line 12 carries a
    // marker-covered `SystemTime::now`. None may appear.
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        assert!(
            !(diag.file.ends_with("lib.rs") && (diag.line == 21 || diag.line == 26)),
            "allow marker failed to suppress {diag}"
        );
        assert!(
            !(diag.file.ends_with("sinkio.rs") && diag.line == 15),
            "allow marker failed to suppress {diag}"
        );
        assert!(
            !(diag.file.ends_with("wallclock.rs") && diag.line == 12),
            "allow marker failed to suppress {diag}"
        );
    }
}

#[test]
fn severities_match_rule_definitions() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        let expected = if diag.rule == "CRP005" {
            Severity::Warning
        } else {
            Severity::Error
        };
        assert_eq!(diag.severity, expected, "severity mismatch: {diag}");
    }
}

#[test]
fn demotion_turns_every_fixture_error_into_a_warning() {
    let demoted: Vec<String> = ["CRP001", "CRP002", "CRP003", "CRP004", "CRP006", "CRP007"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let diags = lint_root(&fixtures_root(), &demoted).expect("fixture tree is readable");
    assert_eq!(diags.len(), EXPECTED.len());
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn binary_exits_nonzero_on_fixture_tree() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("run crp-xtask");
    assert!(
        !output.status.success(),
        "lint must fail on the fixture tree"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in [
        "CRP001", "CRP002", "CRP003", "CRP004", "CRP005", "CRP006", "CRP007",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in output:\n{stdout}");
    }
    assert!(stdout.contains("11 error(s), 1 warning(s)"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run crp-xtask");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "workspace must lint clean:\n{stdout}"
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn binary_rejects_unknown_options() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--bogus"])
        .output()
        .expect("run crp-xtask");
    assert_eq!(output.status.code(), Some(2));
}
