//! End-to-end tests for the lint pass, driven over the fixture tree in
//! `tests/fixtures/` (which the workspace walk itself skips).

use crp_xtask::{lint_root, Severity};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// The complete expected finding set for the fixture tree, as
/// `(path, line, rule)` tuples.
const EXPECTED: &[(&str, usize, &str)] = &[
    ("crates/core/src/clock.rs", 3, "CRP004"),
    ("crates/core/src/clock.rs", 3, "CRP007"),
    ("crates/core/src/clock.rs", 6, "CRP004"),
    ("crates/core/src/clock.rs", 6, "CRP007"),
    ("crates/core/src/ratio.rs", 7, "CRP009"),
    ("crates/demo/src/lib.rs", 4, "CRP001"),
    ("crates/demo/src/lib.rs", 8, "CRP002"),
    ("crates/demo/src/lib.rs", 13, "CRP003"),
    ("crates/demo/src/lib.rs", 17, "CRP005"),
    ("crates/demo/src/memdomain.rs", 4, "CRP013"),
    ("crates/demo/src/sinkio.rs", 5, "CRP006"),
    ("crates/demo/src/sinkio.rs", 10, "CRP006"),
    ("crates/demo/src/stale.rs", 12, "CRP012"),
    ("crates/demo/src/tracehook.rs", 4, "CRP008"),
    ("crates/demo/src/wallclock.rs", 4, "CRP007"),
    ("crates/demo/src/wallclock.rs", 7, "CRP007"),
    ("crates/dns/src/serve.rs", 6, "CRP010"),
    ("crates/netsim/src/order.rs", 10, "CRP011"),
];

#[test]
fn fixture_tree_reports_exactly_the_planted_violations() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.to_string_lossy().replace('\\', "/"), d.line, d.rule))
        .collect();
    let want: Vec<(String, usize, &str)> = EXPECTED
        .iter()
        .map(|&(f, l, r)| (f.to_owned(), l, r))
        .collect();
    assert_eq!(got, want, "full diagnostics: {diags:#?}");
}

#[test]
fn allow_markers_suppress_fixture_lines() {
    // lib.rs lines 21 and 26 carry `.expect(` calls covered by same-line
    // and preceding-line allow markers; sinkio.rs line 15 carries a
    // marker-covered `File::create`; wallclock.rs line 12 a
    // marker-covered `SystemTime::now`; ratio.rs line 15 a justified
    // hot-path allocation (CRP009); serve.rs lines 18 and 20 justified
    // panic/indexing (CRP010); order.rs line 26 a justified hash
    // iteration (CRP011). None may appear.
    let suppressed: &[(&str, &[usize])] = &[
        ("lib.rs", &[21, 26]),
        ("sinkio.rs", &[15]),
        ("wallclock.rs", &[12]),
        ("ratio.rs", &[15]),
        ("serve.rs", &[18, 20]),
        ("order.rs", &[26]),
    ];
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        for &(file, lines) in suppressed {
            assert!(
                !(diag.file.ends_with(file) && lines.contains(&diag.line)),
                "allow marker failed to suppress {diag}"
            );
        }
    }
}

#[test]
fn severities_match_rule_definitions() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        let expected = if diag.rule == "CRP005" {
            Severity::Warning
        } else {
            Severity::Error
        };
        assert_eq!(diag.severity, expected, "severity mismatch: {diag}");
    }
}

#[test]
fn demotion_turns_every_fixture_error_into_a_warning() {
    let demoted: Vec<String> = [
        "CRP001", "CRP002", "CRP003", "CRP004", "CRP006", "CRP007", "CRP008", "CRP009", "CRP010",
        "CRP011", "CRP012", "CRP013",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let diags = lint_root(&fixtures_root(), &demoted).expect("fixture tree is readable");
    assert_eq!(diags.len(), EXPECTED.len());
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn binary_exits_nonzero_on_fixture_tree() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("run crp-xtask");
    assert!(
        !output.status.success(),
        "lint must fail on the fixture tree"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in [
        "CRP001", "CRP002", "CRP003", "CRP004", "CRP005", "CRP006", "CRP007", "CRP008", "CRP009",
        "CRP010", "CRP011", "CRP012", "CRP013",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in output:\n{stdout}");
    }
    assert!(stdout.contains("17 error(s), 1 warning(s)"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run crp-xtask");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "workspace must lint clean:\n{stdout}"
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn update_baseline_then_ratchet_passes_and_reports_deltas() {
    let baseline =
        std::env::temp_dir().join(format!("crp_fixture_baseline_{}.json", std::process::id()));
    let update = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .arg("--baseline")
        .arg(&baseline)
        .arg("--update-baseline")
        .output()
        .expect("run crp-xtask");
    assert!(update.status.success(), "--update-baseline must exit green");

    // Re-linting at the recorded allowances passes: every error is
    // absorbed and the delta table shows the buckets at baseline.
    let ratcheted = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run crp-xtask");
    let stdout = String::from_utf8_lossy(&ratcheted.stdout);
    let _ = std::fs::remove_file(&baseline);
    assert!(
        ratcheted.status.success(),
        "ratcheted run must pass:\n{stdout}"
    );
    assert!(stdout.contains("at baseline"), "{stdout}");
    assert!(stdout.contains("0 error(s), 1 warning(s)"), "{stdout}");
    assert!(stdout.contains("baselined)"), "{stdout}");
}

#[test]
fn json_report_carries_diagnostics_and_ratchet_rows() {
    let report_path =
        std::env::temp_dir().join(format!("crp_fixture_report_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--no-baseline", "--root"])
        .arg(fixtures_root())
        .arg("--json")
        .arg(&report_path)
        .output()
        .expect("run crp-xtask");
    assert!(!output.status.success());
    let text = std::fs::read_to_string(&report_path).expect("report written");
    let _ = std::fs::remove_file(&report_path);
    let doc = crp_xtask::json::parse(&text).expect("report parses");
    assert_eq!(doc.get("errors").and_then(|v| v.as_u64()), Some(17));
    assert_eq!(doc.get("warnings").and_then(|v| v.as_u64()), Some(1));
    let diags = match doc.get("diagnostics") {
        Some(crp_xtask::json::Value::Arr(items)) => items.len(),
        other => panic!("diagnostics must be an array, got {other:?}"),
    };
    assert_eq!(diags, EXPECTED.len());
    // Strict mode has no ratchet rows.
    assert!(matches!(
        doc.get("ratchet"),
        Some(crp_xtask::json::Value::Arr(rows)) if rows.is_empty()
    ));
}

#[test]
fn binary_rejects_unknown_options() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--bogus"])
        .output()
        .expect("run crp-xtask");
    assert_eq!(output.status.code(), Some(2));
}
