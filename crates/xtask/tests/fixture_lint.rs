//! End-to-end tests for the lint pass, driven over the fixture tree in
//! `tests/fixtures/` (which the workspace walk itself skips).

use crp_xtask::{lint_root, Severity};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// The complete expected finding set for the fixture tree, as
/// `(path, line, rule)` tuples.
const EXPECTED: &[(&str, usize, &str)] = &[
    ("crates/core/src/clock.rs", 3, "CRP004"),
    ("crates/core/src/clock.rs", 3, "CRP007"),
    ("crates/core/src/clock.rs", 6, "CRP004"),
    ("crates/core/src/clock.rs", 6, "CRP007"),
    ("crates/core/src/ratio.rs", 7, "CRP009"),
    ("crates/core/src/ratio.rs", 28, "CRP014"),
    ("crates/core/src/service.rs", 7, "CRP015"),
    ("crates/demo/src/lib.rs", 4, "CRP001"),
    ("crates/demo/src/lib.rs", 8, "CRP002"),
    ("crates/demo/src/lib.rs", 13, "CRP003"),
    ("crates/demo/src/lib.rs", 17, "CRP005"),
    ("crates/demo/src/memdomain.rs", 4, "CRP013"),
    ("crates/demo/src/sinkio.rs", 5, "CRP006"),
    ("crates/demo/src/sinkio.rs", 10, "CRP006"),
    ("crates/demo/src/stale.rs", 12, "CRP012"),
    ("crates/demo/src/stale.rs", 25, "CRP012"),
    ("crates/demo/src/ticker.rs", 7, "CRP016"),
    ("crates/demo/src/tracehook.rs", 4, "CRP008"),
    ("crates/demo/src/wallclock.rs", 4, "CRP007"),
    ("crates/demo/src/wallclock.rs", 7, "CRP007"),
    ("crates/dns/src/serve.rs", 6, "CRP010"),
    ("crates/netsim/src/order.rs", 10, "CRP011"),
];

#[test]
fn fixture_tree_reports_exactly_the_planted_violations() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    let got: Vec<(String, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.to_string_lossy().replace('\\', "/"), d.line, d.rule))
        .collect();
    let want: Vec<(String, usize, &str)> = EXPECTED
        .iter()
        .map(|&(f, l, r)| (f.to_owned(), l, r))
        .collect();
    assert_eq!(got, want, "full diagnostics: {diags:#?}");
}

#[test]
fn allow_markers_suppress_fixture_lines() {
    // lib.rs lines 21 and 26 carry `.expect(` calls covered by same-line
    // and preceding-line allow markers; sinkio.rs line 15 carries a
    // marker-covered `File::create`; wallclock.rs line 12 a
    // marker-covered `SystemTime::now`; ratio.rs line 15 a justified
    // hot-path allocation (CRP009); serve.rs lines 18 and 20 justified
    // panic/indexing (CRP010); order.rs line 26 a justified hash
    // iteration (CRP011). The transitive rules are silenced the same
    // way: ratio.rs line 34 carries a justified CRP014 call edge,
    // service.rs line 13 a justified CRP015 edge, ticker.rs line 13 a
    // justified CRP016 edge, and picks.rs line 8 a justified CRP010
    // indexing that still taints CRP015 callers. None may appear.
    let suppressed: &[(&str, &[usize])] = &[
        ("lib.rs", &[21, 26]),
        ("sinkio.rs", &[15]),
        ("wallclock.rs", &[12]),
        ("ratio.rs", &[15, 34]),
        ("serve.rs", &[18, 20]),
        ("order.rs", &[26]),
        ("service.rs", &[13]),
        ("ticker.rs", &[13]),
        ("picks.rs", &[8]),
    ];
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        for &(file, lines) in suppressed {
            assert!(
                !(diag.file.ends_with(file) && lines.contains(&diag.line)),
                "allow marker failed to suppress {diag}"
            );
        }
    }
}

#[test]
fn sanctioned_sites_exempt_change_detection_hooks() {
    // The fixture tree plants a trace-minting hook at the scripted-event
    // site (crates/cdn/src/events.rs) and a mem_domain! at the detector
    // scan (crates/audit/src/detect.rs) — both on the sanctioned lists,
    // so neither may produce a CRP008/CRP013 finding.
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        assert!(
            !diag.file.ends_with("cdn/src/events.rs")
                && !diag.file.ends_with("audit/src/detect.rs"),
            "sanctioned site flagged: {diag}"
        );
    }
}

#[test]
fn severities_match_rule_definitions() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    for diag in &diags {
        let expected = if diag.rule == "CRP005" {
            Severity::Warning
        } else {
            Severity::Error
        };
        assert_eq!(diag.severity, expected, "severity mismatch: {diag}");
    }
}

#[test]
fn demotion_turns_every_fixture_error_into_a_warning() {
    let demoted: Vec<String> = [
        "CRP001", "CRP002", "CRP003", "CRP004", "CRP006", "CRP007", "CRP008", "CRP009", "CRP010",
        "CRP011", "CRP012", "CRP013", "CRP014", "CRP015", "CRP016",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let diags = lint_root(&fixtures_root(), &demoted).expect("fixture tree is readable");
    assert_eq!(diags.len(), EXPECTED.len());
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn binary_exits_nonzero_on_fixture_tree() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("run crp-xtask");
    assert!(
        !output.status.success(),
        "lint must fail on the fixture tree"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in [
        "CRP001", "CRP002", "CRP003", "CRP004", "CRP005", "CRP006", "CRP007", "CRP008", "CRP009",
        "CRP010", "CRP011", "CRP012", "CRP013", "CRP014", "CRP015", "CRP016",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in output:\n{stdout}");
    }
    assert!(stdout.contains("call chain:"), "{stdout}");
    assert!(stdout.contains("21 error(s), 1 warning(s)"), "{stdout}");
}

#[test]
fn binary_exits_zero_on_the_workspace() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run crp-xtask");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "workspace must lint clean:\n{stdout}"
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

#[test]
fn update_baseline_then_ratchet_passes_and_reports_deltas() {
    let baseline =
        std::env::temp_dir().join(format!("crp_fixture_baseline_{}.json", std::process::id()));
    let update = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .arg("--baseline")
        .arg(&baseline)
        .arg("--update-baseline")
        .output()
        .expect("run crp-xtask");
    assert!(update.status.success(), "--update-baseline must exit green");

    // Re-linting at the recorded allowances passes: every error is
    // absorbed and the delta table shows the buckets at baseline.
    let ratcheted = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--root"])
        .arg(fixtures_root())
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run crp-xtask");
    let stdout = String::from_utf8_lossy(&ratcheted.stdout);
    let _ = std::fs::remove_file(&baseline);
    assert!(
        ratcheted.status.success(),
        "ratcheted run must pass:\n{stdout}"
    );
    assert!(stdout.contains("at baseline"), "{stdout}");
    assert!(stdout.contains("0 error(s), 1 warning(s)"), "{stdout}");
    assert!(stdout.contains("baselined)"), "{stdout}");
}

#[test]
fn json_report_carries_diagnostics_and_ratchet_rows() {
    let report_path =
        std::env::temp_dir().join(format!("crp_fixture_report_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--no-baseline", "--root"])
        .arg(fixtures_root())
        .arg("--json")
        .arg(&report_path)
        .output()
        .expect("run crp-xtask");
    assert!(!output.status.success());
    let text = std::fs::read_to_string(&report_path).expect("report written");
    let _ = std::fs::remove_file(&report_path);
    let doc = crp_xtask::json::parse(&text).expect("report parses");
    assert_eq!(doc.get("errors").and_then(|v| v.as_u64()), Some(21));
    assert_eq!(doc.get("warnings").and_then(|v| v.as_u64()), Some(1));
    let diags = match doc.get("diagnostics") {
        Some(crp_xtask::json::Value::Arr(items)) => items.len(),
        other => panic!("diagnostics must be an array, got {other:?}"),
    };
    assert_eq!(diags, EXPECTED.len());
    // Strict mode has no ratchet rows.
    assert!(matches!(
        doc.get("ratchet"),
        Some(crp_xtask::json::Value::Arr(rows)) if rows.is_empty()
    ));
}

#[test]
fn reachability_chains_render_across_file_boundaries() {
    let diags = lint_root(&fixtures_root(), &[]).expect("fixture tree is readable");
    let chain_of = |rule: &str| -> &str {
        &diags
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("{rule} must fire on the fixture tree"))
            .chain
    };
    let alloc = chain_of("CRP014");
    assert!(
        alloc.contains("dot (crates/core/src/ratio.rs:27)"),
        "{alloc}"
    );
    assert!(
        alloc.contains("grow (crates/core/src/scratch.rs:6)"),
        "{alloc}"
    );
    assert!(
        alloc.contains("`Vec::new` (crates/core/src/scratch.rs:7)"),
        "{alloc}"
    );
    let panic = chain_of("CRP015");
    assert!(
        panic.contains("closest (crates/core/src/service.rs:6)"),
        "{panic}"
    );
    assert!(
        panic.contains("strongest (crates/core/src/picks.rs:6)"),
        "{panic}"
    );
    assert!(
        panic.contains("`[...]` (crates/core/src/picks.rs:8)"),
        "{panic}"
    );
    let clock = chain_of("CRP016");
    assert!(
        clock.contains("fetch (crates/demo/src/ticker.rs:6)"),
        "{clock}"
    );
    assert!(
        clock.contains("leak (crates/demo/src/wallclock.rs:6)"),
        "{clock}"
    );
    assert!(
        clock.contains("`SystemTime::now` (crates/demo/src/wallclock.rs:7)"),
        "{clock}"
    );
}

#[test]
fn graph_export_writes_nodes_edges_unresolved_and_chains() {
    let graph_path =
        std::env::temp_dir().join(format!("crp_fixture_graph_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--no-baseline", "--root"])
        .arg(fixtures_root())
        .arg("--graph")
        .arg(&graph_path)
        .output()
        .expect("run crp-xtask");
    // The fixture tree still fails the lint, but the graph is written
    // first so CI can upload it from failing runs too.
    assert!(!output.status.success());
    let text = std::fs::read_to_string(&graph_path).expect("graph written");
    let _ = std::fs::remove_file(&graph_path);
    let doc = crp_xtask::json::parse(&text).expect("graph parses");
    let arr_len = |key: &str| match doc.get(key) {
        Some(crp_xtask::json::Value::Arr(items)) => items.len(),
        other => panic!("{key} must be an array, got {other:?}"),
    };
    assert!(arr_len("nodes") > 0);
    assert!(arr_len("edges") > 0);
    // The unresolved bucket is reported, never silently dropped: the
    // fixture tree calls into crates outside itself (thread_rng, trace
    // hooks), which the conservative resolver must surface.
    assert!(arr_len("unresolved") > 0);
    assert_eq!(arr_len("chains"), 3, "one chain per CRP014/015/016 finding");
    let frac = doc
        .get("unresolved_fraction")
        .and_then(|v| v.as_f64())
        .expect("unresolved_fraction present");
    assert!((0.0..=1.0).contains(&frac));
    assert!(text.contains("dot (crates/core/src/ratio.rs:27)"), "{text}");
}

#[test]
fn max_unresolved_gate_fails_only_above_threshold() {
    // The fixture tree has a nonzero unresolved fraction (~0.07), so a
    // zero budget must fail with the gate's message...
    let strict = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--no-baseline", "--root"])
        .arg(fixtures_root())
        .args(["--max-unresolved", "0.0"])
        .output()
        .expect("run crp-xtask");
    assert!(!strict.status.success());
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(stderr.contains("exceeds --max-unresolved"), "{stderr}");

    // ...while a generous budget lets the run proceed to the ordinary
    // lint verdict (no gate message).
    let loose = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--quiet", "--no-baseline", "--root"])
        .arg(fixtures_root())
        .args(["--max-unresolved", "1.0"])
        .output()
        .expect("run crp-xtask");
    assert!(!loose.status.success(), "fixture lint errors still fail");
    let stderr = String::from_utf8_lossy(&loose.stderr);
    assert!(!stderr.contains("exceeds --max-unresolved"), "{stderr}");
}

#[test]
fn binary_rejects_unknown_options() {
    let output = Command::new(env!("CARGO_BIN_EXE_crp-xtask"))
        .args(["lint", "--bogus"])
        .output()
        .expect("run crp-xtask");
    assert_eq!(output.status.code(), Some(2));
}
