//! Property-based tests for the Meridian baseline.

use crp_meridian::rings::RingGeometry;
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{NetworkBuilder, PopulationSpec, Rtt, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_index_is_monotone_in_latency(a in 0.1f64..5_000.0, b in 0.1f64..5_000.0) {
        let g = RingGeometry::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            g.ring_of(Rtt::from_millis(lo)) <= g.ring_of(Rtt::from_millis(hi)),
            "ring index must grow with latency"
        );
    }

    #[test]
    fn ring_index_is_bounded(ms in 0.0f64..1.0e9) {
        let g = RingGeometry::default();
        prop_assert!(g.ring_of(Rtt::from_millis(ms)) < g.total_rings());
    }

    #[test]
    fn queries_always_return_members_or_faulty_entries(
        seed in 0u64..12,
        n_members in 8usize..24,
        t_mins in 0u64..3_000,
    ) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(3)
            .build();
        let members = net.add_population(&PopulationSpec::planetlab(n_members));
        let clients = net.add_population(&PopulationSpec::dns_servers(2));
        let overlay = MeridianOverlay::build(
            &net,
            &members,
            MeridianConfig { seed, ..MeridianConfig::default() },
            FaultPlan::none(),
        );
        let t = SimTime::from_mins(t_mins);
        for &entry in members.iter().take(4) {
            let r = overlay.closest_node_query(&net, entry, clients[0], t);
            prop_assert!(members.contains(&r.selected));
            prop_assert!(r.probes > 0, "queries must measure");
            // The reported RTT is the true RTT of the selected node.
            prop_assert_eq!(r.selected_rtt, net.rtt(r.selected, clients[0], t));
        }
    }

    #[test]
    fn query_result_never_worse_than_entry_node(
        seed in 0u64..12,
        t_mins in 0u64..2_000,
    ) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(3)
            .build();
        let members = net.add_population(&PopulationSpec::planetlab(16));
        let clients = net.add_population(&PopulationSpec::dns_servers(1));
        let overlay = MeridianOverlay::build(
            &net,
            &members,
            MeridianConfig { seed, ..MeridianConfig::default() },
            FaultPlan::none(),
        );
        let t = SimTime::from_mins(t_mins);
        let entry = members[0];
        let r = overlay.closest_node_query(&net, entry, clients[0], t);
        let entry_rtt = net.rtt(entry, clients[0], t);
        prop_assert!(
            r.selected_rtt <= entry_rtt,
            "search must not move away: selected {} vs entry {}",
            r.selected_rtt,
            entry_rtt
        );
    }

    #[test]
    fn never_joined_nodes_are_excluded_from_membership(
        seed in 0u64..8,
        kill in 0usize..6,
    ) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(3)
            .transit_per_region(1)
            .stubs_per_region(3)
            .build();
        let members = net.add_population(&PopulationSpec::planetlab(12));
        let plan = FaultPlan::none().with_never_joined(members[kill]);
        let overlay = MeridianOverlay::build(&net, &members, MeridianConfig::default(), plan);
        prop_assert_eq!(overlay.member_count(), 11);
    }
}
