//! Concentric latency rings.
//!
//! A Meridian node organizes the peers it knows into exponentially
//! growing latency rings: ring `i` holds peers whose RTT lies in
//! `[α·s^(i-1), α·s^i)`, with ring 0 covering `[0, α)` and the outermost
//! ring unbounded. Each ring keeps at most `k` members; when a ring
//! overflows, Meridian retains the subset that maximizes the hypervolume
//! of the polytope the members span. Computing that exactly requires the
//! full inter-member coordinate embedding, so — as is standard in
//! Meridian re-implementations — we substitute the greedy max–min
//! diversity heuristic over inter-member RTTs, which optimizes the same
//! objective (geographically spread ring members).

use crp_netsim::{HostId, Rtt};
use serde::{Deserialize, Serialize};

/// Ring geometry and capacity parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingGeometry {
    /// Inner radius of ring 1 in milliseconds (`α`).
    pub alpha_ms: f64,
    /// Exponential growth factor between rings (`s`).
    pub base: f64,
    /// Number of bounded rings; everything beyond falls in the final
    /// unbounded ring.
    pub ring_count: usize,
    /// Maximum members retained per ring (`k`).
    pub capacity: usize,
}

impl Default for RingGeometry {
    fn default() -> Self {
        RingGeometry {
            alpha_ms: 1.0,
            base: 2.0,
            ring_count: 9,
            capacity: 8,
        }
    }
}

impl RingGeometry {
    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is degenerate (non-positive α, base ≤ 1,
    /// zero rings or capacity).
    pub fn validate(&self) {
        assert!(self.alpha_ms > 0.0, "alpha must be positive");
        assert!(self.base > 1.0, "ring base must exceed 1");
        assert!(self.ring_count > 0, "need at least one ring");
        assert!(self.capacity > 0, "rings must hold at least one member");
    }

    /// The ring index for a peer at the given RTT.
    pub fn ring_of(&self, rtt: Rtt) -> usize {
        let ms = rtt.millis();
        if ms < self.alpha_ms {
            return 0;
        }
        let idx = (ms / self.alpha_ms).log(self.base).floor() as usize + 1;
        idx.min(self.ring_count)
    }

    /// Total number of rings including the unbounded outermost one.
    pub fn total_rings(&self) -> usize {
        self.ring_count + 1
    }
}

/// One node's ring membership: peers bucketed by latency ring, each with
/// the RTT measured when they were inserted.
#[derive(Clone, Debug, Default)]
pub struct RingSet {
    rings: Vec<Vec<(HostId, Rtt)>>,
}

impl RingSet {
    /// Creates an empty ring set for the given geometry.
    pub fn new(geometry: &RingGeometry) -> Self {
        RingSet {
            rings: vec![Vec::new(); geometry.total_rings()],
        }
    }

    /// Inserts (or refreshes) a peer at the given measured RTT. If the
    /// target ring is full, the new member set is thinned back to
    /// capacity with the max–min diversity rule using `inter_rtt` for
    /// member-to-member distances.
    ///
    /// Returns `true` if the peer is a ring member afterwards.
    pub fn insert<F>(
        &mut self,
        geometry: &RingGeometry,
        peer: HostId,
        rtt: Rtt,
        mut inter_rtt: F,
    ) -> bool
    where
        F: FnMut(HostId, HostId) -> Rtt,
    {
        let ring_idx = geometry.ring_of(rtt);
        // Drop any stale copy of this peer (it may have drifted rings).
        for ring in &mut self.rings {
            ring.retain(|(p, _)| *p != peer);
        }
        let ring = &mut self.rings[ring_idx];
        ring.push((peer, rtt));
        if ring.len() <= geometry.capacity {
            return true;
        }
        let kept = diversity_subset(ring, geometry.capacity, &mut inter_rtt);
        *ring = kept;
        self.rings[ring_idx].iter().any(|(p, _)| *p == peer)
    }

    /// All peers across all rings.
    pub fn all_members(&self) -> impl Iterator<Item = (HostId, Rtt)> + '_ {
        self.rings.iter().flatten().copied()
    }

    /// Members of the ring containing `rtt` plus the two adjacent rings —
    /// the candidate set Meridian probes during a query for a target at
    /// that latency.
    pub fn near_ring_members(&self, geometry: &RingGeometry, rtt: Rtt) -> Vec<(HostId, Rtt)> {
        let idx = geometry.ring_of(rtt);
        let lo = idx.saturating_sub(1);
        let hi = (idx + 1).min(self.rings.len() - 1);
        self.rings[lo..=hi].iter().flatten().copied().collect()
    }

    /// Number of peers currently tracked.
    pub fn len(&self) -> usize {
        self.rings.iter().map(Vec::len).sum()
    }

    /// Whether no peers are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of members in the ring with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is out of range for the geometry this set was
    /// created with.
    pub fn ring_len(&self, ring: usize) -> usize {
        self.rings[ring].len()
    }
}

/// Greedy max–min diversity: keep `k` members spread as far apart as
/// possible (seeded with the pair realizing the maximum distance).
fn diversity_subset<F>(members: &[(HostId, Rtt)], k: usize, inter_rtt: &mut F) -> Vec<(HostId, Rtt)>
where
    F: FnMut(HostId, HostId) -> Rtt,
{
    if members.len() <= k {
        return members.to_vec();
    }
    // Seed with the farthest pair.
    let mut best_pair = (0, 1);
    let mut best_d = Rtt::ZERO;
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            let d = inter_rtt(members[i].0, members[j].0);
            if d > best_d {
                best_d = d;
                best_pair = (i, j);
            }
        }
    }
    let mut chosen = vec![best_pair.0, best_pair.1];
    while chosen.len() < k {
        // Pick the member maximizing its minimum distance to the chosen
        // set.
        let mut best_idx = None;
        let mut best_min = Rtt::ZERO;
        for (i, (host, _)) in members.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let min_d = chosen
                .iter()
                .map(|&c| inter_rtt(*host, members[c].0))
                .min()
                .expect("chosen is non-empty"); // crp-lint: allow(CRP001) — chosen starts with one seed member, never empty
            if best_idx.is_none() || min_d > best_min {
                best_min = min_d;
                best_idx = Some(i);
            }
        }
        chosen.push(best_idx.expect("members remain")); // crp-lint: allow(CRP001) — loop runs only while unchosen members remain
    }
    chosen.sort_unstable();
    chosen.into_iter().map(|i| members[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(i: u32) -> HostId {
        // HostId has no public constructor; mint ids from a scratch
        // network shared by all ring tests.
        super::tests_support::host_id(i)
    }

    #[test]
    fn ring_of_respects_exponential_boundaries() {
        let g = RingGeometry::default(); // α=1ms, s=2
        assert_eq!(g.ring_of(Rtt::from_millis(0.5)), 0);
        assert_eq!(g.ring_of(Rtt::from_millis(1.0)), 1);
        assert_eq!(g.ring_of(Rtt::from_millis(1.9)), 1);
        assert_eq!(g.ring_of(Rtt::from_millis(2.0)), 2);
        assert_eq!(g.ring_of(Rtt::from_millis(3.9)), 2);
        assert_eq!(g.ring_of(Rtt::from_millis(4.0)), 3);
        // Beyond the last bounded ring everything lands in the outer ring.
        assert_eq!(g.ring_of(Rtt::from_millis(1e6)), g.ring_count);
    }

    #[test]
    fn insert_and_move_between_rings() {
        let g = RingGeometry::default();
        let mut rs = RingSet::new(&g);
        let flat = |_a: HostId, _b: HostId| Rtt::from_millis(10.0);
        assert!(rs.insert(&g, host(1), Rtt::from_millis(1.5), flat));
        assert_eq!(rs.ring_len(1), 1);
        // Re-inserting at a different latency moves the peer.
        assert!(rs.insert(&g, host(1), Rtt::from_millis(5.0), flat));
        assert_eq!(rs.ring_len(1), 0);
        assert_eq!(rs.ring_len(3), 1);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn overflow_keeps_capacity_and_diversity() {
        let g = RingGeometry {
            capacity: 3,
            ..RingGeometry::default()
        };
        let mut rs = RingSet::new(&g);
        // All peers in the same ring (rtt 100ms → same ring index).
        // Inter-member distance: |a-b| * 10ms, so extremes are diverse.
        let inter = |a: HostId, b: HostId| {
            let d = (a.index() as f64 - b.index() as f64).abs() * 10.0;
            Rtt::from_millis(d.max(0.1))
        };
        for i in 0..6 {
            rs.insert(&g, host(i), Rtt::from_millis(100.0), inter);
        }
        let ring = g.ring_of(Rtt::from_millis(100.0));
        assert_eq!(rs.ring_len(ring), 3);
        let members: Vec<u32> = rs.all_members().map(|(h, _)| h.index() as u32).collect();
        // The farthest pair (0, 5) must have been kept.
        assert!(members.contains(&0));
        assert!(members.contains(&5));
    }

    #[test]
    fn near_ring_members_spans_adjacent_rings() {
        let g = RingGeometry::default();
        let mut rs = RingSet::new(&g);
        let flat = |_a: HostId, _b: HostId| Rtt::from_millis(1.0);
        rs.insert(&g, host(1), Rtt::from_millis(10.0), flat); // ring 4
        rs.insert(&g, host(2), Rtt::from_millis(20.0), flat); // ring 5
        rs.insert(&g, host(3), Rtt::from_millis(100.0), flat); // ring 7
        let near = rs.near_ring_members(&g, Rtt::from_millis(16.0)); // ring 5
        let ids: Vec<u32> = near.iter().map(|(h, _)| h.index() as u32).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
        assert!(!ids.contains(&3));
    }

    #[test]
    #[should_panic(expected = "ring base")]
    fn degenerate_geometry_rejected() {
        RingGeometry {
            base: 1.0,
            ..RingGeometry::default()
        }
        .validate();
    }
}

/// Test-only helper to mint `HostId`s without a network.
#[cfg(test)]
pub(crate) mod tests_support {
    use crp_netsim::{HostId, NetworkBuilder, Region};
    use std::sync::OnceLock;

    /// Returns the `i`-th host id of a lazily-built scratch network.
    pub fn host_id(i: u32) -> HostId {
        static IDS: OnceLock<Vec<HostId>> = OnceLock::new();
        IDS.get_or_init(|| {
            let mut net = NetworkBuilder::new(0xFEED)
                .tier1_count(2)
                .transit_per_region(1)
                .stubs_per_region(1)
                .build();
            (0..64)
                .map(|j| net.add_host(Region::Europe, (1.0, 2.0), format!("t{j}")))
                .collect()
        })[i as usize]
    }
}
