//! Deployment pathologies observed in the paper's Meridian comparison.
//!
//! §V-A attributes most Meridian errors to the live deployment rather
//! than the algorithm:
//!
//! * `planetlab1.cis.upenn.edu` restarted and spent 7 hours recommending
//!   *itself* as the closest node to every query (bootstrap phase);
//! * several hosts never successfully joined the overlay during the
//!   5-day experiment and likewise answered with themselves;
//! * host pairs such as `planetlab[1,2].iii.u-tokyo.ac.jp` connected
//!   only to their colocated twin and returned themselves or the twin.
//!
//! [`FaultPlan`] injects these behaviors at query time.

use crp_netsim::{HostId, SimTime};
use std::collections::{HashMap, HashSet};

/// What a faulty node does when a query reaches it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultBehavior {
    /// Answers with itself, ignoring the request parameters.
    SelfRecommend,
    /// Answers with itself or its colocated twin.
    SiteIsolated {
        /// The only peer the node knows.
        twin: HostId,
    },
}

/// The set of injected deployment faults.
///
/// # Example
///
/// ```
/// use crp_meridian::FaultPlan;
/// use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
///
/// let mut net = NetworkBuilder::new(1).build();
/// let hosts = net.add_population(&PopulationSpec::planetlab(4));
/// let plan = FaultPlan::none()
///     .with_bootstrap_self_recommend(hosts[0], SimTime::from_hours(17))
///     .with_never_joined(hosts[1])
///     .with_site_isolated_pair(hosts[2], hosts[3]);
/// assert!(plan.behavior_at(hosts[0], SimTime::from_hours(5)).is_some());
/// assert!(plan.behavior_at(hosts[0], SimTime::from_hours(20)).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    bootstrap_until: HashMap<HostId, SimTime>,
    never_joined: HashSet<HostId>,
    site_twin: HashMap<HostId, HostId>,
}

impl FaultPlan {
    /// A plan with no faults — the idealized deployment.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Marks `node` as freshly restarted: until `until`, it recommends
    /// itself to every query.
    pub fn with_bootstrap_self_recommend(mut self, node: HostId, until: SimTime) -> Self {
        self.bootstrap_until.insert(node, until);
        crp_telemetry::counter_add("meridian.faults.planned", 1);
        self
    }

    /// Marks `node` as never having joined the overlay: it recommends
    /// itself for the whole experiment.
    pub fn with_never_joined(mut self, node: HostId) -> Self {
        self.never_joined.insert(node);
        crp_telemetry::counter_add("meridian.faults.planned", 1);
        self
    }

    /// Marks `a` and `b` as a site-isolated pair: each only knows the
    /// other.
    pub fn with_site_isolated_pair(mut self, a: HostId, b: HostId) -> Self {
        self.site_twin.insert(a, b);
        self.site_twin.insert(b, a);
        crp_telemetry::counter_add("meridian.faults.planned", 1);
        self
    }

    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.bootstrap_until.is_empty() && self.never_joined.is_empty() && self.site_twin.is_empty()
    }

    /// Hosts that answer with themselves for the entire experiment.
    pub fn never_joined(&self) -> impl Iterator<Item = HostId> + '_ {
        self.never_joined.iter().copied()
    }

    /// The fault behavior of `node` at time `t`, or `None` if the node
    /// is healthy then.
    pub fn behavior_at(&self, node: HostId, t: SimTime) -> Option<FaultBehavior> {
        if self.never_joined.contains(&node) {
            return Some(FaultBehavior::SelfRecommend);
        }
        if let Some(until) = self.bootstrap_until.get(&node) {
            if t < *until {
                return Some(FaultBehavior::SelfRecommend);
            }
        }
        if let Some(twin) = self.site_twin.get(&node) {
            return Some(FaultBehavior::SiteIsolated { twin: *twin });
        }
        None
    }

    /// A plan reproducing the density of pathologies the paper reports
    /// for its 240-node deployment, scaled to `members`: one node in
    /// bootstrap self-recommendation for the first `bootstrap_hours`,
    /// roughly 1.5% never joined, and one site-isolated pair per ~120
    /// nodes.
    pub fn paper_like(members: &[HostId], bootstrap_hours: u64) -> Self {
        let mut plan = FaultPlan::none();
        if members.is_empty() {
            return plan;
        }
        let n = members.len();
        plan = plan.with_bootstrap_self_recommend(members[0], SimTime::from_hours(bootstrap_hours));
        let never = (n as f64 * 0.015).round() as usize;
        for &m in members.iter().skip(1).take(never) {
            plan = plan.with_never_joined(m);
        }
        let pairs = n / 120;
        for p in 0..pairs {
            let a = members[(1 + never + 2 * p) % n];
            let b = members[(2 + never + 2 * p) % n];
            if a != b {
                plan = plan.with_site_isolated_pair(a, b);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn hosts(n: usize) -> Vec<HostId> {
        let mut net = NetworkBuilder::new(5)
            .tier1_count(2)
            .transit_per_region(1)
            .stubs_per_region(2)
            .build();
        net.add_population(&PopulationSpec::planetlab(n))
    }

    #[test]
    fn bootstrap_fault_expires() {
        let h = hosts(2);
        let plan = FaultPlan::none().with_bootstrap_self_recommend(h[0], SimTime::from_hours(10));
        assert_eq!(
            plan.behavior_at(h[0], SimTime::from_hours(9)),
            Some(FaultBehavior::SelfRecommend)
        );
        assert_eq!(plan.behavior_at(h[0], SimTime::from_hours(10)), None);
        assert_eq!(plan.behavior_at(h[1], SimTime::ZERO), None);
    }

    #[test]
    fn never_joined_is_permanent() {
        let h = hosts(1);
        let plan = FaultPlan::none().with_never_joined(h[0]);
        assert_eq!(
            plan.behavior_at(h[0], SimTime::from_hours(1_000)),
            Some(FaultBehavior::SelfRecommend)
        );
    }

    #[test]
    fn site_isolation_is_mutual() {
        let h = hosts(2);
        let plan = FaultPlan::none().with_site_isolated_pair(h[0], h[1]);
        assert_eq!(
            plan.behavior_at(h[0], SimTime::ZERO),
            Some(FaultBehavior::SiteIsolated { twin: h[1] })
        );
        assert_eq!(
            plan.behavior_at(h[1], SimTime::ZERO),
            Some(FaultBehavior::SiteIsolated { twin: h[0] })
        );
    }

    #[test]
    fn paper_like_plan_scales() {
        let h = hosts(240);
        let plan = FaultPlan::paper_like(&h, 17);
        assert!(!plan.is_empty());
        let faulty = h
            .iter()
            .filter(|x| plan.behavior_at(**x, SimTime::from_hours(1)).is_some())
            .count();
        assert!((3..=12).contains(&faulty), "got {faulty} faulty nodes");
    }

    #[test]
    fn empty_members_gives_empty_plan() {
        let plan = FaultPlan::paper_like(&[], 17);
        assert!(plan.is_empty());
    }
}
