//! The Meridian overlay: gossip-based membership and β-reduction
//! closest-node queries.

use crate::faults::{FaultBehavior, FaultPlan};
use crate::rings::{RingGeometry, RingSet};
use crp_netsim::{noise, HostId, Network, Rtt, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Meridian protocol parameters (SIGCOMM'05 defaults).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeridianConfig {
    /// Ring geometry and capacities.
    pub rings: RingGeometry,
    /// Query-forwarding acceptance threshold β: the query forwards to a
    /// peer only if the peer's RTT to the target is below `β ×` the
    /// current node's.
    pub beta: f64,
    /// Gossip rounds run while building the overlay.
    pub gossip_rounds: usize,
    /// Peers pushed per gossip exchange.
    pub gossip_fanout: usize,
    /// Bootstrap contacts each joining node starts with.
    pub bootstrap_contacts: usize,
    /// Seed for the randomized protocol steps.
    pub seed: u64,
}

impl Default for MeridianConfig {
    fn default() -> Self {
        MeridianConfig {
            rings: RingGeometry::default(),
            beta: 0.5,
            gossip_rounds: 8,
            gossip_fanout: 4,
            bootstrap_contacts: 3,
            seed: 0,
        }
    }
}

impl MeridianConfig {
    fn validate(&self) {
        self.rings.validate();
        assert!(
            self.beta > 0.0 && self.beta < 1.0,
            "beta must lie strictly between 0 and 1"
        );
        assert!(self.bootstrap_contacts > 0, "need bootstrap contacts");
    }
}

/// Outcome of a closest-node query.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The node Meridian recommends as closest to the target.
    pub selected: HostId,
    /// The recommending node's measured RTT from `selected` to the
    /// target at query time.
    pub selected_rtt: Rtt,
    /// Overlay hops the query traversed.
    pub hops: u32,
    /// Direct measurements issued while answering.
    pub probes: u64,
}

struct MeridianNode {
    host: HostId,
    rings: RingSet,
}

/// A built Meridian overlay over a set of member hosts.
///
/// Building runs the join + gossip phase (issuing direct measurements to
/// populate rings); queries then run the standard β-reduction search.
/// All randomness is derived from the config seed, so overlays and
/// queries are deterministic.
pub struct MeridianOverlay {
    cfg: MeridianConfig,
    nodes: Vec<MeridianNode>,
    index_of: HashMap<HostId, usize>,
    faults: FaultPlan,
    probes: AtomicU64,
}

impl std::fmt::Debug for MeridianOverlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeridianOverlay")
            .field("members", &self.nodes.len())
            .field("config", &self.cfg)
            .finish_non_exhaustive()
    }
}

const TAG_BOOTSTRAP: u64 = 0x41;
const TAG_GOSSIP: u64 = 0x42;

impl MeridianOverlay {
    /// Builds the overlay over `members`, running the gossip phase at
    /// simulation time zero. Hosts marked never-joined in `faults` stay
    /// out of the membership (they answer queries with themselves, as in
    /// the paper's deployment).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates, or if the
    /// config is invalid.
    pub fn build(
        net: &Network,
        members: &[HostId],
        cfg: MeridianConfig,
        faults: FaultPlan,
    ) -> MeridianOverlay {
        crp_telemetry::profile_scope!("meridian.build");
        cfg.validate();
        assert!(!members.is_empty(), "overlay needs members");
        let joined: Vec<HostId> = {
            let skip: Vec<HostId> = faults.never_joined().collect();
            members
                .iter()
                .copied()
                .filter(|m| !skip.contains(m))
                .collect()
        };
        let mut index_of = HashMap::new();
        let mut nodes: Vec<MeridianNode> = Vec::with_capacity(joined.len());
        for &host in &joined {
            assert!(
                index_of.insert(host, nodes.len()).is_none(),
                "duplicate overlay member {host}"
            );
            nodes.push(MeridianNode {
                host,
                rings: RingSet::new(&cfg.rings),
            });
        }

        let mut overlay = MeridianOverlay {
            cfg,
            nodes,
            index_of,
            faults,
            probes: AtomicU64::new(0),
        };
        overlay.run_join_and_gossip(net, &joined);
        overlay
    }

    fn run_join_and_gossip(&mut self, net: &Network, joined: &[HostId]) {
        let t0 = SimTime::ZERO;
        let n = joined.len();
        let seed = self.cfg.seed;

        // Planned knowledge: node index -> peers it learns about.
        let mut knowledge: Vec<Vec<HostId>> = vec![Vec::new(); n];
        for (i, _) in joined.iter().enumerate() {
            for c in 0..self.cfg.bootstrap_contacts {
                let j =
                    (noise::mix(&[seed, TAG_BOOTSTRAP, i as u64, c as u64]) % n as u64) as usize;
                if j != i {
                    knowledge[i].push(joined[j]);
                }
            }
        }
        for round in 0..self.cfg.gossip_rounds {
            let snapshot = knowledge.clone();
            for i in 0..n {
                if snapshot[i].is_empty() {
                    continue;
                }
                // Push a few known peers to one random known peer
                // (anti-entropy push).
                let pick = (noise::mix(&[seed, TAG_GOSSIP, round as u64, i as u64])
                    % snapshot[i].len() as u64) as usize;
                let target = snapshot[i][pick];
                if let Some(&ti) = self.index_of.get(&target) {
                    for f in 0..self.cfg.gossip_fanout {
                        let src = &snapshot[i];
                        let k = (noise::mix(&[seed, TAG_GOSSIP, round as u64, i as u64, f as u64])
                            % src.len() as u64) as usize;
                        let peer = src[k];
                        if peer != joined[ti] && !knowledge[ti].contains(&peer) {
                            knowledge[ti].push(peer);
                        }
                    }
                    if !knowledge[ti].contains(&joined[i]) {
                        knowledge[ti].push(joined[i]);
                    }
                }
            }
        }

        // Measure every learned peer and slot it into rings. This is
        // where Meridian's direct-measurement cost lives.
        for i in 0..n {
            let me = joined[i];
            let mut ringset = RingSet::new(&self.cfg.rings);
            for &peer in &knowledge[i] {
                if peer == me {
                    continue;
                }
                let rtt = net.rtt(me, peer, t0);
                self.probes.fetch_add(1, Ordering::Relaxed);
                let probes = &self.probes;
                ringset.insert(&self.cfg.rings, peer, rtt, |a, b| {
                    probes.fetch_add(1, Ordering::Relaxed);
                    net.rtt(a, b, t0)
                });
            }
            self.nodes[i].rings = ringset;
        }
    }

    /// Number of members that actually joined the overlay.
    pub fn member_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total direct measurements issued so far (build + queries) — the
    /// probing cost CRP avoids.
    pub fn probes_issued(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Ring occupancy of a member, for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not an overlay member.
    pub fn ring_size_of(&self, host: HostId) -> usize {
        let i = self.index_of[&host];
        self.nodes[i].rings.len()
    }

    /// Answers a closest-node query: which overlay member is nearest to
    /// `target`, starting from `entry`, at time `t`?
    ///
    /// Fault behaviors fire exactly as the paper observed: a
    /// bootstrapping or never-joined entry recommends itself; a
    /// site-isolated node answers with itself or its twin.
    pub fn closest_node_query(
        &self,
        net: &Network,
        entry: HostId,
        target: HostId,
        t: SimTime,
    ) -> QueryResult {
        crp_telemetry::profile_scope!("meridian.closest_query");
        let mut probes_before = self.probes.load(Ordering::Relaxed);
        let mut hops = 0u32;

        // Entry-node faults.
        if let Some(behavior) = self.faults.behavior_at(entry, t) {
            crp_telemetry::counter_add("meridian.faulted_entries", 1);
            if crp_telemetry::enabled() {
                let kind = match behavior {
                    FaultBehavior::SelfRecommend => "self_recommend",
                    FaultBehavior::SiteIsolated { .. } => "site_isolated",
                };
                crp_telemetry::event(
                    t.as_millis(),
                    "meridian.entry_fault",
                    &[("entry", entry.index().into()), ("kind", kind.into())],
                );
            }
            let selected = match behavior {
                FaultBehavior::SelfRecommend => entry,
                FaultBehavior::SiteIsolated { twin } => {
                    // The pair measures only each other.
                    let d_self = self.measure(net, entry, target, t);
                    let d_twin = self.measure(net, twin, target, t);
                    if d_twin < d_self {
                        twin
                    } else {
                        entry
                    }
                }
            };
            let rtt = self.measure(net, selected, target, t);
            let result = QueryResult {
                selected,
                selected_rtt: rtt,
                hops: 0,
                probes: self.probes.load(Ordering::Relaxed) - probes_before,
            };
            note_query(&result);
            return result;
        }

        // If the entry never joined (healthy but absent), fall back to
        // self-recommendation like the deployment did.
        let Some(&start_idx) = self.index_of.get(&entry) else {
            let rtt = self.measure(net, entry, target, t);
            let result = QueryResult {
                selected: entry,
                selected_rtt: rtt,
                hops: 0,
                probes: self.probes.load(Ordering::Relaxed) - probes_before,
            };
            note_query(&result);
            return result;
        };
        probes_before = self.probes.load(Ordering::Relaxed);

        let mut current = start_idx;
        let mut current_rtt = self.measure(net, self.nodes[current].host, target, t);
        let mut best = (self.nodes[current].host, current_rtt);

        loop {
            let node = &self.nodes[current];
            let candidates = node.rings.near_ring_members(&self.cfg.rings, current_rtt);
            let mut best_peer: Option<(HostId, Rtt)> = None;
            for (peer, _) in candidates {
                // Faulty peers don't respond to measurement requests
                // usefully; skip site-isolated/bootstrapping peers.
                if self.faults.behavior_at(peer, t).is_some() {
                    continue;
                }
                let d = self.measure(net, peer, target, t);
                if d < best.1 {
                    best = (peer, d);
                }
                if best_peer.is_none_or(|(_, best_d)| d < best_d) {
                    best_peer = Some((peer, d));
                }
            }
            match best_peer {
                Some((peer, d)) if d.millis() <= self.cfg.beta * current_rtt.millis() => {
                    // β-reduction satisfied: forward the query.
                    let Some(&peer_idx) = self.index_of.get(&peer) else {
                        break;
                    };
                    current = peer_idx;
                    current_rtt = d;
                    hops += 1;
                    if hops > 32 {
                        break; // defensive bound; β < 1 guarantees progress
                    }
                }
                _ => break,
            }
        }

        let result = QueryResult {
            selected: best.0,
            selected_rtt: best.1,
            hops,
            probes: self.probes.load(Ordering::Relaxed) - probes_before,
        };
        note_query(&result);
        result
    }

    /// Answers a multi-constraint query (the second spatial query of the
    /// Meridian paper): find an overlay member whose RTT to *every*
    /// target `i` is at most `constraints[i].1` — e.g. a game-server
    /// host within 50 ms of every player in a match.
    ///
    /// The search greedily forwards toward the node minimizing the total
    /// constraint violation, and returns the first member satisfying all
    /// constraints, or `None` if the search bottoms out.
    ///
    /// # Panics
    ///
    /// Panics if `constraints` is empty.
    pub fn multi_constraint_query(
        &self,
        net: &Network,
        entry: HostId,
        constraints: &[(HostId, Rtt)],
        t: SimTime,
    ) -> Option<HostId> {
        assert!(!constraints.is_empty(), "need at least one constraint");
        let violation = |node: HostId| -> f64 {
            constraints
                .iter()
                .map(|(target, bound)| {
                    (self.measure(net, node, *target, t).millis() - bound.millis()).max(0.0)
                })
                .sum()
        };
        // Faulty or absent entries cannot run the search.
        if self.faults.behavior_at(entry, t).is_some() || !self.index_of.contains_key(&entry) {
            return (violation(entry) == 0.0).then_some(entry);
        }
        let mut current = self.index_of[&entry];
        let mut current_violation = violation(entry);
        for _hop in 0..32 {
            if current_violation == 0.0 {
                return Some(self.nodes[current].host);
            }
            // Probe ring members near the first unmet target's latency.
            let anchor_rtt = self.measure(net, self.nodes[current].host, constraints[0].0, t);
            let candidates = self.nodes[current]
                .rings
                .near_ring_members(&self.cfg.rings, anchor_rtt);
            let mut best: Option<(f64, usize)> = None;
            for (peer, _) in candidates {
                if self.faults.behavior_at(peer, t).is_some() {
                    continue;
                }
                let Some(&idx) = self.index_of.get(&peer) else {
                    continue;
                };
                let v = violation(peer);
                if best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, idx));
                }
            }
            match best {
                Some((v, idx)) if v < current_violation => {
                    current = idx;
                    current_violation = v;
                }
                _ => break,
            }
        }
        (current_violation == 0.0).then_some(self.nodes[current].host)
    }

    fn measure(&self, net: &Network, a: HostId, b: HostId, t: SimTime) -> Rtt {
        self.probes.fetch_add(1, Ordering::Relaxed);
        net.rtt(a, b, t)
    }
}

/// Records per-query telemetry (hop count and probe cost).
fn note_query(result: &QueryResult) {
    crp_telemetry::counter_add("meridian.queries", 1);
    crp_telemetry::counter_add("meridian.query_probes", result.probes);
    crp_telemetry::observe("meridian.query_hops", f64::from(result.hops));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::{NetworkBuilder, PopulationSpec};

    fn setup(n_members: usize, n_clients: usize, seed: u64) -> (Network, Vec<HostId>, Vec<HostId>) {
        let mut net = NetworkBuilder::new(seed)
            .tier1_count(4)
            .transit_per_region(2)
            .stubs_per_region(6)
            .build();
        let members = net.add_population(&PopulationSpec::planetlab(n_members));
        let clients = net.add_population(&PopulationSpec::dns_servers(n_clients));
        (net, members, clients)
    }

    #[test]
    fn overlay_builds_and_populates_rings() {
        let (net, members, _) = setup(30, 0, 1);
        let overlay =
            MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
        assert_eq!(overlay.member_count(), 30);
        assert!(overlay.probes_issued() > 0);
        let populated = members
            .iter()
            .filter(|m| overlay.ring_size_of(**m) > 0)
            .count();
        assert!(populated > 25, "only {populated}/30 members know peers");
    }

    #[test]
    fn queries_return_members_and_beat_random_choice() {
        let (net, members, clients) = setup(40, 10, 2);
        let overlay =
            MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
        let t = SimTime::from_mins(30);
        let mut selected_sum = 0.0;
        let mut random_sum = 0.0;
        for (i, &client) in clients.iter().enumerate() {
            let entry = members[i % members.len()];
            let result = overlay.closest_node_query(&net, entry, client, t);
            assert!(members.contains(&result.selected));
            selected_sum += net.rtt(result.selected, client, t).millis();
            random_sum += net
                .rtt(members[(i * 7) % members.len()], client, t)
                .millis();
        }
        assert!(
            selected_sum < random_sum,
            "meridian {selected_sum:.0}ms not better than random {random_sum:.0}ms"
        );
    }

    #[test]
    fn query_is_deterministic() {
        let (net, members, clients) = setup(25, 3, 3);
        let overlay =
            MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
        let a = overlay.closest_node_query(&net, members[0], clients[0], SimTime::ZERO);
        let b = overlay.closest_node_query(&net, members[0], clients[0], SimTime::ZERO);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.hops, b.hops);
    }

    #[test]
    fn bootstrapping_entry_recommends_itself() {
        let (net, members, clients) = setup(20, 1, 4);
        let plan =
            FaultPlan::none().with_bootstrap_self_recommend(members[0], SimTime::from_hours(10));
        let overlay = MeridianOverlay::build(&net, &members, MeridianConfig::default(), plan);
        let during =
            overlay.closest_node_query(&net, members[0], clients[0], SimTime::from_hours(1));
        assert_eq!(during.selected, members[0]);
        assert_eq!(during.hops, 0);
        let after =
            overlay.closest_node_query(&net, members[0], clients[0], SimTime::from_hours(11));
        // After bootstrap the node answers real queries (may still pick
        // itself legitimately, but usually not).
        assert!(members.contains(&after.selected));
    }

    #[test]
    fn never_joined_entry_recommends_itself() {
        let (net, members, clients) = setup(20, 1, 5);
        let plan = FaultPlan::none().with_never_joined(members[3]);
        let overlay = MeridianOverlay::build(&net, &members, MeridianConfig::default(), plan);
        assert_eq!(overlay.member_count(), 19);
        let r = overlay.closest_node_query(&net, members[3], clients[0], SimTime::ZERO);
        assert_eq!(r.selected, members[3]);
    }

    #[test]
    fn site_isolated_entry_answers_with_pair() {
        let (net, members, clients) = setup(20, 1, 6);
        let plan = FaultPlan::none().with_site_isolated_pair(members[1], members[2]);
        let overlay = MeridianOverlay::build(&net, &members, MeridianConfig::default(), plan);
        let r = overlay.closest_node_query(&net, members[1], clients[0], SimTime::ZERO);
        assert!(r.selected == members[1] || r.selected == members[2]);
    }

    #[test]
    fn probe_accounting_increases_per_query() {
        let (net, members, clients) = setup(20, 1, 7);
        let overlay =
            MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
        let before = overlay.probes_issued();
        let r = overlay.closest_node_query(&net, members[0], clients[0], SimTime::ZERO);
        assert!(overlay.probes_issued() > before);
        assert!(r.probes > 0);
    }

    #[test]
    fn multi_constraint_query_finds_satisfying_member() {
        let (net, members, clients) = setup(40, 3, 10);
        let overlay =
            MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
        let t = SimTime::from_mins(10);
        // A loose constraint set every member's metro should satisfy for
        // at least one member: within 400 ms of every client.
        let constraints: Vec<(HostId, crp_netsim::Rtt)> = clients
            .iter()
            .map(|&c| (c, crp_netsim::Rtt::from_millis(400.0)))
            .collect();
        let found = overlay.multi_constraint_query(&net, members[0], &constraints, t);
        let node = found.expect("loose constraints are satisfiable");
        for (target, bound) in &constraints {
            assert!(net.rtt(node, *target, t) <= *bound);
        }
        // Impossible constraints fail cleanly.
        let impossible: Vec<(HostId, crp_netsim::Rtt)> = clients
            .iter()
            .map(|&c| (c, crp_netsim::Rtt::from_millis(0.01)))
            .collect();
        assert_eq!(
            overlay.multi_constraint_query(&net, members[0], &impossible, t),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one constraint")]
    fn multi_constraint_requires_constraints() {
        let (net, members, _) = setup(8, 0, 11);
        let overlay =
            MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
        let _ = overlay.multi_constraint_query(&net, members[0], &[], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "overlay needs members")]
    fn empty_overlay_rejected() {
        let (net, _, _) = setup(1, 0, 8);
        let _ = MeridianOverlay::build(&net, &[], MeridianConfig::default(), FaultPlan::none());
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_rejected() {
        let (net, members, _) = setup(5, 0, 9);
        let cfg = MeridianConfig {
            beta: 1.5,
            ..MeridianConfig::default()
        };
        let _ = MeridianOverlay::build(&net, &members, cfg, FaultPlan::none());
    }
}
