//! Meridian baseline for the CRP reproduction.
//!
//! The paper compares CRP's closest-node selection against a deployed
//! Meridian service (Wong, Slivkins & Sirer, SIGCOMM 2005). Meridian is
//! a direct-measurement system: each node keeps a small set of peers
//! organized into concentric latency rings, discovers peers by gossip,
//! and answers "closest node to target T" queries by measuring T and
//! greedily forwarding the query to ring members that are closer.
//!
//! The ICDCS 2008 evaluation found Meridian's accuracy dominated not by
//! the algorithm but by deployment pathologies: freshly-restarted nodes
//! recommending themselves, nodes that never joined the overlay, and
//! site-isolated nodes that only knew their colocated twin. The
//! [`faults`] module injects exactly those pathologies so the comparison
//! (Figs. 4–5 and the error forensics) can be reproduced.
//!
//! # Example
//!
//! ```
//! use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
//! use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
//!
//! let mut net = NetworkBuilder::new(3).build();
//! let members = net.add_population(&PopulationSpec::planetlab(16));
//! let clients = net.add_population(&PopulationSpec::dns_servers(2));
//! let overlay = MeridianOverlay::build(
//!     &net, &members, MeridianConfig::default(), FaultPlan::none(),
//! );
//! let result = overlay.closest_node_query(&net, members[0], clients[0], SimTime::ZERO);
//! assert!(members.contains(&result.selected));
//! ```

pub mod faults;
pub mod overlay;
pub mod rings;

pub use faults::FaultPlan;
pub use overlay::{MeridianConfig, MeridianOverlay, QueryResult};
pub use rings::RingSet;
