//! Benchmarks for the Meridian baseline: overlay construction and
//! closest-node queries — the probing cost CRP exists to avoid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};

fn bench_overlay_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("meridian_build");
    group.sample_size(10);
    for n in [60usize, 240] {
        let mut net = NetworkBuilder::new(7).build();
        let members = net.add_population(&PopulationSpec::planetlab(n));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &members,
            |bench, members| {
                bench.iter(|| {
                    MeridianOverlay::build(
                        &net,
                        members,
                        MeridianConfig::default(),
                        FaultPlan::none(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_closest_query(c: &mut Criterion) {
    let mut net = NetworkBuilder::new(8).build();
    let members = net.add_population(&PopulationSpec::planetlab(240));
    let clients = net.add_population(&PopulationSpec::dns_servers(32));
    let overlay =
        MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
    let mut i = 0usize;
    c.bench_function("meridian_closest_query_240_members", |bench| {
        bench.iter(|| {
            i += 1;
            overlay.closest_node_query(
                &net,
                members[i % members.len()],
                clients[i % clients.len()],
                SimTime::from_mins(i as u64),
            )
        });
    });
}

criterion_group!(benches, bench_overlay_build, bench_closest_query);
criterion_main!(benches);
