//! Per-figure experiment kernels at reduced scale — one bench per table
//! and figure of the paper, so regressions in end-to-end experiment cost
//! are caught just like micro-regressions.
//!
//! (The full-scale numbers are produced by `crp-eval`'s binaries; these
//! benches measure the same code paths at a size Criterion can iterate.)

use criterion::{criterion_group, criterion_main, Criterion};
use crp_bench::observed_scenario;
use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};

/// Figs. 4–5 kernel: one full closest-node comparison per iteration.
fn bench_fig4_fig5_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_fig5_closest_node_small", |bench| {
        bench.iter(|| {
            let cfg = crp_eval_shim::closest_smoke(11);
            crp_eval_shim::run_closest(&cfg).outcomes.len()
        });
    });
    group.finish();
}

/// Table I / Figs. 6–7 kernel: clustering + baseline + ground truth.
fn bench_clustering_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("table1_fig6_fig7_clustering_small", |bench| {
        bench.iter(|| {
            let cfg = crp_eval_shim::cluster_smoke(12);
            crp_eval_shim::run_clustering(&cfg).king_ms.len()
        });
    });
    group.finish();
}

/// Figs. 8–9 kernel: observation campaign + rank evaluation.
fn bench_rank_sweep_kernel(c: &mut Criterion) {
    let (scenario, service, end) = observed_scenario(13, 24, 16);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig8_fig9_rank_evaluation", |bench| {
        bench.iter(|| {
            let windows = [WindowPolicy::All, WindowPolicy::LastProbes(10)];
            let mut total = 0usize;
            for w in windows {
                let svc = service.clone().with_window(w);
                total += crp_eval_shim::average_ranks(&scenario, &svc, &[end]).len();
            }
            total
        });
    });
    group.bench_function("fig8_observation_campaign_6h", |bench| {
        bench.iter(|| {
            scenario.observe_hosts(
                &scenario.clients()[..4],
                SimTime::ZERO,
                end,
                SimDuration::from_mins(10),
                WindowPolicy::All,
                SimilarityMetric::Cosine,
            )
        });
    });
    group.finish();
}

/// Ablation kernel: SMF under both center strategies on live maps.
fn bench_ablation_kernel(c: &mut Criterion) {
    let (_scenario, service, end) = observed_scenario(14, 0, 40);
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("ablation_smf_on_live_maps", |bench| {
        bench.iter(|| service.cluster(&SmfConfig::paper(0.1), end).total_nodes());
    });
    group.finish();
}

/// Thin re-exports of the eval kernels so the benches exercise the same
/// code the figures use.
mod crp_eval_shim {
    pub use crp_eval::closest::average_ranks;
    pub use crp_eval::{run_closest, run_clustering};

    pub fn closest_smoke(seed: u64) -> crp_eval::ClosestConfig {
        crp_eval::ClosestConfig::smoke(seed)
    }

    pub fn cluster_smoke(seed: u64) -> crp_eval::ClusterExpConfig {
        crp_eval::ClusterExpConfig::smoke(seed)
    }
}

criterion_group!(
    benches,
    bench_fig4_fig5_kernel,
    bench_clustering_kernel,
    bench_rank_sweep_kernel,
    bench_ablation_kernel
);
criterion_main!(benches);
