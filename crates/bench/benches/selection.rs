//! Benchmarks for closest-node selection: ranking a candidate set by
//! similarity, at the paper's 240-candidate scale and beyond.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::{synthetic_map, synthetic_maps};
use crp_core::{Ranking, SimilarityMetric};
use std::hint::black_box;

fn bench_rank_by_candidates(c: &mut Criterion) {
    let client = synthetic_map(0xC11E47, 10, 1_000);
    let mut group = c.benchmark_group("rank_candidates");
    for n in [60usize, 240, 1_000] {
        let candidates = synthetic_maps(n, 10, 1_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &candidates,
            |bench, cands| {
                bench.iter(|| {
                    Ranking::rank(
                        black_box(&client),
                        cands.iter().map(|(n, m)| (*n, m)),
                        SimilarityMetric::Cosine,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_service_closest(c: &mut Criterion) {
    let (scenario, service, end) = crp_bench::observed_scenario(9, 60, 8);
    let client = scenario.clients()[0];
    c.bench_function("service_closest_60_candidates_live_maps", |bench| {
        bench.iter(|| {
            service
                .closest(black_box(&client), scenario.candidates().to_vec(), end)
                .expect("client observed")
        });
    });
}

criterion_group!(benches, bench_rank_by_candidates, bench_service_closest);
criterion_main!(benches);
