//! Benchmarks for SMF clustering: scaling in node count and threshold,
//! plus the center-strategy ablation's cost side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::synthetic_maps;
use crp_core::{CenterStrategy, Clustering, SmfConfig};
use std::hint::black_box;

fn bench_smf_by_node_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("smf_nodes");
    for n in [50usize, 177, 400] {
        let nodes = synthetic_maps(n, 8, (n as u64) * 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &nodes, |bench, nodes| {
            bench.iter(|| Clustering::smf(black_box(nodes), &SmfConfig::paper(0.1)));
        });
    }
    group.finish();
}

fn bench_smf_by_threshold(c: &mut Criterion) {
    let nodes = synthetic_maps(177, 8, 500);
    let mut group = c.benchmark_group("smf_threshold");
    for t in [0.01, 0.1, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, t| {
            bench.iter(|| Clustering::smf(black_box(&nodes), &SmfConfig::paper(*t)));
        });
    }
    group.finish();
}

fn bench_center_strategies(c: &mut Criterion) {
    let nodes = synthetic_maps(177, 8, 500);
    let mut group = c.benchmark_group("smf_center_strategy");
    group.bench_function("strongest_mappings", |bench| {
        bench.iter(|| Clustering::smf(black_box(&nodes), &SmfConfig::paper(0.1)));
    });
    group.bench_function("random_40", |bench| {
        let cfg = SmfConfig {
            center_strategy: CenterStrategy::Random { count: 40 },
            ..SmfConfig::paper(0.1)
        };
        bench.iter(|| Clustering::smf(black_box(&nodes), &cfg));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_smf_by_node_count,
    bench_smf_by_threshold,
    bench_center_strategies
);
criterion_main!(benches);
