//! Microbenchmarks for ratio-map similarity — the innermost loop of
//! every CRP query (a selection over N candidates costs N of these).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_bench::synthetic_map;
use crp_core::SimilarityMetric;
use std::hint::black_box;

fn bench_cosine_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine_similarity");
    for entries in [4usize, 8, 16, 32] {
        let a = synthetic_map(1, entries, 1_000);
        let b = synthetic_map(2, entries, 1_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |bench, _| {
                bench.iter(|| black_box(&a).cosine_similarity(black_box(&b)));
            },
        );
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a = synthetic_map(3, 12, 200);
    let b = synthetic_map(4, 12, 200);
    let mut group = c.benchmark_group("metrics_12_entries");
    for metric in SimilarityMetric::ALL {
        group.bench_function(metric.to_string(), |bench| {
            bench.iter(|| metric.compare(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_map_construction(c: &mut Criterion) {
    let counts: Vec<(u32, u64)> = (0..30u32).map(|i| (i % 12, 1 + i as u64)).collect();
    c.bench_function("ratio_map_from_counts_30_events", |bench| {
        bench.iter(|| crp_core::RatioMap::from_counts(black_box(counts.clone())));
    });
}

criterion_group!(
    benches,
    bench_cosine_by_size,
    bench_metrics,
    bench_map_construction
);
criterion_main!(benches);
